//! The archive reader and its query engine.
//!
//! [`Archive::open`] trusts the `.ps3x` sidecar index only when its
//! CRC checks out *and* it describes exactly the bytes on disk;
//! otherwise it falls back to a sequential scan that keeps every
//! CRC-valid sealed segment and ignores a torn tail — so a capture
//! killed mid-write still opens, minus at most its unsealed frames.
//!
//! Queries come in two flavours:
//!
//! * **Exact reads** — [`Archive::read_range`] re-derives physical
//!   units from the stored raw codes with the stored sensor
//!   configuration, using the same operations in the same order as the
//!   live acquisition path, so the result is byte-identical to the
//!   live [`Trace`] (markers included).
//! * **Summary-accelerated** — [`Archive::stats`],
//!   [`Archive::energy`], and [`Archive::downsample`] consume the
//!   per-segment summary blocks and only decode the payload of blocks
//!   the query range cuts through. The fast stats path reproduces the
//!   writer's per-block accumulation order exactly and therefore
//!   agrees with a full decode to the last bit.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

use parking_lot::Mutex;
use ps3_analysis::Trace;
use ps3_firmware::{SensorConfig, SENSOR_SLOTS};
use ps3_sensors::AdcSpec;
use ps3_units::{Joules, SimTime, Watts};

use crate::crc::crc32;
use crate::format::{
    decode_file_header, read_u32, ArchiveError, FILE_HEADER_SIZE, MARKER_WIRE_SIZE, SEAL_MAGIC,
    SEGMENT_HEADER_SIZE, SEGMENT_TRAILER_SIZE, SUMMARY_FRAMES, SUMMARY_WIRE_SIZE,
};
use crate::index::{index_path_for, ArchiveIndex};
use crate::segment::{
    build_summaries, decode_payload, frame_total, parse_markers, parse_summaries, ArchiveFrame,
    SegmentHeader, SummaryBlock,
};

/// Where a sealed segment lives and what it covers — everything a
/// query needs short of the payload itself.
#[derive(Debug, Clone)]
pub struct SegmentMeta {
    /// Byte offset of the segment header in the archive file.
    pub offset: u64,
    /// The parsed fixed header.
    pub header: SegmentHeader,
    /// The segment's pre-aggregated summary blocks.
    pub summaries: Vec<SummaryBlock>,
    /// The segment's marker table: `(time µs, label)`.
    pub markers: Vec<(u64, char)>,
}

impl SegmentMeta {
    fn payload_offset(&self) -> u64 {
        self.offset
            + (SEGMENT_HEADER_SIZE
                + self.header.summary_count as usize * SUMMARY_WIRE_SIZE
                + self.header.marker_count as usize * MARKER_WIRE_SIZE) as u64
    }

    /// Frame index range `[lo, hi)` of summary block `bi`.
    fn block_frames(&self, bi: usize) -> (usize, usize) {
        let lo = bi * SUMMARY_FRAMES;
        let hi = (lo + SUMMARY_FRAMES).min(self.header.frame_count as usize);
        (lo, hi)
    }
}

/// How an archive was opened and what, if anything, was left behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// `true` when the sidecar index was valid and used; `false` when
    /// the archive was sequentially scanned.
    pub used_index: bool,
    /// Bytes of unsealed (torn) tail after the last valid segment.
    pub trailing_bytes: u64,
}

/// Result of a full [`Archive::verify`] pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Segments that passed every check.
    pub segments_ok: u64,
    /// Frames across those segments.
    pub frames: u64,
    /// Bytes of torn tail after the last valid segment.
    pub trailing_bytes: u64,
    /// Human-readable descriptions of every problem found.
    pub errors: Vec<String>,
}

impl VerifyReport {
    /// `true` when every byte of the file is accounted for by valid
    /// sealed segments.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty() && self.trailing_bytes == 0
    }
}

/// Aggregate statistics over a time range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeStats {
    /// Samples in the range.
    pub count: u64,
    /// Sum of total power over those samples (W).
    pub sum_w: f64,
    /// Minimum total power (W).
    pub min_w: f64,
    /// Maximum total power (W).
    pub max_w: f64,
}

impl RangeStats {
    fn empty() -> Self {
        Self {
            count: 0,
            sum_w: 0.0,
            min_w: f64::INFINITY,
            max_w: f64::NEG_INFINITY,
        }
    }

    fn add_block(&mut self, count: u64, sum_w: f64, min_w: f64, max_w: f64) {
        if count == 0 {
            return;
        }
        self.count += count;
        self.sum_w += sum_w;
        self.min_w = self.min_w.min(min_w);
        self.max_w = self.max_w.max(max_w);
    }

    /// Mean power over the range, or `None` when it holds no samples.
    #[must_use]
    pub fn mean_w(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum_w / self.count as f64)
    }
}

/// A read-only handle on a `.ps3a` archive.
#[derive(Debug)]
pub struct Archive {
    path: PathBuf,
    file: Mutex<File>,
    configs: [SensorConfig; SENSOR_SLOTS],
    adc: AdcSpec,
    segments: Vec<SegmentMeta>,
    markers: Vec<(u64, char)>,
    recovery: RecoveryReport,
}

fn read_at(file: &mut File, offset: u64, len: usize) -> Result<Vec<u8>, ArchiveError> {
    file.seek(SeekFrom::Start(offset))?;
    let mut buf = vec![0u8; len];
    file.read_exact(&mut buf)?;
    Ok(buf)
}

impl Archive {
    /// Opens an archive, recovering past any torn tail.
    ///
    /// # Errors
    ///
    /// [`ArchiveError::NotAnArchive`] / [`ArchiveError::Corrupt`] when
    /// even the file header is unusable, [`ArchiveError::Io`] on
    /// filesystem failures.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, ArchiveError> {
        let path = path.as_ref().to_path_buf();
        let mut file = File::open(&path)?;
        let file_len = file.metadata()?.len();
        let mut header = Vec::with_capacity(FILE_HEADER_SIZE);
        file.by_ref()
            .take(FILE_HEADER_SIZE as u64)
            .read_to_end(&mut header)?;
        let configs = decode_file_header(&header)?;

        let (segments, recovery) = match Self::try_index(&path, &mut file, file_len) {
            Some(segments) => (
                segments,
                RecoveryReport {
                    used_index: true,
                    trailing_bytes: 0,
                },
            ),
            None => {
                let (segments, sealed_len) = Self::scan(&mut file, file_len)?;
                (
                    segments,
                    RecoveryReport {
                        used_index: false,
                        trailing_bytes: file_len - sealed_len,
                    },
                )
            }
        };
        let mut markers: Vec<(u64, char)> = Vec::new();
        for seg in &segments {
            markers.extend_from_slice(&seg.markers);
        }
        Ok(Self {
            path,
            file: Mutex::new(file),
            configs,
            adc: AdcSpec::POWERSENSOR3,
            segments,
            markers,
            recovery,
        })
    }

    /// Loads segment metadata through the sidecar index. Any
    /// inconsistency — missing or damaged sidecar, stale `data_len`,
    /// index records that disagree with the file — returns `None` and
    /// the caller falls back to a full scan.
    fn try_index(path: &Path, file: &mut File, file_len: u64) -> Option<Vec<SegmentMeta>> {
        let bytes = std::fs::read(index_path_for(path)).ok()?;
        let index = ArchiveIndex::decode(&bytes).ok()?;
        if index.data_len != file_len {
            return None;
        }
        let mut segments = Vec::with_capacity(index.segments.len());
        for rec in &index.segments {
            let hdr = read_at(file, rec.offset, SEGMENT_HEADER_SIZE).ok()?;
            let header = SegmentHeader::parse(&hdr, rec.offset).ok()?;
            if header.seq != rec.seq
                || header.frame_count != rec.frame_count
                || header.start_us != rec.start_us
                || header.end_us != rec.end_us
                || rec.offset + header.disk_size() > file_len
            {
                return None;
            }
            let tables_len = header.summary_count as usize * SUMMARY_WIRE_SIZE
                + header.marker_count as usize * MARKER_WIRE_SIZE;
            let tables = read_at(file, rec.offset + SEGMENT_HEADER_SIZE as u64, tables_len).ok()?;
            let summaries = parse_summaries(&tables, header.summary_count as usize);
            let markers = parse_markers(
                &tables[header.summary_count as usize * SUMMARY_WIRE_SIZE..],
                header.marker_count as usize,
            );
            segments.push(SegmentMeta {
                offset: rec.offset,
                header,
                summaries,
                markers,
            });
        }
        Some(segments)
    }

    /// Sequentially scans the archive, keeping every CRC-valid sealed
    /// segment and stopping at the first sign of damage. Returns the
    /// metadata plus the length of the valid sealed prefix.
    fn scan(file: &mut File, file_len: u64) -> Result<(Vec<SegmentMeta>, u64), ArchiveError> {
        let mut segments = Vec::new();
        let mut offset = FILE_HEADER_SIZE as u64;
        while offset + (SEGMENT_HEADER_SIZE + SEGMENT_TRAILER_SIZE) as u64 <= file_len {
            let hdr = read_at(file, offset, SEGMENT_HEADER_SIZE)?;
            let Ok(header) = SegmentHeader::parse(&hdr, offset) else {
                break;
            };
            let size = header.disk_size();
            if offset + size > file_len {
                break;
            }
            let bytes = read_at(file, offset, size as usize)?;
            let body_len = size as usize - SEGMENT_TRAILER_SIZE;
            let stored_crc = read_u32(&bytes, body_len);
            let seal = read_u32(&bytes, body_len + 4);
            if seal != SEAL_MAGIC || crc32(&bytes[..body_len]) != stored_crc {
                break;
            }
            let summaries =
                parse_summaries(&bytes[SEGMENT_HEADER_SIZE..], header.summary_count as usize);
            let markers_at =
                SEGMENT_HEADER_SIZE + header.summary_count as usize * SUMMARY_WIRE_SIZE;
            let markers = parse_markers(&bytes[markers_at..], header.marker_count as usize);
            segments.push(SegmentMeta {
                offset,
                header,
                summaries,
                markers,
            });
            offset += size;
        }
        Ok((segments, offset))
    }

    /// The sensor configuration the archive was recorded with.
    #[must_use]
    pub fn configs(&self) -> &[SensorConfig; SENSOR_SLOTS] {
        &self.configs
    }

    /// The ADC model used to convert raw codes to physical units.
    #[must_use]
    pub fn adc(&self) -> &AdcSpec {
        &self.adc
    }

    /// Decodes one segment's payload into frames (for replay-style
    /// consumers that want raw frames rather than a [`Trace`]).
    ///
    /// # Errors
    ///
    /// I/O or corruption errors from segment decoding.
    pub fn decode_segment_frames(
        &self,
        meta: &SegmentMeta,
    ) -> Result<Vec<ArchiveFrame>, ArchiveError> {
        self.decode_segment(meta)
    }

    /// The archive file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Metadata of every sealed segment, in file order.
    #[must_use]
    pub fn segments(&self) -> &[SegmentMeta] {
        &self.segments
    }

    /// Every marker in the archive: `(time µs, label)`, in time order.
    #[must_use]
    pub fn markers(&self) -> &[(u64, char)] {
        &self.markers
    }

    /// How the archive was opened (index fast path vs. recovery scan)
    /// and how many torn-tail bytes were skipped.
    #[must_use]
    pub fn recovery(&self) -> RecoveryReport {
        self.recovery
    }

    /// Byte length of the sealed prefix: the file header plus every
    /// sealed segment. Derived data keyed to the archive (the `.ps3x`
    /// index, the `.ps3p` pyramid) records this to detect staleness.
    #[must_use]
    pub fn sealed_len(&self) -> u64 {
        self.segments
            .last()
            .map_or(FILE_HEADER_SIZE as u64, |s| s.offset + s.header.disk_size())
    }

    /// Total frames across all sealed segments.
    #[must_use]
    pub fn frames(&self) -> u64 {
        self.segments
            .iter()
            .map(|s| u64::from(s.header.frame_count))
            .sum()
    }

    /// Timestamp of the first archived frame.
    #[must_use]
    pub fn start_time(&self) -> Option<SimTime> {
        self.segments
            .first()
            .map(|s| SimTime::from_micros(s.header.start_us))
    }

    /// Timestamp of the last archived frame.
    #[must_use]
    pub fn end_time(&self) -> Option<SimTime> {
        self.segments
            .last()
            .map(|s| SimTime::from_micros(s.header.end_us))
    }

    /// Segments whose time span intersects `[start, end)`.
    fn overlapping(&self, start: SimTime, end: SimTime) -> impl Iterator<Item = &SegmentMeta> {
        let (start_us, end_us) = (start.as_micros(), end.as_micros().saturating_add(1));
        self.segments
            .iter()
            .filter(move |s| s.header.start_us < end_us && s.header.end_us >= start_us)
    }

    /// Decodes one segment's payload into frames.
    fn decode_segment(&self, meta: &SegmentMeta) -> Result<Vec<ArchiveFrame>, ArchiveError> {
        let payload = read_at(
            &mut self.file.lock(),
            meta.payload_offset(),
            meta.header.payload_len as usize,
        )?;
        decode_payload(&meta.header, &payload, meta.offset)
    }

    /// Reads `[start, end)` as a [`Trace`], byte-identical to what the
    /// live continuous mode produced over the same range — samples and
    /// markers both.
    ///
    /// # Errors
    ///
    /// I/O or corruption errors from segment decoding.
    pub fn read_range(&self, start: SimTime, end: SimTime) -> Result<Trace, ArchiveError> {
        let capacity: u64 = self
            .overlapping(start, end)
            .map(|s| u64::from(s.header.frame_count))
            .sum();
        let mut trace = Trace::with_capacity(capacity as usize);
        self.read_range_into(start, end, &mut trace)?;
        Ok(trace)
    }

    /// [`Archive::read_range`] into a caller-owned trace, which is
    /// cleared first; repeated reads reuse its allocations.
    ///
    /// # Errors
    ///
    /// I/O or corruption errors from segment decoding.
    pub fn read_range_into(
        &self,
        start: SimTime,
        end: SimTime,
        out: &mut Trace,
    ) -> Result<(), ArchiveError> {
        out.clear();
        for meta in self.overlapping(start, end) {
            for frame in self.decode_segment(meta)? {
                if frame.time < start || frame.time >= end {
                    continue;
                }
                // Same call order as the live acquisition path:
                // sample first, then its marker.
                out.push(frame.time, frame_total(&self.configs, &self.adc, &frame));
                if let Some(label) = frame.marker {
                    out.mark(frame.time, label);
                }
            }
        }
        Ok(())
    }

    /// Reads the entire archive as a [`Trace`].
    ///
    /// # Errors
    ///
    /// I/O or corruption errors from segment decoding.
    pub fn read_all(&self) -> Result<Trace, ArchiveError> {
        match (self.start_time(), self.end_time()) {
            (Some(start), Some(end)) => {
                self.read_range(start, SimTime::from_micros(end.as_micros() + 1))
            }
            _ => Ok(Trace::new()),
        }
    }

    /// Statistics over `[start, end)` using the summary fast path:
    /// blocks fully inside the range are consumed pre-aggregated, and
    /// only blocks the range cuts through are decoded. Agrees with
    /// [`Archive::stats_decoded`] to the last bit.
    ///
    /// # Errors
    ///
    /// I/O or corruption errors from decoding partial blocks.
    pub fn stats(&self, start: SimTime, end: SimTime) -> Result<RangeStats, ArchiveError> {
        self.stats_impl(start, end, false)
    }

    /// Statistics over `[start, end)` by full payload decode — the
    /// reference the fast path is checked against.
    ///
    /// # Errors
    ///
    /// I/O or corruption errors from segment decoding.
    pub fn stats_decoded(&self, start: SimTime, end: SimTime) -> Result<RangeStats, ArchiveError> {
        self.stats_impl(start, end, true)
    }

    fn stats_impl(
        &self,
        start: SimTime,
        end: SimTime,
        force_decode: bool,
    ) -> Result<RangeStats, ArchiveError> {
        let (start_us, end_us) = (start.as_micros(), end.as_micros());
        let mut stats = RangeStats::empty();
        for meta in self.overlapping(start, end) {
            let mut decoded: Option<Vec<ArchiveFrame>> = None;
            for (bi, block) in meta.summaries.iter().enumerate() {
                if block.last_us < start_us || block.first_us >= end_us {
                    continue;
                }
                let fully = block.first_us >= start_us && block.last_us < end_us;
                if fully && !force_decode {
                    stats.add_block(
                        u64::from(block.count),
                        block.sum_w,
                        block.min_w,
                        block.max_w,
                    );
                    continue;
                }
                let frames = match &decoded {
                    Some(f) => f,
                    None => decoded.insert(self.decode_segment(meta)?),
                };
                // Per-block sequential accumulation, mirroring the
                // writer — this is what makes fast == decoded exactly.
                let (lo, hi) = meta.block_frames(bi);
                let (mut count, mut sum) = (0u64, 0.0f64);
                let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
                for frame in &frames[lo..hi] {
                    if frame.time < start || frame.time >= end {
                        continue;
                    }
                    let w = frame_total(&self.configs, &self.adc, frame).value();
                    count += 1;
                    sum += w;
                    min = min.min(w);
                    max = max.max(w);
                }
                stats.add_block(count, sum, min, max);
            }
        }
        Ok(stats)
    }

    /// Trapezoid energy over the samples in `[start, end)`, matching
    /// [`Trace::energy`] of the corresponding slice. Blocks fully in
    /// range contribute their stored in-block energy plus a junction
    /// term; only cut blocks are decoded.
    ///
    /// # Errors
    ///
    /// I/O or corruption errors from decoding partial blocks.
    pub fn energy(&self, start: SimTime, end: SimTime) -> Result<Joules, ArchiveError> {
        let (start_us, end_us) = (start.as_micros(), end.as_micros());
        let mut energy = 0.0f64;
        let mut prev: Option<(u64, f64)> = None;
        let junction = |energy: &mut f64, prev: &Option<(u64, f64)>, t_us: u64, w: f64| {
            if let Some((pt, pw)) = *prev {
                let dt = (t_us - pt) as f64 * 1e-6;
                *energy += (pw + w) / 2.0 * dt;
            }
        };
        for meta in self.overlapping(start, end) {
            let mut decoded: Option<Vec<ArchiveFrame>> = None;
            for (bi, block) in meta.summaries.iter().enumerate() {
                if block.last_us < start_us || block.first_us >= end_us {
                    continue;
                }
                let fully = block.first_us >= start_us && block.last_us < end_us;
                if fully {
                    junction(&mut energy, &prev, block.first_us, block.first_w);
                    energy += block.energy_j;
                    prev = Some((block.last_us, block.last_w));
                    continue;
                }
                let frames = match &decoded {
                    Some(f) => f,
                    None => decoded.insert(self.decode_segment(meta)?),
                };
                let (lo, hi) = meta.block_frames(bi);
                for frame in &frames[lo..hi] {
                    if frame.time < start || frame.time >= end {
                        continue;
                    }
                    let w = frame_total(&self.configs, &self.adc, frame).value();
                    junction(&mut energy, &prev, frame.time.as_micros(), w);
                    prev = Some((frame.time.as_micros(), w));
                }
            }
        }
        Ok(Joules::new(energy))
    }

    /// Time of the first marker with `label`.
    #[must_use]
    pub fn marker_time(&self, label: char) -> Option<SimTime> {
        self.markers
            .iter()
            .find(|&&(_, l)| l == label)
            .map(|&(t, _)| SimTime::from_micros(t))
    }

    /// Energy between the first marker labelled `start` and the first
    /// marker labelled `end` at or after it — the archived equivalent
    /// of `trace.between_markers(start, end).energy()` (half-open,
    /// like [`Trace::slice`]).
    ///
    /// # Errors
    ///
    /// [`ArchiveError::MarkerNotFound`] when a label is missing or out
    /// of order; I/O or corruption errors from decoding.
    pub fn energy_between(&self, start: char, end: char) -> Result<Joules, ArchiveError> {
        let t0 = self
            .marker_time(start)
            .ok_or(ArchiveError::MarkerNotFound(start))?;
        let t0_us = t0.as_micros();
        let t1 = self
            .markers
            .iter()
            .find(|&&(t, l)| l == end && t >= t0_us)
            .map(|&(t, _)| SimTime::from_micros(t))
            .ok_or(ArchiveError::MarkerNotFound(end))?;
        self.energy(t0, t1)
    }

    /// Downsampled read of `[start, end)`: every `divisor` consecutive
    /// samples collapse to their mean, stamped at the last sample's
    /// time (the same convention as the streaming `Downsampler`); a
    /// partial tail bucket is dropped. Buckets that align with whole
    /// summary blocks (e.g. a 10 Hz read over 50 ms blocks) are served
    /// from the summaries without touching the payload. Markers in
    /// range are carried over at their original times.
    ///
    /// # Errors
    ///
    /// I/O or corruption errors from decoding.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn downsample(
        &self,
        start: SimTime,
        end: SimTime,
        divisor: u64,
    ) -> Result<Trace, ArchiveError> {
        let mut trace = Trace::new();
        self.downsample_into(start, end, divisor, &mut trace)?;
        Ok(trace)
    }

    /// [`Archive::downsample`] into a caller-owned trace, which is
    /// cleared first. Repeated queries (e.g. the fleet's per-rig joined
    /// downsampling, which walks many shards) reuse the trace's
    /// allocations instead of paying a fresh vector per call.
    ///
    /// # Errors
    ///
    /// I/O or corruption errors from decoding.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn downsample_into(
        &self,
        start: SimTime,
        end: SimTime,
        divisor: u64,
        out: &mut Trace,
    ) -> Result<(), ArchiveError> {
        assert!(divisor > 0, "divisor must be at least 1");
        if divisor == 1 {
            return self.read_range_into(start, end, out);
        }
        out.clear();
        let trace = out;
        let (start_us, end_us) = (start.as_micros(), end.as_micros());
        let (mut count, mut sum) = (0u64, 0.0f64);
        for meta in self.overlapping(start, end) {
            let mut decoded: Option<Vec<ArchiveFrame>> = None;
            for (bi, block) in meta.summaries.iter().enumerate() {
                if block.last_us < start_us || block.first_us >= end_us {
                    continue;
                }
                let fully = block.first_us >= start_us && block.last_us < end_us;
                if fully && u64::from(block.count) <= divisor - count {
                    count += u64::from(block.count);
                    sum += block.sum_w;
                    if count == divisor {
                        trace.push(
                            SimTime::from_micros(block.last_us),
                            Watts::new(sum / divisor as f64),
                        );
                        (count, sum) = (0, 0.0);
                    }
                    continue;
                }
                let frames = match &decoded {
                    Some(f) => f,
                    None => decoded.insert(self.decode_segment(meta)?),
                };
                let (lo, hi) = meta.block_frames(bi);
                for frame in &frames[lo..hi] {
                    if frame.time < start || frame.time >= end {
                        continue;
                    }
                    count += 1;
                    sum += frame_total(&self.configs, &self.adc, frame).value();
                    if count == divisor {
                        trace.push(frame.time, Watts::new(sum / divisor as f64));
                        (count, sum) = (0, 0.0);
                    }
                }
            }
        }
        for &(t_us, label) in &self.markers {
            if t_us >= start_us && t_us < end_us {
                trace.mark(SimTime::from_micros(t_us), label);
            }
        }
        Ok(())
    }

    /// Full integrity check: re-reads every segment from disk,
    /// verifies CRCs and seals, decodes every payload, and recomputes
    /// summary blocks and marker tables from the decoded frames. A
    /// torn tail is reported in `trailing_bytes`, not as an error —
    /// it is the expected state after a crash.
    ///
    /// # Errors
    ///
    /// [`ArchiveError::Io`] only; structural problems land in the
    /// report.
    pub fn verify(&self) -> Result<VerifyReport, ArchiveError> {
        let mut report = VerifyReport::default();
        let mut file = self.file.lock();
        let file_len = file.metadata()?.len();
        let mut offset = FILE_HEADER_SIZE as u64;
        while offset < file_len {
            if offset + (SEGMENT_HEADER_SIZE + SEGMENT_TRAILER_SIZE) as u64 > file_len {
                break;
            }
            let hdr = read_at(&mut file, offset, SEGMENT_HEADER_SIZE)?;
            let Ok(header) = SegmentHeader::parse(&hdr, offset) else {
                break;
            };
            let size = header.disk_size();
            if offset + size > file_len {
                break;
            }
            let bytes = read_at(&mut file, offset, size as usize)?;
            let body_len = size as usize - SEGMENT_TRAILER_SIZE;
            if read_u32(&bytes, body_len + 4) != SEAL_MAGIC {
                break;
            }
            if crc32(&bytes[..body_len]) != read_u32(&bytes, body_len) {
                report
                    .errors
                    .push(format!("segment at byte {offset}: CRC mismatch"));
                break;
            }
            self.verify_segment(&header, &bytes, offset, &mut report);
            offset += size;
        }
        report.trailing_bytes = file_len - offset;
        Ok(report)
    }

    /// Deep checks on one CRC-valid segment.
    fn verify_segment(
        &self,
        header: &SegmentHeader,
        bytes: &[u8],
        offset: u64,
        report: &mut VerifyReport,
    ) {
        let summaries =
            parse_summaries(&bytes[SEGMENT_HEADER_SIZE..], header.summary_count as usize);
        let markers_at = SEGMENT_HEADER_SIZE + header.summary_count as usize * SUMMARY_WIRE_SIZE;
        let markers = parse_markers(&bytes[markers_at..], header.marker_count as usize);
        let payload_at = markers_at + header.marker_count as usize * MARKER_WIRE_SIZE;
        let payload = &bytes[payload_at..payload_at + header.payload_len as usize];
        let frames = match decode_payload(header, payload, offset) {
            Ok(frames) => frames,
            Err(e) => {
                report.errors.push(e.to_string());
                return;
            }
        };
        if frames.len() != header.frame_count as usize {
            report
                .errors
                .push(format!("segment at byte {offset}: frame count mismatch"));
            return;
        }
        if let (Some(first), Some(last)) = (frames.first(), frames.last()) {
            if first.time.as_micros() != header.start_us || last.time.as_micros() != header.end_us {
                report
                    .errors
                    .push(format!("segment at byte {offset}: time bounds mismatch"));
            }
        }
        let watts: Vec<f64> = frames
            .iter()
            .map(|f| frame_total(&self.configs, &self.adc, f).value())
            .collect();
        if build_summaries(&frames, &watts) != summaries {
            report.errors.push(format!(
                "segment at byte {offset}: summary blocks disagree with payload"
            ));
        }
        let expect_markers: Vec<(u64, char)> = frames
            .iter()
            .filter_map(|f| f.marker.map(|l| (f.time.as_micros(), l)))
            .collect();
        if expect_markers != markers {
            report.errors.push(format!(
                "segment at byte {offset}: marker table disagrees with payload"
            ));
        }
        report.segments_ok += 1;
        report.frames += frames.len() as u64;
    }
}
