//! Property tests: random traces → archive → read back identical, and
//! the summary fast paths agree with full decodes.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use ps3_archive::{frame_total, Archive, ArchiveFrame, SegmentWriter};
use ps3_firmware::{SensorConfig, SENSOR_SLOTS};
use ps3_sensors::AdcSpec;
use ps3_units::SimTime;

fn temp_path(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "ps3-archive-rt-{}-{tag}-{n}.ps3a",
        std::process::id()
    ))
}

fn test_configs() -> [SensorConfig; SENSOR_SLOTS] {
    let mut configs: [SensorConfig; SENSOR_SLOTS] =
        core::array::from_fn(|_| SensorConfig::unpopulated());
    configs[0] = SensorConfig::new("I0", 3.3, 0.105, true);
    configs[1] = SensorConfig::new("U0", 3.3, 0.2171, true);
    configs[2] = SensorConfig::new("I1", 3.3, 0.063, true);
    configs[3] = SensorConfig::new("U1", 3.3, 1.0, true);
    configs
}

/// Splitmix64, for deriving per-(frame, slot) raw codes from the spec.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Expands the proptest spec tuples into a frame sequence: mostly
/// 50 µs cadence with occasional jitter and long gaps, arbitrary
/// presence masks, noisy-ish values, sparse markers.
fn build_frames(spec: &[(u64, u8, u8, u16)]) -> Vec<ArchiveFrame> {
    let mut time_us = 25u64;
    spec.iter()
        .enumerate()
        .map(|(i, &(delta_sel, present, marker_sel, base))| {
            if i > 0 {
                time_us += match delta_sel {
                    0..=69 => 50,
                    70..=89 => 1 + mix(delta_sel ^ i as u64) % 1000,
                    _ => 1_000_000 + mix(delta_sel ^ i as u64) % 1_000_000,
                };
            }
            let mut raw = [0u16; SENSOR_SLOTS];
            for (slot, r) in raw.iter_mut().enumerate() {
                if present & (1 << slot) != 0 {
                    let jitter = (mix(u64::from(base) ^ (i as u64) << 8 ^ slot as u64) % 16) as u16;
                    *r = (base + jitter * u16::try_from(slot + 1).unwrap()) % 1024;
                }
            }
            let marker = (marker_sel % 5 == 0).then(|| char::from(b'a' + marker_sel / 5 % 26));
            ArchiveFrame {
                time: SimTime::from_micros(time_us),
                raw,
                present,
                marker,
            }
        })
        .collect()
}

/// The trace the live acquisition path would have produced for these
/// frames.
fn reference_trace(frames: &[ArchiveFrame]) -> ps3_analysis::Trace {
    let configs = test_configs();
    let adc = AdcSpec::POWERSENSOR3;
    let mut trace = ps3_analysis::Trace::with_capacity(frames.len());
    for f in frames {
        trace.push(f.time, frame_total(&configs, &adc, f));
        if let Some(label) = f.marker {
            trace.mark(f.time, label);
        }
    }
    trace
}

proptest! {
    #[test]
    fn random_traces_round_trip(
        spec in proptest::collection::vec((0u64..100, 0u8..=255, 0u8..=255, 0u16..1024), 1..300),
        segment_frames in 1usize..70,
    ) {
        let frames = build_frames(&spec);
        let path = temp_path("prop");
        let mut writer = SegmentWriter::create_with(&path, test_configs(), segment_frames).unwrap();
        for &frame in &frames {
            writer.push(frame).unwrap();
        }
        let stats = writer.finish().unwrap();
        prop_assert_eq!(stats.frames, frames.len() as u64);

        let archive = Archive::open(&path).unwrap();
        prop_assert!(archive.recovery().used_index);

        // Frame-level round trip: every stored frame comes back bit-equal.
        let mut decoded = Vec::new();
        for meta in archive.segments() {
            decoded.extend(archive.decode_segment_frames(meta).unwrap());
        }
        prop_assert_eq!(&decoded, &frames);

        // Trace-level: byte-identical to the live acquisition result.
        let trace = archive.read_all().unwrap();
        prop_assert_eq!(&trace, &reference_trace(&frames));

        // Deep verify agrees.
        let report = archive.verify().unwrap();
        prop_assert!(report.is_clean(), "verify: {:?}", report.errors);
        prop_assert_eq!(report.frames, frames.len() as u64);

        // Without the sidecar, the scan recovers the same data.
        std::fs::remove_file(ps3_archive::index_path_for(&path)).unwrap();
        let rescanned = Archive::open(&path).unwrap();
        prop_assert!(!rescanned.recovery().used_index);
        prop_assert_eq!(rescanned.recovery().trailing_bytes, 0);
        prop_assert_eq!(&rescanned.read_all().unwrap(), &trace);

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stats_fast_path_is_bit_exact(
        spec in proptest::collection::vec((0u64..100, 0u8..=255, 0u8..=255, 0u16..1024), 2..250),
        cut_lo in 0u64..100,
        cut_hi in 0u64..100,
    ) {
        let frames = build_frames(&spec);
        let path = temp_path("stats");
        // Tiny segments so ranges cut through segment and block edges.
        let mut writer = SegmentWriter::create_with(&path, test_configs(), 25).unwrap();
        for &frame in &frames {
            writer.push(frame).unwrap();
        }
        writer.finish().unwrap();
        let archive = Archive::open(&path).unwrap();

        let t0 = frames[0].time.as_micros();
        let t1 = frames[frames.len() - 1].time.as_micros();
        let span = t1 - t0 + 1;
        let mut lo = t0 + span * cut_lo / 100;
        let mut hi = t0 + span * cut_hi / 100;
        if lo > hi {
            std::mem::swap(&mut lo, &mut hi);
        }
        let (start, end) = (SimTime::from_micros(lo), SimTime::from_micros(hi));

        let fast = archive.stats(start, end).unwrap();
        let slow = archive.stats_decoded(start, end).unwrap();
        prop_assert_eq!(fast.count, slow.count);
        prop_assert_eq!(fast.sum_w.to_bits(), slow.sum_w.to_bits());
        prop_assert_eq!(fast.min_w.to_bits(), slow.min_w.to_bits());
        prop_assert_eq!(fast.max_w.to_bits(), slow.max_w.to_bits());

        // And both agree with the reference trace slice.
        let slice = reference_trace(&frames).slice(start, end);
        prop_assert_eq!(fast.count, slice.len() as u64);
        if let Some(mean) = slice.mean_power() {
            let fast_mean = fast.mean_w().unwrap();
            prop_assert!(
                (fast_mean - mean.value()).abs() <= 1e-9 * mean.value().abs().max(1.0),
                "mean {} vs {}", fast_mean, mean.value()
            );
        }

        // Energy fast path tracks the trace's trapezoid integral.
        let e_fast = archive.energy(start, end).unwrap().value();
        let e_ref = slice.energy().value();
        prop_assert!(
            (e_fast - e_ref).abs() <= 1e-9 * e_ref.abs().max(1e-12),
            "energy {} vs {}", e_fast, e_ref
        );

        std::fs::remove_file(&path).ok();
        std::fs::remove_file(ps3_archive::index_path_for(&path)).ok();
    }
}

#[test]
fn downsample_matches_manual_bucketing() {
    let spec: Vec<(u64, u8, u8, u16)> = (0..2400)
        .map(|i| (u64::from(i % 97), 0b1111, (i % 251) as u8, 200 + i % 600))
        .collect();
    let frames = build_frames(&spec);
    let path = temp_path("down");
    let mut writer = SegmentWriter::create_with(&path, test_configs(), 500).unwrap();
    for &frame in &frames {
        writer.push(frame).unwrap();
    }
    writer.finish().unwrap();
    let archive = Archive::open(&path).unwrap();
    let reference = reference_trace(&frames);

    for divisor in [1u64, 7, 20, 1000, 2000] {
        let start = archive.start_time().unwrap();
        let end = SimTime::from_micros(archive.end_time().unwrap().as_micros() + 1);
        let down = archive.downsample(start, end, divisor).unwrap();
        // Manual bucketing over the reference trace with the same
        // last-sample-stamped, drop-partial-tail convention.
        let samples = reference.samples();
        let expect: Vec<(u64, f64)> = samples
            .chunks(divisor as usize)
            .filter(|c| c.len() == divisor as usize)
            .map(|c| {
                let sum: f64 = c.iter().map(|s| s.power.value()).sum();
                (c.last().unwrap().time.as_micros(), sum / divisor as f64)
            })
            .collect();
        assert_eq!(down.len(), expect.len(), "divisor {divisor}");
        for (got, want) in down.samples().iter().zip(&expect) {
            assert_eq!(got.time.as_micros(), want.0, "divisor {divisor}");
            assert!(
                (got.power.value() - want.1).abs() <= 1e-12 * want.1.abs().max(1.0),
                "divisor {divisor}: {} vs {}",
                got.power.value(),
                want.1
            );
        }
        // Markers ride along at their original times.
        assert_eq!(down.markers().len(), reference.markers().len());
    }

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(ps3_archive::index_path_for(&path)).ok();
}

#[test]
fn energy_between_markers_matches_trace() {
    let spec: Vec<(u64, u8, u8, u16)> = (0..3000)
        .map(|i| {
            // Sparse deterministic markers: 'a' at frame 500, 'f' at 2500.
            let marker_sel = match i {
                500 => 0,   // 'a'
                2500 => 25, // 'f'
                _ => 1,     // none
            };
            (0u64, 0b11, marker_sel, 300 + (i % 11) as u16)
        })
        .collect();
    let frames = build_frames(&spec);
    let path = temp_path("marks");
    let mut writer = SegmentWriter::create_with(&path, test_configs(), 1000).unwrap();
    for &frame in &frames {
        writer.push(frame).unwrap();
    }
    writer.finish().unwrap();
    let archive = Archive::open(&path).unwrap();
    let reference = reference_trace(&frames);

    let window = reference.between_markers('a', 'f').unwrap();
    let e_ref = window.energy().value();
    let e_arc = archive.energy_between('a', 'f').unwrap().value();
    assert!(
        (e_arc - e_ref).abs() <= 1e-9 * e_ref.abs().max(1e-12),
        "{e_arc} vs {e_ref}"
    );

    assert!(matches!(
        archive.energy_between('z', 'f'),
        Err(ps3_archive::ArchiveError::MarkerNotFound('z'))
    ));
    // Reversed order: no 'a' at or after the first 'f'.
    assert!(archive.energy_between('f', 'a').is_err());

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(ps3_archive::index_path_for(&path)).ok();
}
