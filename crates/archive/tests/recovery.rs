//! Crash-safety: truncate an archive at every possible byte offset and
//! prove that the sealed prefix always survives, the torn tail is
//! flagged, and corruption never decodes silently.

use std::path::PathBuf;

use ps3_archive::{index_path_for, Archive, ArchiveError, ArchiveFrame, SegmentWriter};
use ps3_firmware::{SensorConfig, SENSOR_SLOTS};
use ps3_units::SimTime;

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ps3-archive-rec-{}-{tag}.ps3a", std::process::id()))
}

fn test_configs() -> [SensorConfig; SENSOR_SLOTS] {
    let mut configs: [SensorConfig; SENSOR_SLOTS] =
        core::array::from_fn(|_| SensorConfig::unpopulated());
    configs[0] = SensorConfig::new("I0", 3.3, 0.105, true);
    configs[1] = SensorConfig::new("U0", 3.3, 0.2171, true);
    configs
}

/// A small archive: 3 sealed segments of 30 frames each, with markers.
fn write_archive(path: &PathBuf, frames_total: u64, segment_frames: usize) -> Vec<u64> {
    let mut writer = SegmentWriter::create_with(path, test_configs(), segment_frames).unwrap();
    let mut seals = Vec::new();
    for i in 0..frames_total {
        let mut raw = [0u16; SENSOR_SLOTS];
        raw[0] = 500 + (i % 13) as u16;
        raw[1] = 700 + (i % 7) as u16;
        writer
            .push(ArchiveFrame {
                time: SimTime::from_micros(25 + i * 50),
                raw,
                present: 0b11,
                marker: (i % 40 == 10).then_some('m'),
            })
            .unwrap();
        if (i + 1) % segment_frames as u64 == 0 {
            seals.push(i + 1);
        }
    }
    writer.finish().unwrap();
    seals
}

#[test]
fn truncation_at_every_offset_keeps_sealed_prefix() {
    let path = temp_path("every-offset");
    write_archive(&path, 90, 30);
    let bytes = std::fs::read(&path).unwrap();
    let archive = Archive::open(&path).unwrap();
    // Byte offset where each segment ends (header → seg0 → seg1 → seg2).
    let mut seal_offsets = vec![ps3_archive::format::FILE_HEADER_SIZE as u64];
    for meta in archive.segments() {
        seal_offsets.push(meta.offset + meta.header.disk_size());
    }
    assert_eq!(seal_offsets.len(), 4);
    assert_eq!(*seal_offsets.last().unwrap(), bytes.len() as u64);
    drop(archive);

    let torn = temp_path("torn");
    let torn_index = index_path_for(&torn);
    for len in 0..=bytes.len() {
        std::fs::write(&torn, &bytes[..len]).unwrap();
        // No sidecar: force the recovery scan.
        std::fs::remove_file(&torn_index).ok();
        let sealed = seal_offsets
            .iter()
            .rev()
            .find(|&&o| o <= len as u64)
            .copied();
        match Archive::open(&torn) {
            Ok(archive) => {
                let sealed = sealed
                    .unwrap_or_else(|| panic!("open succeeded below the file header at len {len}"));
                let segments_expected = seal_offsets
                    .iter()
                    .filter(|&&o| o > seal_offsets[0] && o <= len as u64)
                    .count();
                assert_eq!(
                    archive.segments().len(),
                    segments_expected,
                    "truncated at {len}"
                );
                assert_eq!(
                    archive.frames(),
                    segments_expected as u64 * 30,
                    "truncated at {len}"
                );
                assert_eq!(
                    archive.recovery().trailing_bytes,
                    len as u64 - sealed,
                    "truncated at {len}"
                );
                // Sealed data reads back fully.
                let trace = archive.read_all().unwrap();
                assert_eq!(trace.len(), segments_expected * 30);
                // Verify flags the tail and nothing else.
                let report = archive.verify().unwrap();
                assert!(
                    report.errors.is_empty(),
                    "truncated at {len}: {:?}",
                    report.errors
                );
                assert_eq!(report.trailing_bytes, len as u64 - sealed);
                assert_eq!(report.is_clean(), len as u64 == sealed);
            }
            Err(e) => {
                // Only acceptable below a complete file header.
                assert!(
                    len < ps3_archive::format::FILE_HEADER_SIZE,
                    "open failed at len {len}: {e}"
                );
            }
        }
    }
    std::fs::remove_file(&torn).ok();
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(index_path_for(&path)).ok();
}

#[test]
fn stale_index_after_crash_is_bypassed() {
    let path = temp_path("stale-index");
    write_archive(&path, 90, 30);
    let bytes = std::fs::read(&path).unwrap();
    // Crash scenario: the file lost its tail but the sidecar still
    // describes the full-length archive.
    std::fs::write(&path, &bytes[..bytes.len() - 37]).unwrap();
    let archive = Archive::open(&path).unwrap();
    assert!(
        !archive.recovery().used_index,
        "stale index must not be trusted"
    );
    assert_eq!(archive.segments().len(), 2);
    assert_eq!(archive.frames(), 60);
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(index_path_for(&path)).ok();
}

#[test]
fn mid_file_corruption_stops_the_scan_without_lying() {
    let path = temp_path("flip");
    write_archive(&path, 90, 30);
    let mut bytes = std::fs::read(&path).unwrap();
    let archive = Archive::open(&path).unwrap();
    let second = &archive.segments()[1];
    // Flip one payload byte of segment 1.
    let target = (second.offset + ps3_archive::format::SEGMENT_HEADER_SIZE as u64 + 60) as usize;
    drop(archive);
    bytes[target] ^= 0x10;
    std::fs::write(&path, &bytes).unwrap();
    std::fs::remove_file(index_path_for(&path)).ok();

    let archive = Archive::open(&path).unwrap();
    // Only the first segment survives; nothing after the damage is served.
    assert_eq!(archive.segments().len(), 1);
    assert_eq!(archive.read_all().unwrap().len(), 30);
    let report = archive.verify().unwrap();
    assert!(!report.is_clean());
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(index_path_for(&path)).ok();
}

#[test]
fn unrelated_file_is_rejected() {
    let path = temp_path("not-an-archive");
    std::fs::write(&path, vec![0x42u8; 4096]).unwrap();
    assert!(matches!(
        Archive::open(&path),
        Err(ArchiveError::NotAnArchive)
    ));
    std::fs::remove_file(&path).ok();
}
