//! End-to-end against a live simulated sensor: an archived capture
//! re-queried must equal the live continuous-mode trace byte for byte,
//! the summary fast path must agree with a full decode to the last
//! bit, and the fig4-style bench capture must compress at least 4×
//! against the raw 2-byte wire stream.

use std::path::PathBuf;
use std::sync::Arc;

use ps3_archive::{Archive, ArchiveMeter, ArchiveWriter, ArchiveWriterOptions};
use ps3_duts::LoadProgram;
use ps3_pmt::PowerMeter;
use ps3_sensors::ModuleKind;
use ps3_testbed::setups::accuracy_bench;
use ps3_units::{Amps, SimDuration, SimTime};

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "ps3-archive-live-{}-{tag}.ps3a",
        std::process::id()
    ))
}

struct LiveCapture {
    live: ps3_analysis::Trace,
    stats: ps3_archive::WriterStats,
    path: PathBuf,
}

/// Records a fig4-style capture (constant 6 A on a 12 V slot module)
/// both into the in-memory trace and through the background archive
/// writer, with a `k`/`e` marker pair bracketing the middle.
fn capture(frames: u64, segment_frames: usize, seed: u64, tag: &str) -> LiveCapture {
    let mut tb = accuracy_bench(
        ModuleKind::Slot10A12V,
        LoadProgram::Constant(Amps::new(6.0)),
        seed,
    );
    let ps = tb.connect().expect("connect");
    tb.advance_and_sync(&ps, SimDuration::from_millis(2))
        .expect("settle");
    let path = temp_path(tag);
    let writer = ArchiveWriter::spawn(
        &path,
        ps.configs(),
        ArchiveWriterOptions {
            segment_frames,
            queue_capacity: 1 << 20,
        },
    )
    .expect("spawn writer");
    writer.attach(&ps);
    ps.begin_trace_with_capacity(frames as usize);
    let quarter = SimDuration::from_micros(frames / 4 * 50);
    tb.advance_and_sync(&ps, quarter).expect("lead-in");
    ps.mark('k').expect("mark k");
    tb.advance_and_sync(&ps, quarter * 2).expect("kernel");
    ps.mark('e').expect("mark e");
    tb.advance_and_sync(&ps, quarter).expect("tail");
    let live = ps.end_trace();
    let stats = writer.finish().expect("finish");
    assert_eq!(stats.dropped, 0, "bounded queue must not drop in tests");
    LiveCapture { live, stats, path }
}

#[test]
fn archived_capture_equals_live_trace_byte_for_byte() {
    let cap = capture(16_384, 4_096, 0x5EED_2026, "equality");
    let live = &cap.live;
    assert!(live.len() >= 16_000, "short capture: {}", live.len());
    assert_eq!(live.markers().len(), 2);

    let archive = Archive::open(&cap.path).expect("open");
    let t0 = live.samples()[0].time;
    let t_end = live.samples()[live.len() - 1].time;
    let end = SimTime::from_micros(t_end.as_micros() + 1);

    // The tentpole guarantee: a re-queried range is byte-identical to
    // the live trace — samples, order, and marker labels.
    let requeried = archive.read_range(t0, end).expect("read_range");
    assert_eq!(&requeried, live);

    // Summary fast path agrees with the full decode to the last bit.
    let fast = archive.stats(t0, end).expect("stats");
    let slow = archive.stats_decoded(t0, end).expect("stats_decoded");
    assert_eq!(fast.count, slow.count);
    assert_eq!(fast.sum_w.to_bits(), slow.sum_w.to_bits());
    assert_eq!(fast.min_w.to_bits(), slow.min_w.to_bits());
    assert_eq!(fast.max_w.to_bits(), slow.max_w.to_bits());
    assert_eq!(fast.count, live.len() as u64);

    // Marker-based energy matches the live trace's kernel window.
    let e_live = live.between_markers('k', 'e').unwrap().energy().value();
    let e_arc = archive.energy_between('k', 'e').expect("energy").value();
    assert!(
        (e_arc - e_live).abs() <= 1e-9 * e_live.abs().max(1e-12),
        "{e_arc} vs {e_live}"
    );

    std::fs::remove_file(&cap.path).ok();
    std::fs::remove_file(ps3_archive::index_path_for(&cap.path)).ok();
}

#[test]
fn bench_capture_compresses_at_least_4x_vs_wire() {
    let cap = capture(16_384, 20_000, 7, "ratio");
    // One enabled pair on the wire: a timestamp packet plus two sample
    // packets, 2 bytes each, per 50 µs frame.
    let wire_bytes = cap.stats.frames * 6;
    let ratio = wire_bytes as f64 / cap.stats.bytes as f64;
    eprintln!(
        "archive {} bytes, wire {wire_bytes} bytes, ratio {ratio:.2}x",
        cap.stats.bytes
    );
    assert!(
        ratio >= 4.0,
        "compression {ratio:.2}x ({} archive bytes vs {wire_bytes} wire bytes)",
        cap.stats.bytes
    );
    std::fs::remove_file(&cap.path).ok();
    std::fs::remove_file(ps3_archive::index_path_for(&cap.path)).ok();
}

/// The background writer's counters are observable while the capture
/// is still running — not just from the final `WriterStats`.
#[test]
fn live_counters_track_progress_during_capture() {
    use ps3_archive::ArchiveFrame;
    use ps3_firmware::{SensorConfig, SENSOR_SLOTS};

    let mut configs: [SensorConfig; SENSOR_SLOTS] =
        core::array::from_fn(|_| SensorConfig::unpopulated());
    configs[0] = SensorConfig::new("I0", 3.3, 0.12, true);
    configs[1] = SensorConfig::new("U0", 3.3, 5.0, true);

    let path = temp_path("live-counters");
    let writer = ArchiveWriter::spawn(
        &path,
        configs,
        ArchiveWriterOptions {
            segment_frames: 100,
            queue_capacity: 1 << 16,
        },
    )
    .expect("spawn writer");
    for i in 0..350u64 {
        let mut raw = [0u16; SENSOR_SLOTS];
        raw[0] = 500 + (i % 7) as u16;
        raw[1] = 600;
        assert!(writer.push(ArchiveFrame {
            time: SimTime::from_micros(25 + 50 * i),
            raw,
            present: 0b11,
            marker: None,
        }));
    }
    // The worker drains asynchronously; the live counters converge on
    // everything fed so far while the writer is still open.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while writer.frames_written() < 350 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert_eq!(writer.frames_written(), 350);
    assert_eq!(writer.segments_sealed(), 3, "3 full segments of 100");
    assert_eq!(writer.dropped(), 0);

    let stats = writer.finish().expect("finish");
    assert_eq!(stats.frames, 350);
    assert_eq!(stats.segments, 4, "finish seals the 50-frame tail");
    assert_eq!(stats.dropped, 0);

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(ps3_archive::index_path_for(&path)).ok();
}

#[test]
fn archive_meter_replays_through_pmt() {
    let cap = capture(8_192, 2_048, 99, "meter");
    let archive = Arc::new(Archive::open(&cap.path).expect("open"));
    let mut meter = ArchiveMeter::new(Arc::clone(&archive));
    assert_eq!(meter.native_interval(), SimDuration::from_micros(50));

    // Polling at each live sample time reproduces the live values
    // exactly (hold-last semantics on a grid that hits every frame).
    for sample in cap.live.samples().iter().step_by(257) {
        let got = meter.read_watts(sample.time);
        assert_eq!(
            got.value().to_bits(),
            sample.power.value().to_bits(),
            "at {}",
            sample.time
        );
    }
    // Between frames, the previous frame's value holds.
    let s = &cap.live.samples()[100];
    let held = meter.read_watts(SimTime::from_micros(s.time.as_micros() + 10));
    assert_eq!(held.value().to_bits(), s.power.value().to_bits());

    std::fs::remove_file(&cap.path).ok();
    std::fs::remove_file(ps3_archive::index_path_for(&cap.path)).ok();
}
