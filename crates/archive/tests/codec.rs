//! Adversarial property tests for the two payload codecs: the Rice
//! coder (per-slot sample deltas) and the delta-of-delta timestamp
//! scheme — max deltas, all-equal runs, alternating extremes, and the
//! empty segment, plus randomized sweeps over the whole input space.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use ps3_archive::bits::{
    unzigzag64, zigzag64, BitReader, BitWriter, RICE_ESCAPE_BITS, RICE_ESCAPE_Q,
};
use ps3_archive::{Archive, ArchiveFrame, SegmentWriter};
use ps3_firmware::{SensorConfig, SENSOR_SLOTS};
use ps3_units::SimTime;

fn temp_path(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "ps3-archive-codec-{}-{tag}-{n}.ps3a",
        std::process::id()
    ))
}

fn test_configs() -> [SensorConfig; SENSOR_SLOTS] {
    let mut configs: [SensorConfig; SENSOR_SLOTS] =
        core::array::from_fn(|_| SensorConfig::unpopulated());
    configs[0] = SensorConfig::new("I0", 3.3, 0.105, true);
    configs[1] = SensorConfig::new("U0", 3.3, 0.2171, true);
    configs
}

/// The largest value a Rice codeword can carry: zigzagged 10-bit
/// sample deltas span 0..=2046, and the escape path is
/// `RICE_ESCAPE_BITS` wide.
const RICE_MAX: u32 = (1 << RICE_ESCAPE_BITS) - 1;

fn rice_roundtrip(values: &[u32], k: u8) {
    let mut writer = BitWriter::new();
    let mut expect_bits = 0usize;
    for &v in values {
        writer.push_rice(v, k);
        expect_bits += BitWriter::rice_cost(v, k) as usize;
    }
    assert_eq!(writer.bit_len(), expect_bits, "rice_cost must be exact");
    let bytes = writer.finish();
    let mut reader = BitReader::new(&bytes);
    for &v in values {
        assert_eq!(reader.read_rice(k).unwrap(), v, "k={k}");
    }
}

/// Hand-picked adversarial Rice inputs, at every k the encoder uses.
#[test]
fn rice_adversarial_inputs_roundtrip_at_every_k() {
    let all_equal_zero = vec![0u32; 257];
    let all_equal_max = vec![2046u32; 257];
    let alternating: Vec<u32> = (0..256)
        .map(|i| if i % 2 == 0 { 0 } else { 2046 })
        .collect();
    let escape_edge: Vec<u32> = (0..=10u32)
        .flat_map(|k| {
            // Around the unary→escape boundary for this k (clamped:
            // values above RICE_MAX don't fit the escape word and are
            // never produced by the delta stage).
            let edge = RICE_ESCAPE_Q << k;
            [
                edge.saturating_sub(1).min(RICE_MAX),
                edge.min(RICE_MAX),
                (edge + 1).min(RICE_MAX),
            ]
        })
        .collect();
    let max_everything = vec![RICE_MAX; 64];
    for k in 0..=10u8 {
        rice_roundtrip(&all_equal_zero, k);
        rice_roundtrip(&all_equal_max, k);
        rice_roundtrip(&alternating, k);
        rice_roundtrip(&escape_edge, k);
        rice_roundtrip(&max_everything, k);
        rice_roundtrip(&[], k);
    }
}

#[test]
fn zigzag_maps_extremes_without_loss() {
    for v in [0i64, 1, -1, i64::MAX, i64::MIN, i64::MIN + 1, 50, -50] {
        assert_eq!(unzigzag64(zigzag64(v)), v);
    }
    // Zigzag keeps small magnitudes small (the property the Rice stage
    // depends on for its k tuning).
    assert_eq!(zigzag64(0), 0);
    assert_eq!(zigzag64(-1), 1);
    assert_eq!(zigzag64(1), 2);
    assert_eq!(zigzag64(-1023), 2045);
    assert_eq!(zigzag64(1023), 2046);
}

/// Writes `times` (µs, non-decreasing) through the real segment codec
/// and reads them back through the real decoder.
fn dod_roundtrip(times_us: &[u64], tag: &str) {
    let path = temp_path(tag);
    let mut writer = SegmentWriter::create_with(&path, test_configs(), 100).unwrap();
    for (i, &t) in times_us.iter().enumerate() {
        let mut raw = [0u16; SENSOR_SLOTS];
        raw[0] = 500 + (i % 13) as u16;
        raw[1] = 300;
        writer
            .push(ArchiveFrame {
                time: SimTime::from_micros(t),
                raw,
                present: 0b11,
                marker: None,
            })
            .unwrap();
    }
    let stats = writer.finish().unwrap();
    assert_eq!(stats.frames, times_us.len() as u64);

    let archive = Archive::open(&path).unwrap();
    let mut decoded = Vec::new();
    for meta in archive.segments() {
        decoded.extend(archive.decode_segment_frames(meta).unwrap());
    }
    let got: Vec<u64> = decoded.iter().map(|f| f.time.as_micros()).collect();
    assert_eq!(got, times_us, "{tag}");
    assert!(archive.verify().unwrap().is_clean());

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(ps3_archive::index_path_for(&path)).ok();
}

/// `SimTime::from_micros` multiplies by 1000 internally, so keep
/// timestamps below u64::MAX / 1000.
const T_MAX_US: u64 = u64::MAX / 1000 - 1;

#[test]
fn dod_adversarial_timestamp_patterns_roundtrip() {
    // Perfect cadence: the all-dod-zero fast path.
    let cadence: Vec<u64> = (0..250).map(|i| 25 + 50 * i).collect();
    dod_roundtrip(&cadence, "cadence");

    // All-equal timestamps: first delta -50 (against the assumed
    // cadence), then delta 0 forever.
    dod_roundtrip(&vec![123_456u64; 250], "all-equal");

    // Alternating extremes: 50 µs steps alternating with jumps big
    // enough to force the 64-bit raw-delta class, repeatedly flipping
    // the delta-of-delta sign at maximum magnitude.
    let mut t = 25u64;
    let mut alternating = vec![t];
    for i in 0..120 {
        t += if i % 2 == 0 { 1u64 << 42 } else { 50 };
        alternating.push(t);
    }
    dod_roundtrip(&alternating, "alternating");

    // Maximum single delta: epoch straight to the far end of the
    // representable range.
    dod_roundtrip(&[0, T_MAX_US], "max-delta");

    // One frame, and one frame at the extreme.
    dod_roundtrip(&[25], "single");
    dod_roundtrip(&[T_MAX_US], "single-max");

    // Empty segment: zero frames must produce a valid, empty archive.
    let path = temp_path("empty");
    let writer = SegmentWriter::create_with(&path, test_configs(), 100).unwrap();
    let stats = writer.finish().unwrap();
    assert_eq!(stats.frames, 0);
    assert_eq!(stats.segments, 0);
    let archive = Archive::open(&path).unwrap();
    assert!(archive.segments().is_empty());
    assert!(archive.verify().unwrap().is_clean());
    assert!(archive.read_all().unwrap().is_empty());
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(ps3_archive::index_path_for(&path)).ok();
}

proptest! {
    /// Random values at random k: decode inverts encode and the cost
    /// model stays exact.
    #[test]
    fn rice_random_values_roundtrip(
        values in proptest::collection::vec(0u32..=RICE_MAX, 0..200),
        k in 0u8..=10,
    ) {
        rice_roundtrip(&values, k);
    }

    /// Random zigzag round trip across the full i64 domain.
    #[test]
    fn zigzag_random_roundtrip(v in proptest::prelude::any::<i64>()) {
        prop_assert_eq!(unzigzag64(zigzag64(v)), v);
    }

    /// Random timestamp walks biased to hit every delta-of-delta
    /// class: zero deltas, small jitter, and jumps out to the 16-, 32-
    /// and 64-bit encodings.
    #[test]
    fn dod_random_walks_roundtrip(
        steps in proptest::collection::vec((0u8..=4, 0u64..=u64::MAX), 1..120),
    ) {
        let mut t = 25u64;
        let mut times = vec![t];
        for &(class, magnitude) in &steps {
            let delta = match class {
                0 => 0,
                1 => magnitude % 256,              // 8-bit dod region
                2 => magnitude % 65_536,           // 16-bit dod region
                3 => magnitude % (1u64 << 32),     // 32-bit dod region
                _ => magnitude % (1u64 << 44),     // 64-bit raw deltas
            };
            t = t.saturating_add(delta).min(T_MAX_US);
            times.push(t);
        }
        dod_roundtrip(&times, "prop");
    }
}
