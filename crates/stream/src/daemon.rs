//! The streaming daemon: owns a [`SharedPowerSensor`], taps its frame
//! stream into a [`BroadcastRing`], and serves any number of TCP
//! subscribers at their own rates.
//!
//! Design invariant: **a subscriber can never slow down acquisition.**
//! The acquisition tap only publishes into the ring (lock-free, never
//! blocks on consumers); each subscriber is drained by its own sender
//! thread. A subscriber that falls behind is lapped by the ring
//! (drop-oldest, reported as [`ServerMsg::Gap`]); one that keeps
//! falling behind — or stalls entirely so its TCP write times out — is
//! evicted.

use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use ps3_archive::Archive;
use ps3_core::SharedPowerSensor;
use ps3_firmware::{FRAME_INTERVAL, SENSOR_SLOTS};
use ps3_units::SimTime;

use crate::downsample::Downsampler;
use crate::net::bind_reusable;
use crate::proto::{
    read_msg_body, write_msg, ClientMsg, EvictReason, ServerMsg, StreamFrame, StreamStats,
    MAX_BATCH_FRAMES,
};
use crate::ring::{BroadcastRing, ReadOutcome};

/// Tuning knobs for [`StreamDaemon::start`].
#[derive(Debug, Clone)]
pub struct StreamDaemonConfig {
    /// Broadcast ring capacity in frames (rounded up to a power of
    /// two). At 20 kHz the default of 8192 buffers ~0.4 s.
    pub ring_capacity: usize,
    /// A subscriber whose TCP write blocks longer than this is
    /// considered stalled and evicted.
    pub write_timeout: Duration,
    /// A subscriber lapped more than this many times is evicted.
    pub max_gap_events: u64,
    /// How long the handshake (`Subscribe`) may take.
    pub handshake_timeout: Duration,
    /// Per-subscriber socket send buffer (`SO_SNDBUF`), 0 to leave the
    /// OS default. Kernel autotuning can grow TCP buffers to tens of
    /// megabytes, which would let a stalled subscriber absorb minutes
    /// of data before the write-timeout stall detector ever fires;
    /// bounding the buffer keeps eviction timely.
    pub send_buffer_bytes: usize,
}

impl Default for StreamDaemonConfig {
    fn default() -> Self {
        Self {
            ring_capacity: 8192,
            write_timeout: Duration::from_millis(500),
            max_gap_events: 16,
            handshake_timeout: Duration::from_secs(5),
            send_buffer_bytes: 128 * 1024,
        }
    }
}

/// Caps the socket's kernel send buffer. `std` has no portable
/// accessor for `SO_SNDBUF`, so this goes through `setsockopt`
/// directly on Linux and is a no-op elsewhere.
#[cfg(target_os = "linux")]
fn set_send_buffer(stream: &TcpStream, bytes: usize) -> io::Result<()> {
    use std::os::fd::AsRawFd;
    const SOL_SOCKET: i32 = 1;
    const SO_SNDBUF: i32 = 7;
    extern "C" {
        fn setsockopt(
            fd: i32,
            level: i32,
            optname: i32,
            optval: *const core::ffi::c_void,
            optlen: u32,
        ) -> i32;
    }
    let val = i32::try_from(bytes).unwrap_or(i32::MAX);
    // SAFETY: valid fd from a live TcpStream; optval points at an i32
    // whose size is passed as optlen.
    let rc = unsafe {
        setsockopt(
            stream.as_raw_fd(),
            SOL_SOCKET,
            SO_SNDBUF,
            (&raw const val).cast(),
            core::mem::size_of::<i32>() as u32,
        )
    };
    if rc == 0 {
        Ok(())
    } else {
        Err(io::Error::last_os_error())
    }
}

#[cfg(not(target_os = "linux"))]
fn set_send_buffer(_stream: &TcpStream, _bytes: usize) -> io::Result<()> {
    Ok(())
}

/// Where a daemon's frames come from.
enum FrameSource {
    /// Live acquisition: a tap on the sensor's reader thread.
    Live(SharedPowerSensor),
    /// Replay: a pump thread publishing an archived range.
    Replay,
}

/// Handle to a running streaming daemon. Dropping it shuts the daemon
/// down and joins all its threads.
pub struct StreamDaemon {
    shared: Arc<DaemonShared>,
    local_addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    pump: Option<JoinHandle<()>>,
}

struct DaemonShared {
    ring: Arc<BroadcastRing>,
    source: FrameSource,
    config: StreamDaemonConfig,
    /// Pre-encoded `Hello`, identical for every subscriber.
    hello: Vec<u8>,
    shutdown: Arc<AtomicBool>,
    active_subscribers: AtomicU64,
    evicted: AtomicU64,
    gap_events: AtomicU64,
    clients: Mutex<Vec<JoinHandle<()>>>,
}

impl StreamDaemon {
    /// Starts a daemon for `sensor`, listening on `addr` (use port 0
    /// for an ephemeral port; see [`StreamDaemon::local_addr`]).
    ///
    /// # Errors
    ///
    /// Socket bind errors.
    pub fn start<A: ToSocketAddrs>(
        sensor: SharedPowerSensor,
        addr: A,
        config: StreamDaemonConfig,
    ) -> io::Result<Self> {
        let listener = bind_reusable(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let ring = Arc::new(BroadcastRing::new(config.ring_capacity));
        let shutdown = Arc::new(AtomicBool::new(false));
        let hello = ServerMsg::Hello {
            frame_interval_us: FRAME_INTERVAL.as_micros() as u32,
            configs: Box::new(sensor.configs()),
            fleet: None,
        }
        .encode();

        // The acquisition tap: runs on the sensor's reader thread, so
        // it must only do the (non-blocking) ring publish.
        {
            let ring = Arc::clone(&ring);
            let shutdown = Arc::clone(&shutdown);
            sensor.add_frame_sink(move |record| {
                if shutdown.load(Ordering::SeqCst) {
                    ring.close();
                    return false;
                }
                ring.publish(&StreamFrame {
                    time: record.time,
                    raw: record.raw,
                    present: record.present,
                    marker: record.marker.is_some(),
                });
                true
            });
        }

        let shared = Arc::new(DaemonShared {
            ring,
            source: FrameSource::Live(sensor),
            config,
            hello,
            shutdown,
            active_subscribers: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            gap_events: AtomicU64::new(0),
            clients: Mutex::new(Vec::new()),
        });

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("ps3-stream-accept".into())
                .spawn(move || accept_loop(&listener, &shared))?
        };

        Ok(Self {
            shared,
            local_addr,
            accept: Some(accept),
            pump: None,
        })
    }

    /// Starts a daemon that replays an archived capture instead of
    /// tapping a live sensor.
    ///
    /// The replay covers `range` (half-open, `None` for the whole
    /// archive) and begins once the first subscriber attaches. `speed`
    /// scales the pacing: `1.0` replays at the recorded rate, `2.0`
    /// twice as fast, and `0.0` (or any non-positive value) publishes
    /// as fast as subscribers can drain. When the range is exhausted
    /// the stream closes and subscribers observe end-of-stream.
    ///
    /// Marker *bits* ride along at their archived positions;
    /// [`ClientMsg::InjectMarker`] is ignored (there is no live sensor
    /// to mark).
    ///
    /// # Errors
    ///
    /// Socket bind errors.
    pub fn start_replay<A: ToSocketAddrs>(
        archive: Arc<Archive>,
        range: Option<(SimTime, SimTime)>,
        speed: f64,
        addr: A,
        config: StreamDaemonConfig,
    ) -> io::Result<Self> {
        let listener = bind_reusable(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let ring = Arc::new(BroadcastRing::new(config.ring_capacity));
        let shutdown = Arc::new(AtomicBool::new(false));
        let hello = ServerMsg::Hello {
            frame_interval_us: FRAME_INTERVAL.as_micros() as u32,
            configs: Box::new(archive.configs().clone()),
            fleet: None,
        }
        .encode();

        let shared = Arc::new(DaemonShared {
            ring,
            source: FrameSource::Replay,
            config,
            hello,
            shutdown,
            active_subscribers: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            gap_events: AtomicU64::new(0),
            clients: Mutex::new(Vec::new()),
        });

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("ps3-stream-accept".into())
                .spawn(move || accept_loop(&listener, &shared))?
        };
        let pump = {
            let pump_shared = Arc::clone(&shared);
            let spawned = std::thread::Builder::new()
                .name("ps3-stream-replay".into())
                .spawn(move || replay_pump(&pump_shared, &archive, range, speed));
            match spawned {
                Ok(handle) => handle,
                Err(e) => {
                    // The accept thread is already up; signal shutdown
                    // so it exits instead of serving a pumpless daemon.
                    shared.shutdown.store(true, Ordering::SeqCst);
                    return Err(e);
                }
            }
        };

        Ok(Self {
            shared,
            local_addr,
            accept: Some(accept),
            pump: Some(pump),
        })
    }

    /// The address the daemon is listening on.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Live daemon counters.
    #[must_use]
    pub fn stats(&self) -> StreamStats {
        StreamStats {
            frames_published: self.shared.ring.head(),
            active_subscribers: self.shared.active_subscribers.load(Ordering::SeqCst),
            evicted: self.shared.evicted.load(Ordering::SeqCst),
            gap_events: self.shared.gap_events.load(Ordering::SeqCst),
        }
    }

    /// The sensor this daemon is serving, or `None` in replay mode.
    #[must_use]
    pub fn sensor(&self) -> Option<&SharedPowerSensor> {
        match &self.shared.source {
            FrameSource::Live(sensor) => Some(sensor),
            FrameSource::Replay => None,
        }
    }

    /// Whether this daemon replays an archive rather than serving a
    /// live sensor.
    #[must_use]
    pub fn is_replay(&self) -> bool {
        matches!(self.shared.source, FrameSource::Replay)
    }

    /// Stops accepting, disconnects all subscribers, and joins every
    /// daemon thread. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.ring.close();
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.pump.take() {
            let _ = handle.join();
        }
        let clients = std::mem::take(&mut *self.shared.clients.lock());
        for handle in clients {
            let _ = handle.join();
        }
    }
}

impl Drop for StreamDaemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl core::fmt::Debug for StreamDaemon {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("StreamDaemon")
            .field("local_addr", &self.local_addr)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

/// Publishes an archived range into the ring, paced against wall
/// clock, then closes the ring so subscribers see end-of-stream.
///
/// Waits for the first subscriber before starting (plus a short settle
/// so its cursor is parked at the ring head) — a replay nobody
/// watches would otherwise finish before anyone could attach.
fn replay_pump(
    shared: &Arc<DaemonShared>,
    archive: &Archive,
    range: Option<(SimTime, SimTime)>,
    speed: f64,
) {
    while shared.active_subscribers.load(Ordering::SeqCst) == 0 {
        if shared.shutdown.load(Ordering::SeqCst) {
            shared.ring.close();
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    std::thread::sleep(Duration::from_millis(50));

    let start_wall = Instant::now();
    let mut first_time: Option<SimTime> = None;
    'outer: for meta in archive.segments() {
        if let Some((start, end)) = range {
            if meta.header.end_us < start.as_micros() || meta.header.start_us >= end.as_micros() {
                continue;
            }
        }
        // A segment that was readable at open time can only fail here
        // if the file changed underneath us; end the replay cleanly.
        let Ok(frames) = archive.decode_segment_frames(meta) else {
            break;
        };
        for frame in frames {
            if shared.shutdown.load(Ordering::SeqCst) {
                break 'outer;
            }
            if let Some((start, end)) = range {
                if frame.time < start {
                    continue;
                }
                if frame.time >= end {
                    break 'outer;
                }
            }
            let t0 = *first_time.get_or_insert(frame.time);
            if speed > 0.0 {
                let offset = frame.time.saturating_duration_since(t0);
                let target = Duration::from_secs_f64(offset.as_secs_f64() / speed);
                loop {
                    let elapsed = start_wall.elapsed();
                    if elapsed >= target {
                        break;
                    }
                    std::thread::sleep((target - elapsed).min(Duration::from_millis(50)));
                    if shared.shutdown.load(Ordering::SeqCst) {
                        break 'outer;
                    }
                }
            }
            shared.ring.publish(&StreamFrame {
                time: frame.time,
                raw: frame.raw,
                present: frame.present,
                marker: frame.marker.is_some(),
            });
        }
    }
    shared.ring.close();
}

fn accept_loop(listener: &TcpListener, shared: &Arc<DaemonShared>) {
    let mut client_id = 0u64;
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                client_id += 1;
                let shared_for_client = Arc::clone(shared);
                let spawned = std::thread::Builder::new()
                    .name(format!("ps3-stream-sub-{client_id}"))
                    .spawn(move || {
                        let _ = serve_client(&shared_for_client, stream);
                    });
                match spawned {
                    Ok(handle) => shared.clients.lock().push(handle),
                    // Degrade, don't die: drop this connection (the
                    // stream closes on drop) and keep accepting —
                    // thread exhaustion may be transient.
                    Err(e) => {
                        eprintln!("ps3-stream: dropping client {client_id}: spawn failed: {e}");
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

/// Why a subscriber's sender loop ended.
enum SessionEnd {
    /// The client said `Bye` or closed its socket.
    Disconnected,
    /// Evicted for cause: too many gaps, or a stalled TCP write.
    Evicted(EvictReason),
    /// Daemon shutdown.
    Shutdown,
}

fn serve_client(shared: &Arc<DaemonShared>, stream: TcpStream) -> io::Result<()> {
    stream.set_nodelay(true)?;
    if shared.config.send_buffer_bytes > 0 {
        set_send_buffer(&stream, shared.config.send_buffer_bytes)?;
    }
    // Handshake: the first message must be a Subscribe.
    stream.set_read_timeout(Some(shared.config.handshake_timeout))?;
    let mut control = stream;
    let body = read_msg_body(&mut control)?;
    let ClientMsg::Subscribe {
        pair_mask,
        divisor,
        // A plain single-rig daemon serves the same stream whatever
        // rig the client asked for; routing lives in `ps3-fleet`.
        rig: _,
    } = ClientMsg::decode(&body)?
    else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "first message must be Subscribe",
        ));
    };
    // Split the socket: this thread senses frames, a helper thread
    // reads control messages. Write timeout is the stall detector.
    let writer = Arc::new(Mutex::new(control.try_clone()?));
    control.set_read_timeout(None)?;
    writer
        .lock()
        .set_write_timeout(Some(shared.config.write_timeout))?;
    write_msg(&mut *writer.lock(), &shared.hello)?;

    shared.active_subscribers.fetch_add(1, Ordering::SeqCst);
    let client_gone = Arc::new(AtomicBool::new(false));
    let control_thread = {
        let ctl_shared = Arc::clone(shared);
        let writer = Arc::clone(&writer);
        let client_gone = Arc::clone(&client_gone);
        let spawned = std::thread::Builder::new()
            .name("ps3-stream-ctl".into())
            .spawn(move || control_loop(&ctl_shared, control, &writer, &client_gone));
        match spawned {
            Ok(handle) => handle,
            Err(e) => {
                // Undo the registration and drop just this client;
                // the daemon itself keeps serving.
                shared.active_subscribers.fetch_sub(1, Ordering::SeqCst);
                return Err(e);
            }
        }
    };

    let end = sender_loop(shared, &writer, pair_mask, divisor, &client_gone);
    match end {
        SessionEnd::Evicted(reason) => {
            shared.evicted.fetch_add(1, Ordering::SeqCst);
            // Best effort: a stalled client will not read this.
            let _ = write_msg(&mut *writer.lock(), &ServerMsg::Evicted { reason }.encode());
        }
        SessionEnd::Shutdown => {
            let _ = write_msg(
                &mut *writer.lock(),
                &ServerMsg::Evicted {
                    reason: EvictReason::Shutdown,
                }
                .encode(),
            );
        }
        SessionEnd::Disconnected => {}
    }
    // Unblock the control thread and reap it.
    let _ = writer.lock().shutdown(Shutdown::Both);
    let _ = control_thread.join();
    shared.active_subscribers.fetch_sub(1, Ordering::SeqCst);
    Ok(())
}

/// Handles in-band control messages for one subscriber.
fn control_loop(
    shared: &DaemonShared,
    mut control: TcpStream,
    writer: &Mutex<TcpStream>,
    client_gone: &AtomicBool,
) {
    // Runs until disconnect or garbage input drops the client.
    while let Ok(msg) = read_msg_body(&mut control).and_then(|b| ClientMsg::decode(&b)) {
        match msg {
            ClientMsg::InjectMarker { label } => {
                // Markers only make sense against a live sensor; in
                // replay mode the archived marker bits are replayed
                // as-is and injections are ignored.
                if let FrameSource::Live(sensor) = &shared.source {
                    let _ = sensor.mark(label);
                }
            }
            ClientMsg::QueryStats => {
                let stats = StreamStats {
                    frames_published: shared.ring.head(),
                    active_subscribers: shared.active_subscribers.load(Ordering::SeqCst),
                    evicted: shared.evicted.load(Ordering::SeqCst),
                    gap_events: shared.gap_events.load(Ordering::SeqCst),
                };
                if write_msg(&mut *writer.lock(), &ServerMsg::Stats(stats).encode()).is_err() {
                    break;
                }
            }
            ClientMsg::QueryFleet => {
                // Not a coordinator: answer with an empty roster so
                // fleet-aware tools degrade gracefully.
                let reply = ServerMsg::FleetStatus { rigs: Vec::new() };
                if write_msg(&mut *writer.lock(), &reply.encode()).is_err() {
                    break;
                }
            }
            ClientMsg::Bye => break,
            ClientMsg::Subscribe { .. } => break, // protocol violation
        }
    }
    client_gone.store(true, Ordering::SeqCst);
}

/// Drains the ring into one subscriber's socket.
fn sender_loop(
    shared: &DaemonShared,
    writer: &Mutex<TcpStream>,
    pair_mask: u8,
    divisor: u32,
    client_gone: &AtomicBool,
) -> SessionEnd {
    // Expand the pair mask to a slot mask (pair p = slots 2p, 2p+1).
    let mut slot_mask = 0u8;
    for pair in 0..SENSOR_SLOTS / 2 {
        if pair_mask & (1 << pair) != 0 {
            slot_mask |= 0b11 << (2 * pair);
        }
    }
    let mut downsampler = Downsampler::new(divisor);
    // Subscribers start at the live edge, not the ring's history.
    let mut cursor = shared.ring.head();
    let mut my_gaps = 0u64;
    let mut batch: Vec<StreamFrame> = Vec::with_capacity(MAX_BATCH_FRAMES);

    loop {
        if client_gone.load(Ordering::SeqCst) {
            return SessionEnd::Disconnected;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return SessionEnd::Shutdown;
        }
        match shared.ring.next(cursor, Duration::from_millis(20)) {
            ReadOutcome::Frame(frame) => {
                cursor += 1;
                let mut masked = frame;
                masked.present &= slot_mask;
                if let Some(out) = downsampler.push(&masked) {
                    batch.push(out);
                }
                // Flush when full, or when the ring is drained (so the
                // last frames of a burst are not held back).
                let drained = cursor >= shared.ring.head();
                if batch.len() >= MAX_BATCH_FRAMES || (drained && !batch.is_empty()) {
                    match flush(writer, &mut batch) {
                        Ok(()) => {}
                        Err(e) if is_stall(&e) => {
                            return SessionEnd::Evicted(EvictReason::StalledWrite)
                        }
                        Err(_) => return SessionEnd::Disconnected,
                    }
                }
            }
            ReadOutcome::Lapped { resume_at, dropped } => {
                cursor = resume_at;
                downsampler.reset();
                batch.clear();
                my_gaps += 1;
                shared.gap_events.fetch_add(1, Ordering::SeqCst);
                let gap = ServerMsg::Gap { dropped }.encode();
                match write_msg(&mut *writer.lock(), &gap) {
                    Ok(()) => {}
                    Err(e) if is_stall(&e) => {
                        return SessionEnd::Evicted(EvictReason::StalledWrite)
                    }
                    Err(_) => return SessionEnd::Disconnected,
                }
                if my_gaps > shared.config.max_gap_events {
                    return SessionEnd::Evicted(EvictReason::TooManyGaps {
                        gaps: my_gaps,
                        limit: shared.config.max_gap_events,
                    });
                }
            }
            ReadOutcome::TimedOut => {
                if !batch.is_empty() {
                    match flush(writer, &mut batch) {
                        Ok(()) => {}
                        Err(e) if is_stall(&e) => {
                            return SessionEnd::Evicted(EvictReason::StalledWrite)
                        }
                        Err(_) => return SessionEnd::Disconnected,
                    }
                }
            }
            ReadOutcome::Closed => return SessionEnd::Shutdown,
        }
    }
}

fn flush(writer: &Mutex<TcpStream>, batch: &mut Vec<StreamFrame>) -> io::Result<()> {
    let msg = ServerMsg::Batch {
        frames: std::mem::take(batch),
    }
    .encode();
    write_msg(&mut *writer.lock(), &msg)
}

/// A write that hit the socket's write timeout means the peer stopped
/// reading: the stall signal.
fn is_stall(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_default_is_sane() {
        let config = StreamDaemonConfig::default();
        assert!(config.ring_capacity >= 1024);
        assert!(config.write_timeout >= Duration::from_millis(100));
        assert!(config.max_gap_events >= 1);
    }
}
