//! The streaming daemon: owns a [`SharedPowerSensor`], taps its frame
//! stream into a [`BroadcastRing`], and serves any number of TCP
//! subscribers at their own rates — all from **one event-loop
//! thread**.
//!
//! Design invariant: **a subscriber can never slow down acquisition.**
//! The acquisition tap only publishes into the ring (lock-free, never
//! blocks on consumers) and nudges the loop's waker. The loop drains
//! each subscriber's ring cursor into a bounded per-connection write
//! queue; a subscriber that falls behind is lapped by the ring
//! (drop-oldest, reported as [`ServerMsg::Gap`]); one that keeps
//! falling behind — or stalls entirely so its socket accepts nothing
//! for the write timeout — is evicted. The earlier implementation
//! spent two OS threads per subscriber on exactly these semantics;
//! the event loop preserves them (same eviction reasons, same gap
//! accounting) at C10k subscriber counts.

use std::io;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ps3_archive::Archive;
use ps3_core::SharedPowerSensor;
use ps3_firmware::{FRAME_INTERVAL, SENSOR_SLOTS};
use ps3_units::SimTime;

use crate::downsample::Downsampler;
use crate::event_loop::{
    bring_up, spawn_loop, Control, Handler, LoopStats, LoopWaker, OutQueue, Pump,
};
use crate::proto::{
    ClientMsg, EvictReason, RigSelector, ServerMsg, StreamFrame, StreamStats, MAX_BATCH_FRAMES,
};
use crate::ring::{BroadcastRing, ReadOutcome};

/// Tuning knobs for [`StreamDaemon::start`].
#[derive(Debug, Clone)]
pub struct StreamDaemonConfig {
    /// Broadcast ring capacity in frames (rounded up to a power of
    /// two). At 20 kHz the default of 8192 buffers ~0.4 s.
    pub ring_capacity: usize,
    /// A subscriber whose socket accepts no bytes for this long while
    /// output is pending is considered stalled and evicted.
    pub write_timeout: Duration,
    /// A subscriber lapped more than this many times is evicted.
    pub max_gap_events: u64,
    /// How long the handshake (`Subscribe`) may take.
    pub handshake_timeout: Duration,
    /// Per-subscriber send bound: both the socket's kernel buffer
    /// (`SO_SNDBUF`) and the in-process write queue, 0 to leave the OS
    /// default. Kernel autotuning can grow TCP buffers to tens of
    /// megabytes, which would let a stalled subscriber absorb minutes
    /// of data before the stall detector ever fires; bounding the
    /// buffer keeps eviction timely.
    pub send_buffer_bytes: usize,
}

impl Default for StreamDaemonConfig {
    fn default() -> Self {
        Self {
            ring_capacity: 8192,
            write_timeout: Duration::from_millis(500),
            max_gap_events: 16,
            handshake_timeout: Duration::from_secs(5),
            send_buffer_bytes: 128 * 1024,
        }
    }
}

/// Where a daemon's frames come from.
enum FrameSource {
    /// Live acquisition: a tap on the sensor's reader thread.
    Live(SharedPowerSensor),
    /// Replay: a pump thread publishing an archived range.
    Replay,
}

/// Handle to a running streaming daemon. Dropping it shuts the daemon
/// down and joins all its threads.
pub struct StreamDaemon {
    shared: Arc<DaemonShared>,
    local_addr: SocketAddr,
    event_loop: Option<JoinHandle<()>>,
    pump: Option<JoinHandle<()>>,
}

struct DaemonShared {
    ring: Arc<BroadcastRing>,
    source: FrameSource,
    config: StreamDaemonConfig,
    /// Pre-encoded `Hello`, identical for every subscriber.
    hello: Vec<u8>,
    shutdown: Arc<AtomicBool>,
    stats: Arc<LoopStats>,
    waker: Arc<LoopWaker>,
}

impl DaemonShared {
    fn stats_snapshot(&self) -> StreamStats {
        StreamStats {
            frames_published: self.ring.head(),
            active_subscribers: self.stats.active_subscribers.load(Ordering::SeqCst),
            evicted: self.stats.evicted.load(Ordering::SeqCst),
            gap_events: self.stats.gap_events.load(Ordering::SeqCst),
            accepted: self.stats.accepted.load(Ordering::SeqCst),
            active_peak: self.stats.active_peak.load(Ordering::SeqCst),
            bytes_sent: self.stats.bytes_sent.load(Ordering::SeqCst),
            evicted_gaps: self.stats.evicted_gaps.load(Ordering::SeqCst),
            evicted_stalled: self.stats.evicted_stalled.load(Ordering::SeqCst),
        }
    }
}

impl StreamDaemon {
    /// Starts a daemon for `sensor`, listening on `addr` (use port 0
    /// for an ephemeral port; see [`StreamDaemon::local_addr`]).
    ///
    /// # Errors
    ///
    /// Socket bind errors.
    pub fn start<A: ToSocketAddrs>(
        sensor: SharedPowerSensor,
        addr: A,
        config: StreamDaemonConfig,
    ) -> io::Result<Self> {
        let hello = ServerMsg::Hello {
            frame_interval_us: FRAME_INTERVAL.as_micros() as u32,
            configs: Box::new(sensor.configs()),
            fleet: None,
        }
        .encode();
        let (shared, local_addr, event_loop) =
            launch(addr, config, hello, FrameSource::Live(sensor.clone()))?;

        // The acquisition tap: runs on the sensor's reader thread, so
        // it must only do the (non-blocking) ring publish plus a
        // coalesced waker nudge.
        {
            let ring = Arc::clone(&shared.ring);
            let shutdown = Arc::clone(&shared.shutdown);
            let waker = Arc::clone(&shared.waker);
            sensor.add_frame_sink(move |record| {
                if shutdown.load(Ordering::SeqCst) {
                    ring.close();
                    waker.wake();
                    return false;
                }
                ring.publish(&StreamFrame {
                    time: record.time,
                    raw: record.raw,
                    present: record.present,
                    marker: record.marker.is_some(),
                });
                waker.wake();
                true
            });
        }

        Ok(Self {
            shared,
            local_addr,
            event_loop: Some(event_loop),
            pump: None,
        })
    }

    /// Starts a daemon that replays an archived capture instead of
    /// tapping a live sensor.
    ///
    /// The replay covers `range` (half-open, `None` for the whole
    /// archive) and begins once the first subscriber attaches. `speed`
    /// scales the pacing: `1.0` replays at the recorded rate, `2.0`
    /// twice as fast, and `0.0` (or any non-positive value) publishes
    /// as fast as subscribers can drain. When the range is exhausted
    /// the stream closes and subscribers observe end-of-stream.
    ///
    /// Marker *bits* ride along at their archived positions;
    /// [`ClientMsg::InjectMarker`] is ignored (there is no live sensor
    /// to mark).
    ///
    /// # Errors
    ///
    /// Socket bind errors.
    pub fn start_replay<A: ToSocketAddrs>(
        archive: Arc<Archive>,
        range: Option<(SimTime, SimTime)>,
        speed: f64,
        addr: A,
        config: StreamDaemonConfig,
    ) -> io::Result<Self> {
        let hello = ServerMsg::Hello {
            frame_interval_us: FRAME_INTERVAL.as_micros() as u32,
            configs: Box::new(archive.configs().clone()),
            fleet: None,
        }
        .encode();
        let (shared, local_addr, event_loop) = launch(addr, config, hello, FrameSource::Replay)?;

        let pump = {
            let pump_shared = Arc::clone(&shared);
            let spawned = std::thread::Builder::new()
                .name("ps3-stream-replay".into())
                .spawn(move || replay_pump(&pump_shared, &archive, range, speed));
            match spawned {
                Ok(handle) => handle,
                Err(e) => {
                    // The loop thread is already up; signal shutdown
                    // and reap it rather than serve a pumpless daemon.
                    shared.shutdown.store(true, Ordering::SeqCst);
                    shared.waker.wake();
                    let _ = event_loop.join();
                    return Err(e);
                }
            }
        };

        Ok(Self {
            shared,
            local_addr,
            event_loop: Some(event_loop),
            pump: Some(pump),
        })
    }

    /// The address the daemon is listening on.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Live daemon counters.
    #[must_use]
    pub fn stats(&self) -> StreamStats {
        self.shared.stats_snapshot()
    }

    /// The sensor this daemon is serving, or `None` in replay mode.
    #[must_use]
    pub fn sensor(&self) -> Option<&SharedPowerSensor> {
        match &self.shared.source {
            FrameSource::Live(sensor) => Some(sensor),
            FrameSource::Replay => None,
        }
    }

    /// Whether this daemon replays an archive rather than serving a
    /// live sensor.
    #[must_use]
    pub fn is_replay(&self) -> bool {
        matches!(self.shared.source, FrameSource::Replay)
    }

    /// Stops accepting, disconnects all subscribers, and joins every
    /// daemon thread. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.ring.close();
        self.shared.waker.wake();
        if let Some(handle) = self.event_loop.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.pump.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for StreamDaemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl core::fmt::Debug for StreamDaemon {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("StreamDaemon")
            .field("local_addr", &self.local_addr)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

/// The shared bring-up path for live and replay daemons: bind, build
/// the ring and shared state, spawn the event loop.
fn launch<A: ToSocketAddrs>(
    addr: A,
    config: StreamDaemonConfig,
    hello: Vec<u8>,
    source: FrameSource,
) -> io::Result<(Arc<DaemonShared>, SocketAddr, JoinHandle<()>)> {
    let parts = bring_up(addr)?;
    let local_addr = parts.local_addr();
    let shared = Arc::new(DaemonShared {
        ring: Arc::new(BroadcastRing::new(config.ring_capacity)),
        source,
        config: config.clone(),
        hello,
        shutdown: Arc::new(AtomicBool::new(false)),
        stats: Arc::new(LoopStats::default()),
        waker: parts.waker(),
    });
    let event_loop = spawn_loop(
        "ps3-stream-loop",
        "ps3-stream",
        parts,
        DaemonHandler {
            shared: Arc::clone(&shared),
        },
        config,
        Arc::clone(&shared.shutdown),
        Arc::clone(&shared.stats),
    )?;
    Ok((shared, local_addr, event_loop))
}

/// Per-subscriber streaming state: the ring cursor, the downsampler,
/// and the batch being assembled — what the dedicated sender thread
/// used to keep on its stack.
struct SubSession {
    slot_mask: u8,
    downsampler: Downsampler,
    cursor: u64,
    my_gaps: u64,
    batch: Vec<StreamFrame>,
}

/// The plain daemon's event-loop personality: one ring, one cursor
/// per subscriber.
struct DaemonHandler {
    shared: Arc<DaemonShared>,
}

impl Handler for DaemonHandler {
    type Session = SubSession;

    fn begin(
        &self,
        pair_mask: u8,
        divisor: u32,
        // A plain single-rig daemon serves the same stream whatever
        // rig the client asked for; routing lives in `ps3-fleet`.
        _rig: Option<RigSelector>,
    ) -> io::Result<(Vec<u8>, SubSession)> {
        // Expand the pair mask to a slot mask (pair p = slots 2p, 2p+1).
        let mut slot_mask = 0u8;
        for pair in 0..SENSOR_SLOTS / 2 {
            if pair_mask & (1 << pair) != 0 {
                slot_mask |= 0b11 << (2 * pair);
            }
        }
        Ok((
            self.shared.hello.clone(),
            SubSession {
                slot_mask,
                downsampler: Downsampler::new(divisor),
                // Subscribers start at the live edge, not the history.
                cursor: self.shared.ring.head(),
                my_gaps: 0,
                batch: Vec::with_capacity(MAX_BATCH_FRAMES),
            },
        ))
    }

    fn pump(&self, s: &mut SubSession, out: &mut OutQueue) -> Pump {
        let shared = &self.shared;
        while !out.is_full() {
            match shared.ring.next(s.cursor, Duration::ZERO) {
                ReadOutcome::Frame(frame) => {
                    s.cursor += 1;
                    let mut masked = frame;
                    masked.present &= s.slot_mask;
                    if let Some(frame) = s.downsampler.push(&masked) {
                        s.batch.push(frame);
                    }
                    // Flush when full, or when the ring is drained (so
                    // the last frames of a burst are not held back —
                    // and so the batch is provably empty by the time
                    // `Closed` arrives).
                    let drained = s.cursor >= shared.ring.head();
                    if s.batch.len() >= MAX_BATCH_FRAMES || (drained && !s.batch.is_empty()) {
                        out.push(&ServerMsg::Batch {
                            frames: std::mem::take(&mut s.batch),
                        });
                    }
                }
                ReadOutcome::Lapped { resume_at, dropped } => {
                    s.cursor = resume_at;
                    s.downsampler.reset();
                    s.batch.clear();
                    s.my_gaps += 1;
                    shared.stats.gap_events.fetch_add(1, Ordering::SeqCst);
                    out.push(&ServerMsg::Gap { dropped });
                    if s.my_gaps > shared.config.max_gap_events {
                        return Pump::Evict(EvictReason::TooManyGaps {
                            gaps: s.my_gaps,
                            limit: shared.config.max_gap_events,
                        });
                    }
                }
                ReadOutcome::TimedOut => return Pump::Idle,
                ReadOutcome::Closed => return Pump::Closed,
            }
        }
        Pump::Idle
    }

    fn control(&self, _s: &mut SubSession, msg: ClientMsg, out: &mut OutQueue) -> Control {
        match msg {
            ClientMsg::InjectMarker { label } => {
                // Markers only make sense against a live sensor; in
                // replay mode the archived marker bits are replayed
                // as-is and injections are ignored.
                if let FrameSource::Live(sensor) = &self.shared.source {
                    let _ = sensor.mark(label);
                }
                Control::Continue
            }
            ClientMsg::QueryStats => {
                out.push(&ServerMsg::Stats(self.shared.stats_snapshot()));
                Control::Continue
            }
            ClientMsg::QueryFleet => {
                // Not a coordinator: answer with an empty roster so
                // fleet-aware tools degrade gracefully.
                out.push(&ServerMsg::FleetStatus { rigs: Vec::new() });
                Control::Continue
            }
            ClientMsg::Bye => Control::Disconnect,
            ClientMsg::Subscribe { .. } => Control::Disconnect, // protocol violation
        }
    }
}

/// Publishes an archived range into the ring, paced against wall
/// clock, then closes the ring so subscribers see end-of-stream.
///
/// Waits for the first subscriber before starting (plus a short settle
/// so its cursor is parked at the ring head) — a replay nobody
/// watches would otherwise finish before anyone could attach.
fn replay_pump(
    shared: &Arc<DaemonShared>,
    archive: &Archive,
    range: Option<(SimTime, SimTime)>,
    speed: f64,
) {
    while shared.stats.active_subscribers.load(Ordering::SeqCst) == 0 {
        if shared.shutdown.load(Ordering::SeqCst) {
            shared.ring.close();
            shared.waker.wake();
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    std::thread::sleep(Duration::from_millis(50));

    let start_wall = Instant::now();
    let mut first_time: Option<SimTime> = None;
    'outer: for meta in archive.segments() {
        if let Some((start, end)) = range {
            if meta.header.end_us < start.as_micros() || meta.header.start_us >= end.as_micros() {
                continue;
            }
        }
        // A segment that was readable at open time can only fail here
        // if the file changed underneath us; end the replay cleanly.
        let Ok(frames) = archive.decode_segment_frames(meta) else {
            break;
        };
        for frame in frames {
            if shared.shutdown.load(Ordering::SeqCst) {
                break 'outer;
            }
            if let Some((start, end)) = range {
                if frame.time < start {
                    continue;
                }
                if frame.time >= end {
                    break 'outer;
                }
            }
            let t0 = *first_time.get_or_insert(frame.time);
            if speed > 0.0 {
                let offset = frame.time.saturating_duration_since(t0);
                let target = Duration::from_secs_f64(offset.as_secs_f64() / speed);
                loop {
                    let elapsed = start_wall.elapsed();
                    if elapsed >= target {
                        break;
                    }
                    std::thread::sleep((target - elapsed).min(Duration::from_millis(50)));
                    if shared.shutdown.load(Ordering::SeqCst) {
                        break 'outer;
                    }
                }
            }
            shared.ring.publish(&StreamFrame {
                time: frame.time,
                raw: frame.raw,
                present: frame.present,
                marker: frame.marker.is_some(),
            });
            shared.waker.wake();
        }
    }
    shared.ring.close();
    shared.waker.wake();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_default_is_sane() {
        let config = StreamDaemonConfig::default();
        assert!(config.ring_capacity >= 1024);
        assert!(config.write_timeout >= Duration::from_millis(100));
        assert!(config.max_gap_events >= 1);
    }
}
