//! Socket plumbing shared by the stream daemon and the fleet
//! coordinator.
//!
//! The raw-syscall pieces ([`bind_reusable`] — `SO_REUSEADDR` set
//! *before* `bind` so a bounced daemon never races the kernel's
//! `TIME_WAIT` hold — and [`set_send_buffer`] — `SO_SNDBUF` capping)
//! live in the vendored `mio` compat crate, the workspace's one
//! `unsafe` enclave; this module re-exports them so `ps3-stream`
//! stays `#![forbid(unsafe_code)]` and existing callers keep their
//! import paths.

use std::io;

pub use mio::net::{bind_reusable, set_send_buffer};

/// Resolves a daemon's listen address: an explicit CLI value wins,
/// then the `PS3_BIND` environment variable, then `default`. Shared by
/// `ps3-streamd` and `ps3-fleet` so both honour the same conventions.
#[must_use]
pub fn resolve_bind(explicit: Option<String>, default: &str) -> String {
    explicit
        .or_else(|| std::env::var("PS3_BIND").ok().filter(|v| !v.is_empty()))
        .unwrap_or_else(|| default.to_owned())
}

/// Formats a bind failure so the colliding address is named (an
/// `EADDRINUSE` without the address is useless in fleet logs).
#[must_use]
pub fn bind_error(addr: &str, e: &io::Error) -> String {
    if e.kind() == io::ErrorKind::AddrInUse {
        format!("cannot bind {addr}: address already in use (another daemon on {addr}?)")
    } else {
        format!("cannot bind {addr}: {e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binds_and_accepts() {
        let listener = bind_reusable("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::net::TcpStream::connect(addr).unwrap();
        let (_conn, peer) = listener.accept().unwrap();
        assert_eq!(peer, client.local_addr().unwrap());
    }

    #[test]
    fn rebinds_immediately_after_close() {
        let listener = bind_reusable("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // Leave a connection half-open so the old listener's port
        // lingers, then rebind the exact same address straight away.
        let _client = std::net::TcpStream::connect(addr).unwrap();
        let (_conn, _) = listener.accept().unwrap();
        drop(listener);
        let again = bind_reusable(addr).unwrap();
        assert_eq!(again.local_addr().unwrap(), addr);
    }

    #[test]
    fn reports_collision() {
        let listener = bind_reusable("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // SO_REUSEADDR does not allow two *live* listeners.
        let err = bind_reusable(addr).unwrap_err();
        let msg = bind_error(&addr.to_string(), &err);
        assert!(
            msg.contains(&addr.to_string()) && msg.contains("in use"),
            "collision message must name the address: {msg}"
        );
    }

    #[test]
    fn resolve_bind_prefers_explicit_over_default() {
        assert_eq!(
            resolve_bind(Some("10.0.0.1:9".into()), "127.0.0.1:9421"),
            "10.0.0.1:9"
        );
        // No explicit value and (in the test env) no PS3_BIND: default.
        if std::env::var("PS3_BIND").is_err() {
            assert_eq!(resolve_bind(None, "127.0.0.1:9421"), "127.0.0.1:9421");
        }
    }
}
