//! Socket plumbing shared by the stream daemon and the fleet
//! coordinator.
//!
//! The one non-trivial piece is [`bind_reusable`]: binding a listener
//! with `SO_REUSEADDR` set *before* `bind`. A daemon that is bounced
//! (stopped and immediately restarted on the same port — exactly what
//! the fleet coordinator does when it restarts a crashed rig, and what
//! the reconnect tests do on purpose) would otherwise race the kernel's
//! `TIME_WAIT` hold on the old listening socket and fail with
//! `EADDRINUSE`. `std::net::TcpListener::bind` offers no hook to set
//! the option first, so on Linux this goes through the raw socket
//! calls; elsewhere it falls back to the plain `std` bind.

use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};

/// Binds a TCP listener with `SO_REUSEADDR`, so a just-closed listener
/// on the same address does not block the new bind.
///
/// Resolves `addr` like [`TcpListener::bind`] (first address that
/// binds wins). The returned listener is in the default blocking mode.
///
/// # Errors
///
/// Address resolution and socket bind errors; the error for a bind
/// failure is the raw OS error (callers prepend the address).
pub fn bind_reusable<A: ToSocketAddrs>(addr: A) -> io::Result<TcpListener> {
    let mut last_err = None;
    for addr in addr.to_socket_addrs()? {
        match bind_one(addr) {
            Ok(listener) => return Ok(listener),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.unwrap_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "could not resolve any address")
    }))
}

#[cfg(target_os = "linux")]
fn bind_one(addr: SocketAddr) -> io::Result<TcpListener> {
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd};

    // IPv6 listeners are rare here (every in-repo caller uses v4
    // loopback); take the std path rather than growing a second raw
    // sockaddr layout.
    let SocketAddr::V4(v4) = addr else {
        return TcpListener::bind(addr);
    };

    const AF_INET: i32 = 2;
    const SOCK_STREAM: i32 = 1;
    const SOCK_CLOEXEC: i32 = 0x8_0000;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;
    const BACKLOG: i32 = 128;

    /// `struct sockaddr_in`: family, port (network order), address
    /// (network order), 8 bytes of zero padding.
    #[repr(C)]
    struct SockAddrIn {
        family: u16,
        port: u16,
        addr: u32,
        zero: [u8; 8],
    }

    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(
            fd: i32,
            level: i32,
            optname: i32,
            optval: *const core::ffi::c_void,
            optlen: u32,
        ) -> i32;
        fn bind(fd: i32, addr: *const core::ffi::c_void, addrlen: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
    }

    // SAFETY: plain socket creation; a negative return is an error.
    let fd = unsafe { socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    // SAFETY: fd was just returned by socket() and is owned by nobody
    // else; OwnedFd closes it on every error path below.
    let fd = unsafe { OwnedFd::from_raw_fd(fd) };

    let on: i32 = 1;
    // SAFETY: valid fd; optval points at an i32 whose size is optlen.
    let rc = unsafe {
        setsockopt(
            fd.as_raw_fd(),
            SOL_SOCKET,
            SO_REUSEADDR,
            (&raw const on).cast(),
            core::mem::size_of::<i32>() as u32,
        )
    };
    if rc != 0 {
        return Err(io::Error::last_os_error());
    }

    let sa = SockAddrIn {
        family: AF_INET as u16,
        port: v4.port().to_be(),
        addr: u32::from_be_bytes(v4.ip().octets()).to_be(),
        zero: [0; 8],
    };
    // SAFETY: valid fd; sa is a properly laid-out sockaddr_in whose
    // size is passed as addrlen.
    let rc = unsafe {
        bind(
            fd.as_raw_fd(),
            (&raw const sa).cast(),
            core::mem::size_of::<SockAddrIn>() as u32,
        )
    };
    if rc != 0 {
        return Err(io::Error::last_os_error());
    }
    // SAFETY: valid, bound fd.
    if unsafe { listen(fd.as_raw_fd(), BACKLOG) } != 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(TcpListener::from(fd))
}

#[cfg(not(target_os = "linux"))]
fn bind_one(addr: SocketAddr) -> io::Result<TcpListener> {
    TcpListener::bind(addr)
}

/// Resolves a daemon's listen address: an explicit CLI value wins,
/// then the `PS3_BIND` environment variable, then `default`. Shared by
/// `ps3-streamd` and `ps3-fleet` so both honour the same conventions.
#[must_use]
pub fn resolve_bind(explicit: Option<String>, default: &str) -> String {
    explicit
        .or_else(|| std::env::var("PS3_BIND").ok().filter(|v| !v.is_empty()))
        .unwrap_or_else(|| default.to_owned())
}

/// Formats a bind failure so the colliding address is named (an
/// `EADDRINUSE` without the address is useless in fleet logs).
#[must_use]
pub fn bind_error(addr: &str, e: &io::Error) -> String {
    if e.kind() == io::ErrorKind::AddrInUse {
        format!("cannot bind {addr}: address already in use (another daemon on {addr}?)")
    } else {
        format!("cannot bind {addr}: {e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binds_and_accepts() {
        let listener = bind_reusable("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::net::TcpStream::connect(addr).unwrap();
        let (_conn, peer) = listener.accept().unwrap();
        assert_eq!(peer, client.local_addr().unwrap());
    }

    #[test]
    fn rebinds_immediately_after_close() {
        let listener = bind_reusable("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // Leave a connection half-open so the old listener's port
        // lingers, then rebind the exact same address straight away.
        let _client = std::net::TcpStream::connect(addr).unwrap();
        let (_conn, _) = listener.accept().unwrap();
        drop(listener);
        let again = bind_reusable(addr).unwrap();
        assert_eq!(again.local_addr().unwrap(), addr);
    }

    #[test]
    fn reports_collision() {
        let listener = bind_reusable("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // SO_REUSEADDR does not allow two *live* listeners.
        let err = bind_reusable(addr).unwrap_err();
        let msg = bind_error(&addr.to_string(), &err);
        assert!(
            msg.contains(&addr.to_string()) && msg.contains("in use"),
            "collision message must name the address: {msg}"
        );
    }

    #[test]
    fn resolve_bind_prefers_explicit_over_default() {
        assert_eq!(
            resolve_bind(Some("10.0.0.1:9".into()), "127.0.0.1:9421"),
            "10.0.0.1:9"
        );
        // No explicit value and (in the test env) no PS3_BIND: default.
        if std::env::var("PS3_BIND").is_err() {
            assert_eq!(resolve_bind(None, "127.0.0.1:9421"), "127.0.0.1:9421");
        }
    }
}
