//! The streaming wire protocol.
//!
//! Every message is length-prefixed: `[u32 LE length][u8 tag][payload]`
//! where `length` counts the tag byte plus the payload. Sample data
//! rides inside [`ServerMsg::Batch`] as the device's native 2-byte
//! sensor packets (see [`ps3_firmware::protocol::Packet`]), so the
//! encoder and decoder of the USB protocol are reused verbatim on the
//! network path; only the timestamp is lifted out of the 10-bit
//! wrapping scheme into an absolute µs header per frame.
//!
//! # Fleet routing extension
//!
//! A fleet coordinator multiplexes many rigs behind one endpoint. The
//! extension is negotiated per connection and fully backward
//! compatible in both directions:
//!
//! * A fleet-aware client appends a [`RigSelector`] suffix (led by a
//!   version byte) to its `Subscribe` payload. Pre-fleet daemons
//!   ignore trailing `Subscribe` bytes, so the same client can talk to
//!   a plain single-rig daemon unchanged.
//! * A coordinator answers a rig-routed `Subscribe` with a
//!   [`FleetHello`] suffix on its `Hello` and then frames samples as
//!   [`ServerMsg::RigBatch`]/[`ServerMsg::RigGap`]. A legacy
//!   `Subscribe` (no suffix) gets a plain `Hello` and untagged
//!   `Batch`/`Gap` messages for the coordinator's default rig 0, so
//!   pre-fleet clients keep working against a coordinator.

use std::io::{self, Read, Write};

use ps3_firmware::protocol::Packet;
use ps3_firmware::{SensorConfig, CONFIG_WIRE_SIZE, SENSOR_SLOTS};
use ps3_units::SimTime;

/// Upper bound on a single message body, as a corruption guard.
pub const MAX_MSG_LEN: usize = 1 << 20;

/// Frames per [`ServerMsg::Batch`] cap (keeps messages bounded).
pub const MAX_BATCH_FRAMES: usize = 512;

/// One sample frame as it travels the stream: absolute time, the raw
/// 10-bit code per slot, a mask of slots that are present, and the
/// marker flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamFrame {
    /// Absolute device timestamp.
    pub time: SimTime,
    /// Raw ADC code per sensor slot (only `present` slots meaningful).
    pub raw: [u16; SENSOR_SLOTS],
    /// Bit `i` set when slot `i` carries a sample.
    pub present: u8,
    /// Whether a marker is attached to this frame.
    pub marker: bool,
}

impl StreamFrame {
    /// A frame with no samples at the epoch.
    #[must_use]
    pub fn empty() -> Self {
        Self {
            time: SimTime::ZERO,
            raw: [0; SENSOR_SLOTS],
            present: 0,
            marker: false,
        }
    }
}

/// Version of the fleet routing extension this build speaks.
pub const FLEET_PROTO_VERSION: u8 = 1;

/// Cap on explicit rig-set sizes on the wire (corruption guard).
pub const MAX_RIG_SET: usize = 4096;

/// Which rigs a fleet subscription attaches to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RigSelector {
    /// The fleet-wide merged stream over every rig.
    All,
    /// A single rig by id.
    One(u16),
    /// An explicit set of rig ids.
    Set(Vec<u16>),
}

mod rig_kind {
    pub const ALL: u8 = 0;
    pub const ONE: u8 = 1;
    pub const SET: u8 = 2;
}

impl RigSelector {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(FLEET_PROTO_VERSION);
        match self {
            Self::All => {
                out.push(rig_kind::ALL);
                out.extend_from_slice(&0u16.to_le_bytes());
            }
            Self::One(id) => {
                out.push(rig_kind::ONE);
                out.extend_from_slice(&1u16.to_le_bytes());
                out.extend_from_slice(&id.to_le_bytes());
            }
            Self::Set(ids) => {
                out.push(rig_kind::SET);
                out.extend_from_slice(&(ids.len() as u16).to_le_bytes());
                for id in ids {
                    out.extend_from_slice(&id.to_le_bytes());
                }
            }
        }
    }

    /// Decodes the optional rig-selector suffix of a `Subscribe`.
    ///
    /// No suffix means a legacy subscription (`None`). A suffix with a
    /// version this build does not speak is *ignored*, not rejected:
    /// the connection negotiates down to the legacy protocol, exactly
    /// as a pre-fleet daemon would behave.
    fn decode_suffix(bytes: &[u8]) -> io::Result<Option<Self>> {
        if bytes.is_empty() {
            return Ok(None);
        }
        let (version, bytes) = split(bytes, 1)?;
        if version[0] != FLEET_PROTO_VERSION {
            return Ok(None);
        }
        let (kind, bytes) = split(bytes, 1)?;
        let (count, bytes) = get_u16(bytes)?;
        let count = count as usize;
        if count > MAX_RIG_SET {
            return Err(malformed("oversized rig set"));
        }
        let (id_bytes, _) = split(bytes, 2 * count)?;
        let ids: Vec<u16> = id_bytes
            .chunks_exact(2)
            .map(|c| u16::from_le_bytes([c[0], c[1]]))
            .collect();
        match kind[0] {
            rig_kind::ALL => Ok(Some(Self::All)),
            rig_kind::ONE => {
                let &[id] = ids.as_slice() else {
                    return Err(malformed("rig selector One needs exactly one id"));
                };
                Ok(Some(Self::One(id)))
            }
            rig_kind::SET => {
                if ids.is_empty() {
                    return Err(malformed("empty rig set"));
                }
                Ok(Some(Self::Set(ids)))
            }
            k => Err(malformed(&format!("unknown rig selector kind {k:#x}"))),
        }
    }
}

/// The coordinator's half of the fleet negotiation, appended to
/// `Hello` when (and only when) the client's `Subscribe` carried a
/// [`RigSelector`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetHello {
    /// Extension version the coordinator speaks.
    pub version: u8,
    /// Rigs behind this coordinator.
    pub rigs: u16,
}

/// Per-rig health snapshot carried by [`ServerMsg::FleetStatus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RigStatus {
    /// Rig id (0-based).
    pub id: u16,
    /// `true` while the rig's acquisition stack is up.
    pub alive: bool,
    /// Times the supervisor restarted this rig after a crash.
    pub restarts: u32,
    /// Archive shards written so far (one per rig generation).
    pub shards: u32,
    /// Frames this rig has published into the coordinator.
    pub frames_published: u64,
    /// Gap events reported to this rig's subscribers.
    pub gap_events: u64,
    /// Frames the rig's archive writers dropped (queue overflow).
    pub writer_dropped: u64,
}

/// Messages a subscriber sends to the daemon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientMsg {
    /// Opens the stream: which sensor pairs, and how many device frames
    /// to average per delivered frame (1 = native 20 kHz).
    Subscribe {
        /// Bit `p` set selects sensor pair `p` (slots `2p` and `2p+1`).
        pair_mask: u8,
        /// Block-averaging divisor (≥ 1).
        divisor: u32,
        /// Fleet routing: which rigs to attach to. `None` is a legacy
        /// single-rig subscription (a coordinator serves its rig 0).
        rig: Option<RigSelector>,
    },
    /// Asks the daemon to inject a time-synced marker at the device.
    InjectMarker {
        /// Label paired with the marker in traces and dumps.
        label: char,
    },
    /// Requests a [`ServerMsg::Stats`] reply.
    QueryStats,
    /// Requests a [`ServerMsg::FleetStatus`] reply (a plain daemon
    /// answers with an empty rig list).
    QueryFleet,
    /// Clean goodbye before closing the connection.
    Bye,
}

/// Messages the daemon sends to a subscriber.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerMsg {
    /// First message on a stream: acquisition cadence and the sensor
    /// configuration, so the client can convert raw codes locally.
    Hello {
        /// Device frame interval in microseconds (50 at 20 kHz).
        frame_interval_us: u32,
        /// EEPROM configuration per sensor slot.
        configs: Box<[SensorConfig; SENSOR_SLOTS]>,
        /// Fleet negotiation reply; present iff the `Subscribe` carried
        /// a [`RigSelector`] and the server is a fleet coordinator.
        fleet: Option<FleetHello>,
    },
    /// A run of consecutive sample frames.
    Batch {
        /// The frames, oldest first.
        frames: Vec<StreamFrame>,
    },
    /// A run of consecutive sample frames from one rig of a fleet
    /// (rig-routed subscriptions only; rigs interleave at batch
    /// granularity in a merged stream).
    RigBatch {
        /// Rig the frames came from.
        rig: u16,
        /// The frames, oldest first.
        frames: Vec<StreamFrame>,
    },
    /// The subscriber fell behind and frames were dropped (drop-oldest
    /// policy); the stream resumes after the gap.
    Gap {
        /// Number of frames this subscriber missed.
        dropped: u64,
    },
    /// A gap on one rig of a merged fleet stream. The merged stream's
    /// total drop accounting is exactly the sum of its per-rig gaps.
    RigGap {
        /// Rig whose frames were lost.
        rig: u16,
        /// Number of that rig's frames this subscriber missed.
        dropped: u64,
    },
    /// Daemon statistics, answering [`ClientMsg::QueryStats`].
    Stats(StreamStats),
    /// Per-rig fleet health, answering [`ClientMsg::QueryFleet`].
    FleetStatus {
        /// One entry per rig, in rig-id order.
        rigs: Vec<RigStatus>,
    },
    /// The daemon is closing this subscription; the reason says why,
    /// so clients (and the simulation harness) can distinguish a
    /// for-cause eviction from a clean shutdown.
    Evicted {
        /// Why the subscription ended.
        reason: EvictReason,
    },
}

/// Why the daemon closed a subscription.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictReason {
    /// The subscriber was lapped by the ring more often than the
    /// daemon's configured `max_gap_events`.
    TooManyGaps {
        /// Gap events this subscriber accumulated.
        gaps: u64,
        /// The configured limit it exceeded.
        limit: u64,
    },
    /// A TCP write to the subscriber hit the stall timeout: the peer
    /// stopped reading.
    StalledWrite,
    /// The daemon shut down (or the replayed range ended).
    Shutdown,
}

impl core::fmt::Display for EvictReason {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::TooManyGaps { gaps, limit } => {
                write!(f, "too many gaps ({gaps} > limit {limit})")
            }
            Self::StalledWrite => write!(f, "stalled write"),
            Self::Shutdown => write!(f, "daemon shutdown"),
        }
    }
}

mod reason_code {
    pub const TOO_MANY_GAPS: u8 = 0;
    pub const STALLED_WRITE: u8 = 1;
    pub const SHUTDOWN: u8 = 2;
}

/// Daemon-side counters, exposed over the wire and via
/// `StreamDaemon::stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Frames published into the broadcast ring since start.
    pub frames_published: u64,
    /// Currently connected subscribers.
    pub active_subscribers: u64,
    /// Subscribers evicted for falling behind or stalling.
    pub evicted: u64,
    /// Total gap events across all subscribers.
    pub gap_events: u64,
    /// TCP connections accepted since start (whether or not they
    /// completed a handshake).
    pub accepted: u64,
    /// High-water mark of concurrently active subscribers.
    pub active_peak: u64,
    /// Payload bytes handed to subscriber sockets.
    pub bytes_sent: u64,
    /// Evictions caused by exceeding the gap limit.
    pub evicted_gaps: u64,
    /// Evictions caused by a stalled TCP write.
    pub evicted_stalled: u64,
}

mod tag {
    pub const SUBSCRIBE: u8 = b'S';
    pub const MARKER: u8 = b'M';
    pub const QUERY_STATS: u8 = b'Q';
    pub const QUERY_FLEET: u8 = b'F';
    pub const BYE: u8 = b'B';
    pub const HELLO: u8 = b'H';
    pub const BATCH: u8 = b'D';
    pub const RIG_BATCH: u8 = b'R';
    pub const GAP: u8 = b'G';
    pub const RIG_GAP: u8 = b'g';
    pub const STATS: u8 = b'T';
    pub const FLEET_STATUS: u8 = b'f';
    pub const EVICTED: u8 = b'E';
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u16(bytes: &[u8]) -> io::Result<(u16, &[u8])> {
    let (head, rest) = split(bytes, 2)?;
    Ok((u16::from_le_bytes(head.try_into().expect("size")), rest))
}

fn get_u32(bytes: &[u8]) -> io::Result<(u32, &[u8])> {
    let (head, rest) = split(bytes, 4)?;
    Ok((u32::from_le_bytes(head.try_into().expect("size")), rest))
}

fn get_u64(bytes: &[u8]) -> io::Result<(u64, &[u8])> {
    let (head, rest) = split(bytes, 8)?;
    Ok((u64::from_le_bytes(head.try_into().expect("size")), rest))
}

fn split(bytes: &[u8], n: usize) -> io::Result<(&[u8], &[u8])> {
    if bytes.len() < n {
        return Err(malformed("message truncated"));
    }
    Ok(bytes.split_at(n))
}

fn malformed(what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("stream protocol: {what}"),
    )
}

/// Encodes one frame into `out`: `[t_us u64 LE][n u8][n × 2-byte
/// sensor packets]`.
fn encode_frame(frame: &StreamFrame, out: &mut Vec<u8>) {
    put_u64(out, frame.time.as_micros());
    let count_at = out.len();
    out.push(0);
    let mut n = 0u8;
    let mut marker_pending = frame.marker;
    for slot in 0..SENSOR_SLOTS {
        if frame.present & (1 << slot) == 0 {
            continue;
        }
        // The marker rides the first present slot. Slot 7 with the
        // marker bit would alias the timestamp packet encoding, so it
        // never carries one.
        let marker = marker_pending && slot != 7;
        if marker {
            marker_pending = false;
        }
        let packet = Packet::Sample {
            sensor: slot as u8,
            marker,
            value: frame.raw[slot],
        };
        out.extend_from_slice(&packet.encode());
        n += 1;
    }
    out[count_at] = n;
}

/// Decodes one frame, returning it and the remaining bytes.
fn decode_frame(bytes: &[u8]) -> io::Result<(StreamFrame, &[u8])> {
    let (t_us, bytes) = get_u64(bytes)?;
    let (n, bytes) = split(bytes, 1)?;
    let n = n[0] as usize;
    if n > SENSOR_SLOTS {
        return Err(malformed("too many packets in frame"));
    }
    let (packet_bytes, rest) = split(bytes, 2 * n)?;
    let mut frame = StreamFrame {
        time: SimTime::from_micros(t_us),
        raw: [0; SENSOR_SLOTS],
        present: 0,
        marker: false,
    };
    for chunk in packet_bytes.chunks_exact(2) {
        let packet = Packet::decode([chunk[0], chunk[1]])
            .map_err(|e| malformed(&format!("bad sensor packet: {e}")))?;
        match packet {
            Packet::Sample {
                sensor,
                marker,
                value,
            } => {
                frame.raw[sensor as usize] = value;
                frame.present |= 1 << sensor;
                frame.marker |= marker;
            }
            Packet::Timestamp { .. } => {
                return Err(malformed("timestamp packet inside stream frame"))
            }
        }
    }
    Ok((frame, rest))
}

impl ClientMsg {
    /// Serialises the message, including the length prefix.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        match self {
            Self::Subscribe {
                pair_mask,
                divisor,
                rig,
            } => {
                body.push(tag::SUBSCRIBE);
                body.push(*pair_mask);
                put_u32(&mut body, *divisor);
                // The rig selector is a suffix precisely because old
                // daemons ignore trailing Subscribe bytes.
                if let Some(selector) = rig {
                    selector.encode(&mut body);
                }
            }
            Self::InjectMarker { label } => {
                body.push(tag::MARKER);
                put_u32(&mut body, *label as u32);
            }
            Self::QueryStats => body.push(tag::QUERY_STATS),
            Self::QueryFleet => body.push(tag::QUERY_FLEET),
            Self::Bye => body.push(tag::BYE),
        }
        with_length_prefix(body)
    }

    /// Parses a message body (tag + payload, no length prefix).
    pub fn decode(body: &[u8]) -> io::Result<Self> {
        let (tag_byte, payload) = split(body, 1)?;
        match tag_byte[0] {
            tag::SUBSCRIBE => {
                let (mask, payload) = split(payload, 1)?;
                let (divisor, payload) = get_u32(payload)?;
                if divisor == 0 {
                    return Err(malformed("zero divisor"));
                }
                Ok(Self::Subscribe {
                    pair_mask: mask[0],
                    divisor,
                    rig: RigSelector::decode_suffix(payload)?,
                })
            }
            tag::MARKER => {
                let (code, _) = get_u32(payload)?;
                let label = char::from_u32(code).ok_or_else(|| malformed("bad marker char"))?;
                Ok(Self::InjectMarker { label })
            }
            tag::QUERY_STATS => Ok(Self::QueryStats),
            tag::QUERY_FLEET => Ok(Self::QueryFleet),
            tag::BYE => Ok(Self::Bye),
            t => Err(malformed(&format!("unknown client tag {t:#x}"))),
        }
    }
}

impl ServerMsg {
    /// Serialises the message, including the length prefix.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        match self {
            Self::Hello {
                frame_interval_us,
                configs,
                fleet,
            } => {
                body.push(tag::HELLO);
                put_u32(&mut body, *frame_interval_us);
                for cfg in configs.iter() {
                    body.extend_from_slice(&cfg.to_wire());
                }
                // Suffix only for clients that asked (rig-routed
                // Subscribe): legacy clients never see it.
                if let Some(fleet) = fleet {
                    body.push(fleet.version);
                    body.extend_from_slice(&fleet.rigs.to_le_bytes());
                }
            }
            Self::Batch { frames } => {
                body.push(tag::BATCH);
                put_u32(&mut body, frames.len() as u32);
                for frame in frames {
                    encode_frame(frame, &mut body);
                }
            }
            Self::RigBatch { rig, frames } => {
                body.push(tag::RIG_BATCH);
                body.extend_from_slice(&rig.to_le_bytes());
                put_u32(&mut body, frames.len() as u32);
                for frame in frames {
                    encode_frame(frame, &mut body);
                }
            }
            Self::Gap { dropped } => {
                body.push(tag::GAP);
                put_u64(&mut body, *dropped);
            }
            Self::RigGap { rig, dropped } => {
                body.push(tag::RIG_GAP);
                body.extend_from_slice(&rig.to_le_bytes());
                put_u64(&mut body, *dropped);
            }
            Self::FleetStatus { rigs } => {
                body.push(tag::FLEET_STATUS);
                put_u32(&mut body, rigs.len() as u32);
                for r in rigs {
                    body.extend_from_slice(&r.id.to_le_bytes());
                    body.push(u8::from(r.alive));
                    put_u32(&mut body, r.restarts);
                    put_u32(&mut body, r.shards);
                    put_u64(&mut body, r.frames_published);
                    put_u64(&mut body, r.gap_events);
                    put_u64(&mut body, r.writer_dropped);
                }
            }
            Self::Stats(stats) => {
                body.push(tag::STATS);
                put_u64(&mut body, stats.frames_published);
                put_u64(&mut body, stats.active_subscribers);
                put_u64(&mut body, stats.evicted);
                put_u64(&mut body, stats.gap_events);
                // Cumulative-counter suffix (added with the event-loop
                // daemon); older decoders ignore trailing bytes, and
                // this decoder reads it as zeros when absent.
                put_u64(&mut body, stats.accepted);
                put_u64(&mut body, stats.active_peak);
                put_u64(&mut body, stats.bytes_sent);
                put_u64(&mut body, stats.evicted_gaps);
                put_u64(&mut body, stats.evicted_stalled);
            }
            Self::Evicted { reason } => {
                body.push(tag::EVICTED);
                let (code, gaps, limit) = match reason {
                    EvictReason::TooManyGaps { gaps, limit } => {
                        (reason_code::TOO_MANY_GAPS, *gaps, *limit)
                    }
                    EvictReason::StalledWrite => (reason_code::STALLED_WRITE, 0, 0),
                    EvictReason::Shutdown => (reason_code::SHUTDOWN, 0, 0),
                };
                body.push(code);
                put_u64(&mut body, gaps);
                put_u64(&mut body, limit);
            }
        }
        with_length_prefix(body)
    }

    /// Parses a message body (tag + payload, no length prefix).
    pub fn decode(body: &[u8]) -> io::Result<Self> {
        let (tag_byte, payload) = split(body, 1)?;
        match tag_byte[0] {
            tag::HELLO => {
                let (frame_interval_us, mut payload) = get_u32(payload)?;
                let mut configs: Box<[SensorConfig; SENSOR_SLOTS]> =
                    Box::new(core::array::from_fn(|_| SensorConfig::unpopulated()));
                for cfg in configs.iter_mut() {
                    let (record, rest) = split(payload, CONFIG_WIRE_SIZE)?;
                    *cfg = SensorConfig::from_wire(record.try_into().expect("size"))
                        .map_err(|e| malformed(&format!("bad sensor config: {e}")))?;
                    payload = rest;
                }
                // Optional fleet-negotiation suffix.
                let fleet = if payload.is_empty() {
                    None
                } else {
                    let (version, payload) = split(payload, 1)?;
                    let (rigs, _) = get_u16(payload)?;
                    Some(FleetHello {
                        version: version[0],
                        rigs,
                    })
                };
                Ok(Self::Hello {
                    frame_interval_us,
                    configs,
                    fleet,
                })
            }
            tag::BATCH => {
                let (count, mut payload) = get_u32(payload)?;
                if count as usize > MAX_BATCH_FRAMES {
                    return Err(malformed("oversized batch"));
                }
                let mut frames = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let (frame, rest) = decode_frame(payload)?;
                    frames.push(frame);
                    payload = rest;
                }
                Ok(Self::Batch { frames })
            }
            tag::RIG_BATCH => {
                let (rig, payload) = get_u16(payload)?;
                let (count, mut payload) = get_u32(payload)?;
                if count as usize > MAX_BATCH_FRAMES {
                    return Err(malformed("oversized batch"));
                }
                let mut frames = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let (frame, rest) = decode_frame(payload)?;
                    frames.push(frame);
                    payload = rest;
                }
                Ok(Self::RigBatch { rig, frames })
            }
            tag::GAP => {
                let (dropped, _) = get_u64(payload)?;
                Ok(Self::Gap { dropped })
            }
            tag::RIG_GAP => {
                let (rig, payload) = get_u16(payload)?;
                let (dropped, _) = get_u64(payload)?;
                Ok(Self::RigGap { rig, dropped })
            }
            tag::FLEET_STATUS => {
                let (count, mut payload) = get_u32(payload)?;
                if count as usize > MAX_RIG_SET {
                    return Err(malformed("oversized fleet status"));
                }
                let mut rigs = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let (id, rest) = get_u16(payload)?;
                    let (alive, rest) = split(rest, 1)?;
                    let (restarts, rest) = get_u32(rest)?;
                    let (shards, rest) = get_u32(rest)?;
                    let (frames_published, rest) = get_u64(rest)?;
                    let (gap_events, rest) = get_u64(rest)?;
                    let (writer_dropped, rest) = get_u64(rest)?;
                    rigs.push(RigStatus {
                        id,
                        alive: alive[0] != 0,
                        restarts,
                        shards,
                        frames_published,
                        gap_events,
                        writer_dropped,
                    });
                    payload = rest;
                }
                Ok(Self::FleetStatus { rigs })
            }
            tag::STATS => {
                let (frames_published, payload) = get_u64(payload)?;
                let (active_subscribers, payload) = get_u64(payload)?;
                let (evicted, payload) = get_u64(payload)?;
                let (gap_events, payload) = get_u64(payload)?;
                // Optional suffix from event-loop daemons; a pre-suffix
                // peer's message simply reads as zeros.
                let mut suffix = [0u64; 5];
                let mut payload = payload;
                for slot in &mut suffix {
                    if payload.len() < 8 {
                        break;
                    }
                    let (v, rest) = get_u64(payload)?;
                    *slot = v;
                    payload = rest;
                }
                Ok(Self::Stats(StreamStats {
                    frames_published,
                    active_subscribers,
                    evicted,
                    gap_events,
                    accepted: suffix[0],
                    active_peak: suffix[1],
                    bytes_sent: suffix[2],
                    evicted_gaps: suffix[3],
                    evicted_stalled: suffix[4],
                }))
            }
            tag::EVICTED => {
                // A payload-less Evicted (the pre-reason wire form) is
                // read as a shutdown notice.
                if payload.is_empty() {
                    return Ok(Self::Evicted {
                        reason: EvictReason::Shutdown,
                    });
                }
                let (code, payload) = split(payload, 1)?;
                let (gaps, payload) = get_u64(payload)?;
                let (limit, _) = get_u64(payload)?;
                let reason = match code[0] {
                    reason_code::TOO_MANY_GAPS => EvictReason::TooManyGaps { gaps, limit },
                    reason_code::STALLED_WRITE => EvictReason::StalledWrite,
                    reason_code::SHUTDOWN => EvictReason::Shutdown,
                    c => return Err(malformed(&format!("unknown evict reason {c:#x}"))),
                };
                Ok(Self::Evicted { reason })
            }
            t => Err(malformed(&format!("unknown server tag {t:#x}"))),
        }
    }
}

fn with_length_prefix(body: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Reads one length-prefixed message body from `reader`.
///
/// # Errors
///
/// I/O errors from the underlying reader;
/// [`io::ErrorKind::InvalidData`] on an oversized or empty length.
pub fn read_msg_body<R: Read>(reader: &mut R) -> io::Result<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    reader.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len == 0 || len > MAX_MSG_LEN {
        return Err(malformed("bad message length"));
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    Ok(body)
}

/// Writes pre-encoded message bytes to `writer` and flushes.
///
/// # Errors
///
/// I/O errors from the underlying writer.
pub fn write_msg<W: Write>(writer: &mut W, encoded: &[u8]) -> io::Result<()> {
    writer.write_all(encoded)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(t_us: u64, present: u8, marker: bool) -> StreamFrame {
        let mut raw = [0u16; SENSOR_SLOTS];
        for (slot, code) in raw.iter_mut().enumerate() {
            *code = (100 * slot as u16 + t_us as u16) & 0x3FF;
        }
        StreamFrame {
            time: SimTime::from_micros(t_us),
            raw,
            present,
            marker,
        }
    }

    fn roundtrip_server(msg: &ServerMsg) -> ServerMsg {
        let bytes = msg.encode();
        let mut cursor = io::Cursor::new(bytes);
        let body = read_msg_body(&mut cursor).unwrap();
        ServerMsg::decode(&body).unwrap()
    }

    #[test]
    fn client_messages_roundtrip() {
        for msg in [
            ClientMsg::Subscribe {
                pair_mask: 0b0101,
                divisor: 2000,
                rig: None,
            },
            ClientMsg::Subscribe {
                pair_mask: 0x0F,
                divisor: 1,
                rig: Some(RigSelector::All),
            },
            ClientMsg::Subscribe {
                pair_mask: 0x0F,
                divisor: 4,
                rig: Some(RigSelector::One(31)),
            },
            ClientMsg::Subscribe {
                pair_mask: 0x01,
                divisor: 20,
                rig: Some(RigSelector::Set(vec![0, 7, 99])),
            },
            ClientMsg::InjectMarker { label: 'λ' },
            ClientMsg::QueryStats,
            ClientMsg::QueryFleet,
            ClientMsg::Bye,
        ] {
            let bytes = msg.encode();
            let mut cursor = io::Cursor::new(bytes);
            let body = read_msg_body(&mut cursor).unwrap();
            assert_eq!(ClientMsg::decode(&body).unwrap(), msg);
        }
    }

    #[test]
    fn rig_selector_negotiates_down() {
        // Legacy wire form (no suffix) decodes as a legacy subscribe.
        let legacy = [tag::SUBSCRIBE, 0x0F, 1, 0, 0, 0];
        assert_eq!(
            ClientMsg::decode(&legacy).unwrap(),
            ClientMsg::Subscribe {
                pair_mask: 0x0F,
                divisor: 1,
                rig: None,
            }
        );
        // A future extension version is ignored, not rejected: the
        // connection falls back to the legacy protocol.
        let future = [tag::SUBSCRIBE, 0x0F, 1, 0, 0, 0, 99, 0, 0, 0];
        assert_eq!(
            ClientMsg::decode(&future).unwrap(),
            ClientMsg::Subscribe {
                pair_mask: 0x0F,
                divisor: 1,
                rig: None,
            }
        );
        // A version-1 suffix with garbage inside is an error.
        let bad = [
            tag::SUBSCRIBE,
            0x0F,
            1,
            0,
            0,
            0,
            FLEET_PROTO_VERSION,
            9,
            0,
            0,
        ];
        assert!(ClientMsg::decode(&bad).is_err());
    }

    #[test]
    fn fleet_messages_roundtrip() {
        // Masked slots carry no wire data, so use frames whose masked
        // raw codes are already zero to compare for equality.
        let masked = |t_us, present, marker| {
            let mut f = frame(t_us, present, marker);
            for slot in 0..SENSOR_SLOTS {
                if present & (1 << slot) == 0 {
                    f.raw[slot] = 0;
                }
            }
            f
        };
        let msgs = [
            ServerMsg::RigBatch {
                rig: 17,
                frames: vec![masked(1000, 0b0011, false), masked(1050, 0b0011, true)],
            },
            ServerMsg::RigGap {
                rig: 3,
                dropped: 8192,
            },
            ServerMsg::FleetStatus {
                rigs: vec![
                    RigStatus {
                        id: 0,
                        alive: true,
                        restarts: 0,
                        shards: 1,
                        frames_published: 123_456,
                        gap_events: 0,
                        writer_dropped: 0,
                    },
                    RigStatus {
                        id: 1,
                        alive: false,
                        restarts: 2,
                        shards: 3,
                        frames_published: 99,
                        gap_events: 7,
                        writer_dropped: 1,
                    },
                ],
            },
        ];
        for msg in msgs {
            assert_eq!(roundtrip_server(&msg), msg);
        }
    }

    #[test]
    fn hello_fleet_suffix_is_negotiated() {
        let configs: Box<[SensorConfig; SENSOR_SLOTS]> =
            Box::new(core::array::from_fn(|_| SensorConfig::unpopulated()));
        let msg = ServerMsg::Hello {
            frame_interval_us: 50,
            configs: configs.clone(),
            fleet: Some(FleetHello {
                version: FLEET_PROTO_VERSION,
                rigs: 32,
            }),
        };
        let ServerMsg::Hello { fleet, .. } = roundtrip_server(&msg) else {
            panic!("wrong message kind");
        };
        assert_eq!(
            fleet,
            Some(FleetHello {
                version: FLEET_PROTO_VERSION,
                rigs: 32
            })
        );
        // A plain Hello (what a pre-fleet daemon sends) has no suffix.
        let plain = ServerMsg::Hello {
            frame_interval_us: 50,
            configs,
            fleet: None,
        };
        let ServerMsg::Hello { fleet, .. } = roundtrip_server(&plain) else {
            panic!("wrong message kind");
        };
        assert_eq!(fleet, None);
    }

    #[test]
    fn batch_roundtrips_with_masked_slots() {
        let msg = ServerMsg::Batch {
            frames: vec![
                frame(1000, 0b0000_0011, true),
                frame(1050, 0b1111_1111, false),
                frame(1100, 0b1000_0000, true), // marker on slot-7-only frame
            ],
        };
        let ServerMsg::Batch { frames } = roundtrip_server(&msg) else {
            panic!("wrong message kind");
        };
        assert_eq!(frames[0].present, 0b0000_0011);
        assert!(frames[0].marker);
        assert_eq!(frames[0].time.as_micros(), 1000);
        // Only present slots carry data; masked raw codes are zeroed.
        assert_eq!(frames[0].raw[2], 0);
        assert_eq!(frames[1].present, 0b1111_1111);
        let original = frame(1050, 0b1111_1111, false);
        assert_eq!(frames[1].raw, original.raw);
        // Slot 7 cannot carry a marker (would alias a timestamp
        // packet): the flag is dropped, never mis-decoded.
        assert_eq!(frames[2].present, 0b1000_0000);
        assert!(!frames[2].marker);
    }

    #[test]
    fn hello_roundtrips_configs() {
        let mut configs: Box<[SensorConfig; SENSOR_SLOTS]> =
            Box::new(core::array::from_fn(|_| SensorConfig::unpopulated()));
        configs[0] = SensorConfig::new("I0", 3.3, 0.12, true);
        configs[1] = SensorConfig::new("U0", 3.3, 5.0, true);
        let msg = ServerMsg::Hello {
            frame_interval_us: 50,
            configs,
            fleet: None,
        };
        let ServerMsg::Hello {
            frame_interval_us,
            configs,
            fleet: _,
        } = roundtrip_server(&msg)
        else {
            panic!("wrong message kind");
        };
        assert_eq!(frame_interval_us, 50);
        assert_eq!(configs[0].name, "I0");
        assert!((configs[1].gain - 5.0).abs() < 1e-6);
        assert!(!configs[2].enabled);
    }

    #[test]
    fn stats_and_gap_roundtrip() {
        let stats = StreamStats {
            frames_published: 123_456,
            active_subscribers: 9,
            evicted: 2,
            gap_events: 17,
            accepted: 31,
            active_peak: 12,
            bytes_sent: 1_048_576,
            evicted_gaps: 1,
            evicted_stalled: 1,
        };
        assert_eq!(
            roundtrip_server(&ServerMsg::Stats(stats)),
            ServerMsg::Stats(stats)
        );
        // A pre-suffix Stats payload (4 counters only) still decodes:
        // the cumulative counters read as zero.
        let mut legacy = vec![b'T'];
        for v in [7u64, 1, 0, 0] {
            legacy.extend_from_slice(&v.to_le_bytes());
        }
        let ServerMsg::Stats(decoded) = ServerMsg::decode(&legacy).unwrap() else {
            panic!("wrong message kind");
        };
        assert_eq!(decoded.frames_published, 7);
        assert_eq!(decoded.accepted, 0);
        assert_eq!(decoded.active_peak, 0);
        assert_eq!(
            roundtrip_server(&ServerMsg::Gap { dropped: 4096 }),
            ServerMsg::Gap { dropped: 4096 }
        );
        for reason in [
            EvictReason::TooManyGaps {
                gaps: 17,
                limit: 16,
            },
            EvictReason::StalledWrite,
            EvictReason::Shutdown,
        ] {
            assert_eq!(
                roundtrip_server(&ServerMsg::Evicted { reason }),
                ServerMsg::Evicted { reason }
            );
        }
        // The legacy payload-less form decodes as a shutdown notice.
        assert_eq!(
            ServerMsg::decode(&[tag::EVICTED]).unwrap(),
            ServerMsg::Evicted {
                reason: EvictReason::Shutdown
            }
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(ServerMsg::decode(&[0xFF, 0, 0]).is_err());
        assert!(ClientMsg::decode(&[]).is_err());
        assert!(ClientMsg::decode(&[tag::SUBSCRIBE, 1, 0, 0, 0, 0]).is_err()); // divisor 0
        let mut short = io::Cursor::new(vec![200u8, 0, 0, 0, 1, 2]);
        assert!(read_msg_body(&mut short).is_err());
        let mut huge = io::Cursor::new((u32::MAX).to_le_bytes().to_vec());
        assert!(read_msg_body(&mut huge).is_err());
    }
}
