//! TCP subscriber to a [`StreamDaemon`](crate::StreamDaemon).
//!
//! A [`StreamClient`] subscribes with a pair mask and a rate divisor,
//! converts raw codes to physical readings locally (using the sensor
//! configuration carried in the `Hello` message and the same
//! [`ps3_core::pair_readings`] math the host library uses), and
//! implements [`ps3_pmt::PowerMeter`] so a networked sensor plugs into
//! everything PMT-based.

use std::io;
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use ps3_core::pair_readings;
use ps3_firmware::{SensorConfig, SENSOR_SLOTS};
use ps3_pmt::PowerMeter;
use ps3_sensors::AdcSpec;
use ps3_units::{SimDuration, SimTime, Watts};

use crate::proto::{
    read_msg_body, write_msg, ClientMsg, EvictReason, ServerMsg, StreamFrame, StreamStats,
};

/// Subscription parameters for [`StreamClient::connect`].
#[derive(Debug, Clone, Copy)]
pub struct StreamClientConfig {
    /// Bit `p` selects sensor pair `p`. Default: all four pairs.
    pub pair_mask: u8,
    /// Device frames averaged per delivered frame (1 = native 20 kHz,
    /// 20 = 1 kHz, 2000 = 10 Hz).
    pub divisor: u32,
}

impl Default for StreamClientConfig {
    fn default() -> Self {
        Self {
            pair_mask: 0x0F,
            divisor: 1,
        }
    }
}

/// Per-frame observer; runs on the client's reader thread.
pub type FrameCallback = Box<dyn FnMut(&StreamFrame) + Send>;

struct ClientShared {
    frames_received: AtomicU64,
    gap_events: AtomicU64,
    dropped_frames: AtomicU64,
    evicted: AtomicBool,
    eviction: Mutex<Option<EvictReason>>,
    alive: AtomicBool,
    /// Latest frame with its converted total power.
    last: Mutex<Option<(StreamFrame, Watts)>>,
    callback: Mutex<Option<FrameCallback>>,
    stats_reply: Mutex<Option<StreamStats>>,
    stats_cv: Condvar,
}

/// A connected stream subscriber.
pub struct StreamClient {
    writer: Mutex<TcpStream>,
    shared: Arc<ClientShared>,
    reader: Option<JoinHandle<()>>,
    configs: Box<[SensorConfig; SENSOR_SLOTS]>,
    frame_interval: SimDuration,
    divisor: u32,
}

impl StreamClient {
    /// Connects and subscribes.
    ///
    /// # Errors
    ///
    /// Connection failures, or a malformed daemon handshake.
    pub fn connect<A: ToSocketAddrs>(addr: A, config: StreamClientConfig) -> io::Result<Self> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(5)))?;
        write_msg(
            &mut stream,
            &ClientMsg::Subscribe {
                pair_mask: config.pair_mask,
                divisor: config.divisor,
            }
            .encode(),
        )?;
        let body = read_msg_body(&mut stream)?;
        let ServerMsg::Hello {
            frame_interval_us,
            configs,
        } = ServerMsg::decode(&body)?
        else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "daemon did not send Hello",
            ));
        };
        stream.set_read_timeout(None)?;

        let shared = Arc::new(ClientShared {
            frames_received: AtomicU64::new(0),
            gap_events: AtomicU64::new(0),
            dropped_frames: AtomicU64::new(0),
            evicted: AtomicBool::new(false),
            eviction: Mutex::new(None),
            alive: AtomicBool::new(true),
            last: Mutex::new(None),
            callback: Mutex::new(None),
            stats_reply: Mutex::new(None),
            stats_cv: Condvar::new(),
        });

        let reader = {
            let shared = Arc::clone(&shared);
            let configs = configs.clone();
            let stream = stream.try_clone()?;
            std::thread::Builder::new()
                .name("ps3-stream-client".into())
                .spawn(move || reader_loop(stream, &shared, &configs))
                .expect("spawn client reader")
        };

        Ok(Self {
            writer: Mutex::new(stream),
            shared,
            reader: Some(reader),
            configs,
            frame_interval: SimDuration::from_micros(u64::from(frame_interval_us)),
            divisor: config.divisor,
        })
    }

    /// Registers an observer called with every delivered frame, on the
    /// reader thread. Replaces any previous callback.
    pub fn set_frame_callback<F: FnMut(&StreamFrame) + Send + 'static>(&self, callback: F) {
        *self.shared.callback.lock() = Some(Box::new(callback));
    }

    /// Sensor configuration announced by the daemon.
    #[must_use]
    pub fn configs(&self) -> &[SensorConfig; SENSOR_SLOTS] {
        &self.configs
    }

    /// Frames delivered to this subscriber so far (after downsampling).
    #[must_use]
    pub fn frames_received(&self) -> u64 {
        self.shared.frames_received.load(Ordering::SeqCst)
    }

    /// Times this subscriber's stream gapped (ring laps on the daemon).
    #[must_use]
    pub fn gap_events(&self) -> u64 {
        self.shared.gap_events.load(Ordering::SeqCst)
    }

    /// Total device frames lost across all gaps.
    #[must_use]
    pub fn dropped_frames(&self) -> u64 {
        self.shared.dropped_frames.load(Ordering::SeqCst)
    }

    /// `true` once the daemon has evicted this subscriber *for cause*
    /// (too many gaps or a stalled write). A clean daemon shutdown
    /// ends the stream without setting this; see
    /// [`StreamClient::eviction_reason`].
    #[must_use]
    pub fn is_evicted(&self) -> bool {
        self.shared.evicted.load(Ordering::SeqCst)
    }

    /// Why the daemon closed this subscription, once it has (including
    /// [`EvictReason::Shutdown`] for a clean daemon shutdown).
    #[must_use]
    pub fn eviction_reason(&self) -> Option<EvictReason> {
        *self.shared.eviction.lock()
    }

    /// `false` once the connection is gone (eviction, daemon shutdown,
    /// or network error).
    #[must_use]
    pub fn is_alive(&self) -> bool {
        self.shared.alive.load(Ordering::SeqCst)
    }

    /// The most recent frame, if any arrived yet.
    #[must_use]
    pub fn last_frame(&self) -> Option<StreamFrame> {
        self.shared.last.lock().map(|(frame, _)| frame)
    }

    /// Total power of the most recent frame (zero before any frame).
    #[must_use]
    pub fn last_watts(&self) -> Watts {
        self.shared
            .last
            .lock()
            .map_or(Watts::zero(), |(_, watts)| watts)
    }

    /// Asks the daemon to inject a time-synced marker.
    ///
    /// # Errors
    ///
    /// Write failure if the connection is gone.
    pub fn inject_marker(&self, label: char) -> io::Result<()> {
        write_msg(
            &mut *self.writer.lock(),
            &ClientMsg::InjectMarker { label }.encode(),
        )
    }

    /// Round-trips a statistics query to the daemon.
    ///
    /// # Errors
    ///
    /// Write failure, or [`io::ErrorKind::TimedOut`] when no reply
    /// arrives in time.
    pub fn query_stats(&self, timeout: Duration) -> io::Result<StreamStats> {
        let mut reply = self.shared.stats_reply.lock();
        *reply = None;
        write_msg(&mut *self.writer.lock(), &ClientMsg::QueryStats.encode())?;
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(stats) = reply.take() {
                return Ok(stats);
            }
            if !self.is_alive() {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionAborted,
                    "stream connection lost",
                ));
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "no stats reply from daemon",
                ));
            }
            self.shared.stats_cv.wait_for(&mut reply, deadline - now);
        }
    }

    /// Says goodbye and closes the connection. Also runs on drop.
    pub fn close(&mut self) {
        {
            let mut writer = self.writer.lock();
            let _ = write_msg(&mut *writer, &ClientMsg::Bye.encode());
            let _ = writer.shutdown(Shutdown::Both);
        }
        if let Some(handle) = self.reader.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for StreamClient {
    fn drop(&mut self) {
        self.close();
    }
}

impl core::fmt::Debug for StreamClient {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("StreamClient")
            .field("frames_received", &self.frames_received())
            .field("gap_events", &self.gap_events())
            .field("alive", &self.is_alive())
            .finish_non_exhaustive()
    }
}

impl PowerMeter for StreamClient {
    fn name(&self) -> &str {
        "PowerSensor3-stream"
    }

    fn read_watts(&mut self, _now: SimTime) -> Watts {
        self.last_watts()
    }

    fn native_interval(&self) -> SimDuration {
        SimDuration::from_nanos(self.frame_interval.as_nanos() * u64::from(self.divisor))
    }
}

/// Total power over the pairs present in `frame`, converted with the
/// announced configuration — the same math as the host library.
fn frame_watts(frame: &StreamFrame, configs: &[SensorConfig; SENSOR_SLOTS]) -> Watts {
    let adc = AdcSpec::POWERSENSOR3;
    let mut total = Watts::zero();
    for pair in 0..SENSOR_SLOTS / 2 {
        let (i_slot, u_slot) = (2 * pair, 2 * pair + 1);
        let pair_bits = (1 << i_slot) | (1 << u_slot);
        if frame.present & pair_bits != pair_bits {
            continue;
        }
        let i_cfg = &configs[i_slot];
        let u_cfg = &configs[u_slot];
        if !(i_cfg.enabled && u_cfg.enabled) {
            continue;
        }
        let (_, _, watts) = pair_readings(i_cfg, u_cfg, &adc, frame.raw[i_slot], frame.raw[u_slot]);
        total += watts;
    }
    total
}

fn reader_loop(
    mut stream: TcpStream,
    shared: &ClientShared,
    configs: &[SensorConfig; SENSOR_SLOTS],
) {
    while let Ok(msg) = read_msg_body(&mut stream).and_then(|b| ServerMsg::decode(&b)) {
        match msg {
            ServerMsg::Batch { frames } => {
                let mut callback = shared.callback.lock();
                for frame in &frames {
                    if let Some(cb) = callback.as_mut() {
                        cb(frame);
                    }
                }
                drop(callback);
                if let Some(frame) = frames.last() {
                    *shared.last.lock() = Some((*frame, frame_watts(frame, configs)));
                }
                // Counted last, so `frames_received` only covers frames
                // the callback has already observed.
                shared
                    .frames_received
                    .fetch_add(frames.len() as u64, Ordering::SeqCst);
            }
            ServerMsg::Gap { dropped } => {
                shared.gap_events.fetch_add(1, Ordering::SeqCst);
                shared.dropped_frames.fetch_add(dropped, Ordering::SeqCst);
            }
            ServerMsg::Stats(stats) => {
                *shared.stats_reply.lock() = Some(stats);
                shared.stats_cv.notify_all();
            }
            ServerMsg::Evicted { reason } => {
                *shared.eviction.lock() = Some(reason);
                if reason != EvictReason::Shutdown {
                    shared.evicted.store(true, Ordering::SeqCst);
                }
                break;
            }
            ServerMsg::Hello { .. } => { /* duplicate hello: ignore */ }
        }
    }
    shared.alive.store(false, Ordering::SeqCst);
    shared.stats_cv.notify_all();
}
