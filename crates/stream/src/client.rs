//! TCP subscriber to a [`StreamDaemon`](crate::StreamDaemon) or a
//! `ps3-fleet` coordinator.
//!
//! A [`StreamClient`] subscribes with a pair mask and a rate divisor,
//! converts raw codes to physical readings locally (using the sensor
//! configuration carried in the `Hello` message and the same
//! [`ps3_core::pair_readings`] math the host library uses), and
//! implements [`ps3_pmt::PowerMeter`] so a networked sensor plugs into
//! everything PMT-based.
//!
//! Against a fleet coordinator the client can additionally route its
//! subscription to one rig, a rig set, or the fleet-wide merged stream
//! (see [`RigSelector`]); merged frames arrive rig-tagged and the
//! client keeps per-rig gap accounting alongside the totals.
//!
//! # Reconnect semantics
//!
//! With [`StreamClientConfig::reconnect`] set, a client whose
//! connection is lost (network error, daemon restart, clean daemon
//! shutdown) redials with exponential backoff and re-sends its
//! original subscription. The new subscription attaches at the
//! server's **live head** — there is no server-side replay cursor, so
//! frames published while the client was disconnected are simply never
//! seen: they are *not* counted in [`StreamClient::dropped_frames`]
//! (that counter is reserved for ring laps the server reported). The
//! discontinuity is visible to the application as a jump in frame
//! timestamps and a bump of [`StreamClient::reconnects`]. An eviction
//! *for cause* (too many gaps, stalled write) is not retried.

use std::collections::BTreeMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use ps3_core::pair_readings;
use ps3_firmware::{SensorConfig, SENSOR_SLOTS};
use ps3_pmt::PowerMeter;
use ps3_sensors::AdcSpec;
use ps3_units::{SimDuration, SimTime, Watts};

use crate::proto::{
    read_msg_body, write_msg, ClientMsg, EvictReason, FleetHello, RigSelector, RigStatus,
    ServerMsg, StreamFrame, StreamStats,
};

/// Bounded-retry reconnect behaviour for [`StreamClientConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconnectPolicy {
    /// Redial attempts per disconnect before giving up.
    pub max_retries: u32,
    /// Delay before the first redial; doubles per failed attempt.
    pub initial_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        Self {
            max_retries: 5,
            initial_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
        }
    }
}

/// Subscription parameters for [`StreamClient::connect`].
#[derive(Debug, Clone)]
pub struct StreamClientConfig {
    /// Bit `p` selects sensor pair `p`. Default: all four pairs.
    pub pair_mask: u8,
    /// Device frames averaged per delivered frame (1 = native 20 kHz,
    /// 20 = 1 kHz, 2000 = 10 Hz).
    pub divisor: u32,
    /// Rig routing against a fleet coordinator. `None` (default) is a
    /// plain legacy subscription — a coordinator serves it from rig 0,
    /// a plain daemon ignores the distinction entirely.
    pub rig: Option<RigSelector>,
    /// Redial on connection loss. `None` (default): a lost connection
    /// ends the stream, as before.
    pub reconnect: Option<ReconnectPolicy>,
}

impl Default for StreamClientConfig {
    fn default() -> Self {
        Self {
            pair_mask: 0x0F,
            divisor: 1,
            rig: None,
            reconnect: None,
        }
    }
}

/// Per-frame observer; runs on the client's reader thread.
pub type FrameCallback = Box<dyn FnMut(&StreamFrame) + Send>;

/// Rig-tagged observer for merged streams; runs on the reader thread.
pub type RigFrameCallback = Box<dyn FnMut(u16, &StreamFrame) + Send>;

/// Per-rig delivery accounting for a rig-routed subscription.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RigCounts {
    pub rig: u16,
    pub frames: u64,
    pub gap_events: u64,
    pub dropped: u64,
}

struct ClientShared {
    frames_received: AtomicU64,
    gap_events: AtomicU64,
    dropped_frames: AtomicU64,
    reconnects: AtomicU64,
    evicted: AtomicBool,
    eviction: Mutex<Option<EvictReason>>,
    alive: AtomicBool,
    /// Set by `close()` so the reader never redials a socket we shut
    /// down on purpose.
    closing: AtomicBool,
    /// Latest frame with its converted total power.
    last: Mutex<Option<(StreamFrame, Watts)>>,
    callback: Mutex<Option<FrameCallback>>,
    rig_callback: Mutex<Option<RigFrameCallback>>,
    /// Per-rig counters, keyed by rig id (rig-tagged messages only).
    rig_counts: Mutex<BTreeMap<u16, RigCounts>>,
    stats_reply: Mutex<Option<StreamStats>>,
    stats_cv: Condvar,
    fleet_reply: Mutex<Option<Vec<RigStatus>>>,
    fleet_cv: Condvar,
}

/// A connected stream subscriber.
pub struct StreamClient {
    writer: Arc<Mutex<TcpStream>>,
    shared: Arc<ClientShared>,
    reader: Option<JoinHandle<()>>,
    configs: Box<[SensorConfig; SENSOR_SLOTS]>,
    fleet: Option<FleetHello>,
    frame_interval: SimDuration,
    divisor: u32,
}

impl StreamClient {
    /// Connects and subscribes.
    ///
    /// # Errors
    ///
    /// Connection failures, or a malformed daemon handshake.
    pub fn connect<A: ToSocketAddrs>(addr: A, config: StreamClientConfig) -> io::Result<Self> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let subscribe = ClientMsg::Subscribe {
            pair_mask: config.pair_mask,
            divisor: config.divisor,
            rig: config.rig.clone(),
        }
        .encode();
        let (stream, frame_interval_us, configs, fleet) = handshake(&addrs, &subscribe)?;

        let shared = Arc::new(ClientShared {
            frames_received: AtomicU64::new(0),
            gap_events: AtomicU64::new(0),
            dropped_frames: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            evicted: AtomicBool::new(false),
            eviction: Mutex::new(None),
            alive: AtomicBool::new(true),
            closing: AtomicBool::new(false),
            last: Mutex::new(None),
            callback: Mutex::new(None),
            rig_callback: Mutex::new(None),
            rig_counts: Mutex::new(BTreeMap::new()),
            stats_reply: Mutex::new(None),
            stats_cv: Condvar::new(),
            fleet_reply: Mutex::new(None),
            fleet_cv: Condvar::new(),
        });

        let writer = Arc::new(Mutex::new(stream.try_clone()?));
        let reader = {
            let shared = Arc::clone(&shared);
            let configs = configs.clone();
            let writer = Arc::clone(&writer);
            let reconnect = config.reconnect;
            std::thread::Builder::new()
                .name("ps3-stream-client".into())
                .spawn(move || {
                    reader_thread(
                        stream, &shared, &configs, &writer, &subscribe, &addrs, reconnect,
                    );
                })
                .expect("spawn client reader")
        };

        Ok(Self {
            writer,
            shared,
            reader: Some(reader),
            configs,
            fleet,
            frame_interval: SimDuration::from_micros(u64::from(frame_interval_us)),
            divisor: config.divisor,
        })
    }

    /// Registers an observer called with every delivered frame, on the
    /// reader thread. Replaces any previous callback.
    pub fn set_frame_callback<F: FnMut(&StreamFrame) + Send + 'static>(&self, callback: F) {
        *self.shared.callback.lock() = Some(Box::new(callback));
    }

    /// Registers a rig-tagged observer for merged-stream frames
    /// ([`ServerMsg::RigBatch`]), on the reader thread. Plain batches
    /// do not reach it. Replaces any previous rig callback.
    pub fn set_rig_frame_callback<F: FnMut(u16, &StreamFrame) + Send + 'static>(
        &self,
        callback: F,
    ) {
        *self.shared.rig_callback.lock() = Some(Box::new(callback));
    }

    /// Sensor configuration announced by the daemon.
    #[must_use]
    pub fn configs(&self) -> &[SensorConfig; SENSOR_SLOTS] {
        &self.configs
    }

    /// The coordinator's fleet extension announcement, when the
    /// subscription was rig-routed and the server understood it.
    #[must_use]
    pub fn fleet(&self) -> Option<FleetHello> {
        self.fleet
    }

    /// Frames delivered to this subscriber so far (after downsampling).
    #[must_use]
    pub fn frames_received(&self) -> u64 {
        self.shared.frames_received.load(Ordering::SeqCst)
    }

    /// Times this subscriber's stream gapped (ring laps on the daemon).
    #[must_use]
    pub fn gap_events(&self) -> u64 {
        self.shared.gap_events.load(Ordering::SeqCst)
    }

    /// Total device frames lost across all gaps.
    #[must_use]
    pub fn dropped_frames(&self) -> u64 {
        self.shared.dropped_frames.load(Ordering::SeqCst)
    }

    /// Successful redials so far (see the module docs for what a
    /// reconnect means for the frame cursor).
    #[must_use]
    pub fn reconnects(&self) -> u64 {
        self.shared.reconnects.load(Ordering::SeqCst)
    }

    /// Per-rig delivery accounting, one entry per rig that has sent
    /// this subscriber a rig-tagged batch or gap, ordered by rig id.
    #[must_use]
    pub fn rig_counts(&self) -> Vec<RigCounts> {
        self.shared.rig_counts.lock().values().copied().collect()
    }

    /// `true` once the daemon has evicted this subscriber *for cause*
    /// (too many gaps or a stalled write). A clean daemon shutdown
    /// ends the stream without setting this; see
    /// [`StreamClient::eviction_reason`].
    #[must_use]
    pub fn is_evicted(&self) -> bool {
        self.shared.evicted.load(Ordering::SeqCst)
    }

    /// Why the daemon closed this subscription, once it has (including
    /// [`EvictReason::Shutdown`] for a clean daemon shutdown).
    #[must_use]
    pub fn eviction_reason(&self) -> Option<EvictReason> {
        *self.shared.eviction.lock()
    }

    /// `false` once the connection is gone (eviction, daemon shutdown,
    /// or network error) and any configured reconnect attempts have
    /// been exhausted.
    #[must_use]
    pub fn is_alive(&self) -> bool {
        self.shared.alive.load(Ordering::SeqCst)
    }

    /// The most recent frame, if any arrived yet.
    #[must_use]
    pub fn last_frame(&self) -> Option<StreamFrame> {
        self.shared.last.lock().map(|(frame, _)| frame)
    }

    /// Total power of the most recent frame (zero before any frame).
    #[must_use]
    pub fn last_watts(&self) -> Watts {
        self.shared
            .last
            .lock()
            .map_or(Watts::zero(), |(_, watts)| watts)
    }

    /// Asks the daemon to inject a time-synced marker.
    ///
    /// # Errors
    ///
    /// Write failure if the connection is gone.
    pub fn inject_marker(&self, label: char) -> io::Result<()> {
        write_msg(
            &mut *self.writer.lock(),
            &ClientMsg::InjectMarker { label }.encode(),
        )
    }

    /// Round-trips a statistics query to the daemon.
    ///
    /// # Errors
    ///
    /// Write failure, or [`io::ErrorKind::TimedOut`] when no reply
    /// arrives in time.
    pub fn query_stats(&self, timeout: Duration) -> io::Result<StreamStats> {
        let mut reply = self.shared.stats_reply.lock();
        *reply = None;
        write_msg(&mut *self.writer.lock(), &ClientMsg::QueryStats.encode())?;
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(stats) = reply.take() {
                return Ok(stats);
            }
            if !self.is_alive() {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionAborted,
                    "stream connection lost",
                ));
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "no stats reply from daemon",
                ));
            }
            self.shared.stats_cv.wait_for(&mut reply, deadline - now);
        }
    }

    /// Round-trips a fleet roster query. A plain (non-fleet) daemon
    /// answers with an empty roster.
    ///
    /// # Errors
    ///
    /// Write failure, or [`io::ErrorKind::TimedOut`] when no reply
    /// arrives in time.
    pub fn query_fleet(&self, timeout: Duration) -> io::Result<Vec<RigStatus>> {
        let mut reply = self.shared.fleet_reply.lock();
        *reply = None;
        write_msg(&mut *self.writer.lock(), &ClientMsg::QueryFleet.encode())?;
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(rigs) = reply.take() {
                return Ok(rigs);
            }
            if !self.is_alive() {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionAborted,
                    "stream connection lost",
                ));
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "no fleet reply from daemon",
                ));
            }
            self.shared.fleet_cv.wait_for(&mut reply, deadline - now);
        }
    }

    /// Says goodbye and closes the connection. Also runs on drop.
    pub fn close(&mut self) {
        self.shared.closing.store(true, Ordering::SeqCst);
        {
            let mut writer = self.writer.lock();
            let _ = write_msg(&mut *writer, &ClientMsg::Bye.encode());
            let _ = writer.shutdown(Shutdown::Both);
        }
        if let Some(handle) = self.reader.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for StreamClient {
    fn drop(&mut self) {
        self.close();
    }
}

impl core::fmt::Debug for StreamClient {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("StreamClient")
            .field("frames_received", &self.frames_received())
            .field("gap_events", &self.gap_events())
            .field("alive", &self.is_alive())
            .finish_non_exhaustive()
    }
}

impl PowerMeter for StreamClient {
    fn name(&self) -> &str {
        "PowerSensor3-stream"
    }

    fn read_watts(&mut self, _now: SimTime) -> Watts {
        self.last_watts()
    }

    fn native_interval(&self) -> SimDuration {
        SimDuration::from_nanos(self.frame_interval.as_nanos() * u64::from(self.divisor))
    }
}

/// Total power over the pairs present in `frame`, converted with the
/// announced configuration — the same math as the host library.
fn frame_watts(frame: &StreamFrame, configs: &[SensorConfig; SENSOR_SLOTS]) -> Watts {
    let adc = AdcSpec::POWERSENSOR3;
    let mut total = Watts::zero();
    for pair in 0..SENSOR_SLOTS / 2 {
        let (i_slot, u_slot) = (2 * pair, 2 * pair + 1);
        let pair_bits = (1 << i_slot) | (1 << u_slot);
        if frame.present & pair_bits != pair_bits {
            continue;
        }
        let i_cfg = &configs[i_slot];
        let u_cfg = &configs[u_slot];
        if !(i_cfg.enabled && u_cfg.enabled) {
            continue;
        }
        let (_, _, watts) = pair_readings(i_cfg, u_cfg, &adc, frame.raw[i_slot], frame.raw[u_slot]);
        total += watts;
    }
    total
}

/// Dials the first address that answers and completes the
/// Subscribe → Hello handshake.
#[allow(clippy::type_complexity)]
fn handshake(
    addrs: &[SocketAddr],
    subscribe: &[u8],
) -> io::Result<(
    TcpStream,
    u32,
    Box<[SensorConfig; SENSOR_SLOTS]>,
    Option<FleetHello>,
)> {
    let mut stream = TcpStream::connect(addrs)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    write_msg(&mut stream, subscribe)?;
    let body = read_msg_body(&mut stream)?;
    let ServerMsg::Hello {
        frame_interval_us,
        configs,
        fleet,
    } = ServerMsg::decode(&body)?
    else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "daemon did not send Hello",
        ));
    };
    stream.set_read_timeout(None)?;
    Ok((stream, frame_interval_us, configs, fleet))
}

/// How one reader session ended.
enum SessionEnd {
    /// For-cause eviction: never redialled.
    Closed,
    /// Network loss or clean server shutdown: redialled when a
    /// [`ReconnectPolicy`] is configured.
    Lost,
}

fn reader_thread(
    mut stream: TcpStream,
    shared: &Arc<ClientShared>,
    configs: &[SensorConfig; SENSOR_SLOTS],
    writer: &Arc<Mutex<TcpStream>>,
    subscribe: &[u8],
    addrs: &[SocketAddr],
    reconnect: Option<ReconnectPolicy>,
) {
    loop {
        let end = reader_loop(&mut stream, shared, configs);
        let lost = matches!(end, SessionEnd::Lost) && !shared.closing.load(Ordering::SeqCst);
        let Some(policy) = reconnect.filter(|_| lost) else {
            break;
        };
        match redial(&policy, addrs, subscribe, shared) {
            Some(new_stream) => {
                let Ok(clone) = new_stream.try_clone() else {
                    break;
                };
                *writer.lock() = clone;
                stream = new_stream;
                shared.reconnects.fetch_add(1, Ordering::SeqCst);
            }
            None => break,
        }
    }
    shared.alive.store(false, Ordering::SeqCst);
    shared.stats_cv.notify_all();
    shared.fleet_cv.notify_all();
}

/// Bounded exponential-backoff redial; `None` when retries are
/// exhausted or the client is closing.
fn redial(
    policy: &ReconnectPolicy,
    addrs: &[SocketAddr],
    subscribe: &[u8],
    shared: &ClientShared,
) -> Option<TcpStream> {
    let mut backoff = policy.initial_backoff;
    for _ in 0..policy.max_retries {
        // Sleep in small slices so close() never waits out a long
        // backoff.
        let deadline = Instant::now() + backoff;
        loop {
            if shared.closing.load(Ordering::SeqCst) {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(10).min(deadline - now));
        }
        if let Ok((stream, _, _, _)) = handshake(addrs, subscribe) {
            return Some(stream);
        }
        backoff = (backoff * 2).min(policy.max_backoff);
    }
    None
}

fn reader_loop(
    stream: &mut TcpStream,
    shared: &ClientShared,
    configs: &[SensorConfig; SENSOR_SLOTS],
) -> SessionEnd {
    while let Ok(msg) = read_msg_body(stream).and_then(|b| ServerMsg::decode(&b)) {
        match msg {
            ServerMsg::Batch { frames } => {
                deliver(shared, configs, None, &frames);
            }
            ServerMsg::RigBatch { rig, frames } => {
                deliver(shared, configs, Some(rig), &frames);
            }
            ServerMsg::Gap { dropped } => {
                shared.gap_events.fetch_add(1, Ordering::SeqCst);
                shared.dropped_frames.fetch_add(dropped, Ordering::SeqCst);
            }
            ServerMsg::RigGap { rig, dropped } => {
                shared.gap_events.fetch_add(1, Ordering::SeqCst);
                shared.dropped_frames.fetch_add(dropped, Ordering::SeqCst);
                let mut counts = shared.rig_counts.lock();
                let entry = counts.entry(rig).or_insert(RigCounts {
                    rig,
                    ..RigCounts::default()
                });
                entry.gap_events += 1;
                entry.dropped += dropped;
            }
            ServerMsg::Stats(stats) => {
                *shared.stats_reply.lock() = Some(stats);
                shared.stats_cv.notify_all();
            }
            ServerMsg::FleetStatus { rigs } => {
                *shared.fleet_reply.lock() = Some(rigs);
                shared.fleet_cv.notify_all();
            }
            ServerMsg::Evicted { reason } => {
                *shared.eviction.lock() = Some(reason);
                if reason != EvictReason::Shutdown {
                    shared.evicted.store(true, Ordering::SeqCst);
                    return SessionEnd::Closed;
                }
                return SessionEnd::Lost;
            }
            ServerMsg::Hello { .. } => { /* duplicate hello: ignore */ }
        }
    }
    SessionEnd::Lost
}

/// Runs the callbacks and counters for one batch of frames.
fn deliver(
    shared: &ClientShared,
    configs: &[SensorConfig; SENSOR_SLOTS],
    rig: Option<u16>,
    frames: &[StreamFrame],
) {
    {
        let mut callback = shared.callback.lock();
        let mut rig_callback = shared.rig_callback.lock();
        for frame in frames {
            if let Some(cb) = callback.as_mut() {
                cb(frame);
            }
            if let (Some(rig), Some(cb)) = (rig, rig_callback.as_mut()) {
                cb(rig, frame);
            }
        }
    }
    if let Some(frame) = frames.last() {
        *shared.last.lock() = Some((*frame, frame_watts(frame, configs)));
    }
    if let Some(rig) = rig {
        let mut counts = shared.rig_counts.lock();
        let entry = counts.entry(rig).or_insert(RigCounts {
            rig,
            ..RigCounts::default()
        });
        entry.frames += frames.len() as u64;
    }
    // Counted last, so `frames_received` only covers frames the
    // callback has already observed.
    shared
        .frames_received
        .fetch_add(frames.len() as u64, Ordering::SeqCst);
}
