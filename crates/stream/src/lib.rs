//! Network streaming for PowerSensor3 (§III-C's host library, grown
//! into a daemon): one process owns the sensor and any number of
//! local or remote consumers subscribe to its 20 kHz sample stream
//! over TCP.
//!
//! # Architecture
//!
//! ```text
//!  PowerSensor reader thread
//!        │ frame sink (ps3_core::FrameRecord)
//!        ▼
//!  BroadcastRing  ── single producer, per-subscriber cursors
//!        │ drop-oldest on lap (never blocks acquisition)
//!        ▼
//!  event-loop thread (epoll/poll readiness over every socket)
//!        ├── conn state machine ── Downsampler ÷1    ──▶ 20 kHz client
//!        ├── conn state machine ── Downsampler ÷20   ──▶ 1 kHz client
//!        └── conn state machine ── Downsampler ÷2000 ──▶ 10 Hz client
//! ```
//!
//! * [`StreamDaemon`] taps a [`ps3_core::SharedPowerSensor`] and
//!   serves subscribers; a slow subscriber gets [`ServerMsg::Gap`]
//!   messages, a persistently slow or stalled one is evicted.
//! * [`StreamClient`] subscribes, converts raw codes with the sensor
//!   configuration from the daemon's `Hello`, and implements
//!   [`ps3_pmt::PowerMeter`].
//! * The wire format ([`proto`]) reuses the device's native 2-byte
//!   sensor packets inside length-prefixed messages.
//!
//! # Example
//!
//! See `examples/streaming.rs` at the repository root for a daemon
//! plus mixed-rate subscribers against the virtual testbed.

#![forbid(unsafe_code)]

mod client;
mod daemon;
mod downsample;
pub mod event_loop;
pub mod log;
pub mod net;
pub mod proto;
mod ring;

pub use client::{
    FrameCallback, ReconnectPolicy, RigCounts, RigFrameCallback, StreamClient, StreamClientConfig,
};
pub use daemon::{StreamDaemon, StreamDaemonConfig};
pub use downsample::Downsampler;
pub use event_loop::{
    bring_up, spawn_loop, Control, Handler, LoopParts, LoopStats, LoopWaker, OutQueue, Pump,
};
pub use net::{bind_error, bind_reusable, resolve_bind};
pub use proto::{
    ClientMsg, EvictReason, FleetHello, RigSelector, RigStatus, ServerMsg, StreamFrame, StreamStats,
};
pub use ring::{BroadcastRing, ReadOutcome};
