//! Per-subscriber block-averaging downsampler.
//!
//! A subscriber asks for a divisor `d`: every `d` consecutive device
//! frames become one delivered frame whose raw codes are the block
//! mean (computed with [`ps3_analysis::block_average`], the same
//! primitive the offline analysis uses), timestamped at the last frame
//! of the block. Markers anywhere in the block are propagated. A gap
//! in the stream resets the current block so partial blocks are never
//! emitted.

use ps3_analysis::block_average;
use ps3_firmware::SENSOR_SLOTS;

use crate::proto::StreamFrame;

/// Block-averaging state for one subscriber.
#[derive(Debug)]
pub struct Downsampler {
    divisor: usize,
    /// Per-slot raw codes of the block under construction.
    blocks: [Vec<f64>; SENSOR_SLOTS],
    filled: usize,
    /// Slots present in *every* frame of the block so far.
    present: u8,
    marker: bool,
    last_time: Option<ps3_units::SimTime>,
}

impl Downsampler {
    /// Creates a downsampler delivering one frame per `divisor` input
    /// frames (`1` passes frames through untouched).
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    #[must_use]
    pub fn new(divisor: u32) -> Self {
        assert!(divisor > 0, "divisor must be at least 1");
        Self {
            divisor: divisor as usize,
            blocks: core::array::from_fn(|_| Vec::with_capacity(divisor as usize)),
            filled: 0,
            present: u8::MAX,
            marker: false,
            last_time: None,
        }
    }

    /// The configured divisor.
    #[must_use]
    pub fn divisor(&self) -> u32 {
        self.divisor as u32
    }

    /// Feeds one device frame; returns a delivered frame when a block
    /// completes.
    pub fn push(&mut self, frame: &StreamFrame) -> Option<StreamFrame> {
        if self.divisor == 1 {
            return Some(*frame);
        }
        for (slot, block) in self.blocks.iter_mut().enumerate() {
            block.push(f64::from(frame.raw[slot]));
        }
        self.present &= frame.present;
        self.marker |= frame.marker;
        self.last_time = Some(frame.time);
        self.filled += 1;
        if self.filled < self.divisor {
            return None;
        }
        let mut out = StreamFrame {
            time: self.last_time.expect("block not empty"),
            raw: [0; SENSOR_SLOTS],
            present: self.present,
            marker: self.marker,
        };
        for (slot, block) in self.blocks.iter().enumerate() {
            if out.present & (1 << slot) != 0 {
                // One full block in, one mean out.
                out.raw[slot] = block_average(block, self.divisor)[0].round() as u16;
            }
        }
        self.reset();
        Some(out)
    }

    /// Discards the block under construction (call after a stream gap
    /// so means never span missing data).
    pub fn reset(&mut self) {
        for block in &mut self.blocks {
            block.clear();
        }
        self.filled = 0;
        self.present = u8::MAX;
        self.marker = false;
        self.last_time = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps3_units::SimTime;

    fn frame(t_us: u64, code: u16) -> StreamFrame {
        StreamFrame {
            time: SimTime::from_micros(t_us),
            raw: [code; SENSOR_SLOTS],
            present: 0b0000_0011,
            marker: false,
        }
    }

    #[test]
    fn divisor_one_passes_through() {
        let mut ds = Downsampler::new(1);
        let f = frame(50, 700);
        assert_eq!(ds.push(&f), Some(f));
    }

    #[test]
    fn averages_blocks_and_stamps_block_end() {
        let mut ds = Downsampler::new(4);
        assert!(ds.push(&frame(50, 100)).is_none());
        assert!(ds.push(&frame(100, 200)).is_none());
        assert!(ds.push(&frame(150, 300)).is_none());
        let out = ds.push(&frame(200, 400)).expect("block complete");
        assert_eq!(out.raw[0], 250);
        assert_eq!(out.time.as_micros(), 200);
        assert_eq!(out.present, 0b0000_0011);
        // Next block is independent.
        assert!(ds.push(&frame(250, 900)).is_none());
    }

    #[test]
    fn marker_propagates_from_any_frame_in_block() {
        let mut ds = Downsampler::new(2);
        let mut marked = frame(50, 10);
        marked.marker = true;
        assert!(ds.push(&marked).is_none());
        let out = ds.push(&frame(100, 20)).unwrap();
        assert!(out.marker);
        // Consumed: the next block starts unmarked.
        ds.push(&frame(150, 30));
        let out = ds.push(&frame(200, 40)).unwrap();
        assert!(!out.marker);
    }

    #[test]
    fn reset_discards_partial_block() {
        let mut ds = Downsampler::new(3);
        ds.push(&frame(50, 1000));
        ds.push(&frame(100, 1000));
        ds.reset();
        ds.push(&frame(300, 10));
        ds.push(&frame(350, 20));
        let out = ds.push(&frame(400, 30)).unwrap();
        // No 1000-valued samples leak across the gap.
        assert_eq!(out.raw[0], 20);
    }

    #[test]
    fn present_mask_is_intersection() {
        let mut ds = Downsampler::new(2);
        let mut partial = frame(50, 5);
        partial.present = 0b0000_0001;
        ds.push(&partial);
        let out = ds.push(&frame(100, 7)).unwrap();
        assert_eq!(out.present, 0b0000_0001);
    }
}
