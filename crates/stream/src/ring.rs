//! Single-producer broadcast ring buffer.
//!
//! The acquisition side publishes every frame exactly once; each
//! subscriber owns a plain `u64` cursor and reads at its own pace.
//! Readers never block the producer: a reader that falls more than one
//! ring-length behind is *lapped* — it learns how many frames it lost
//! and resumes near the current head (drop-oldest policy). Torn reads
//! under concurrent overwrite are detected with a per-slot sequence
//! check (seqlock style) and reported as laps, never as corrupt data.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use ps3_firmware::SENSOR_SLOTS;
use ps3_units::SimTime;

use crate::proto::StreamFrame;

/// Sentinel stored in a slot's sequence word while it is being written.
const WRITING: u64 = u64::MAX;

/// When a reader is lapped it resumes this far behind the head (in
/// fractions of capacity), leaving room so it is not immediately
/// lapped again mid-read.
const RESUME_MARGIN_DENOM: u64 = 4;

struct Slot {
    /// Sequence number of the frame held, or [`WRITING`].
    seq: AtomicU64,
    /// Frame payload: `[t_us, raw 0–3, raw 4–7, present|marker<<8]`.
    words: [AtomicU64; 4],
}

/// Outcome of a reader polling its cursor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadOutcome {
    /// The frame at the reader's cursor; advance the cursor by one.
    Frame(StreamFrame),
    /// The reader fell behind and lost `dropped` frames; continue from
    /// `resume_at`.
    Lapped {
        /// Cursor value to continue from.
        resume_at: u64,
        /// Frames skipped over.
        dropped: u64,
    },
    /// No new frame arrived within the timeout.
    TimedOut,
    /// The ring was closed (daemon shutdown) and fully drained.
    Closed,
}

/// The broadcast ring. One producer, any number of cursor-holding
/// readers; see the module docs.
pub struct BroadcastRing {
    slots: Box<[Slot]>,
    mask: u64,
    /// Next sequence number to publish (== count published so far).
    head: AtomicU64,
    closed: AtomicBool,
    /// Publish notification for blocked readers.
    wait_lock: Mutex<()>,
    wait_cv: Condvar,
}

impl BroadcastRing {
    /// Creates a ring holding `capacity` frames (rounded up to a power
    /// of two, minimum 2).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(2).next_power_of_two();
        let slots = (0..capacity)
            .map(|_| Slot {
                seq: AtomicU64::new(WRITING),
                words: [
                    AtomicU64::new(0),
                    AtomicU64::new(0),
                    AtomicU64::new(0),
                    AtomicU64::new(0),
                ],
            })
            .collect();
        Self {
            slots,
            mask: capacity as u64 - 1,
            head: AtomicU64::new(0),
            closed: AtomicBool::new(false),
            wait_lock: Mutex::new(()),
            wait_cv: Condvar::new(),
        }
    }

    /// Number of frames the ring can hold.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Sequence number the next published frame will get.
    #[must_use]
    pub fn head(&self) -> u64 {
        self.head.load(Ordering::SeqCst)
    }

    /// `true` once [`BroadcastRing::close`] has been called.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    /// Publishes one frame. Single producer only: calling this from
    /// two threads concurrently corrupts sequence accounting.
    pub fn publish(&self, frame: &StreamFrame) {
        let seq = self.head.load(Ordering::SeqCst);
        let slot = &self.slots[(seq & self.mask) as usize];
        slot.seq.store(WRITING, Ordering::SeqCst);
        let [w0, w1, w2, w3] = pack(frame);
        slot.words[0].store(w0, Ordering::SeqCst);
        slot.words[1].store(w1, Ordering::SeqCst);
        slot.words[2].store(w2, Ordering::SeqCst);
        slot.words[3].store(w3, Ordering::SeqCst);
        slot.seq.store(seq, Ordering::SeqCst);
        self.head.store(seq + 1, Ordering::SeqCst);
        // Take and drop the lock so a reader between its head check and
        // its wait cannot miss this wake-up.
        drop(self.wait_lock.lock());
        self.wait_cv.notify_all();
    }

    /// Closes the ring: readers drain what remains, then see
    /// [`ReadOutcome::Closed`].
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        drop(self.wait_lock.lock());
        self.wait_cv.notify_all();
    }

    /// Reads the frame at `cursor`, blocking up to `timeout` for one to
    /// be published.
    #[must_use]
    pub fn next(&self, cursor: u64, timeout: Duration) -> ReadOutcome {
        let head = self.head.load(Ordering::SeqCst);
        if cursor >= head {
            // Nothing new yet: wait for a publish (or closure).
            if self.is_closed() {
                return ReadOutcome::Closed;
            }
            let mut guard = self.wait_lock.lock();
            if self.head.load(Ordering::SeqCst) == cursor && !self.is_closed() {
                let _ = self.wait_cv.wait_for(&mut guard, timeout);
            }
            drop(guard);
            let head = self.head.load(Ordering::SeqCst);
            if cursor >= head {
                return if self.is_closed() {
                    ReadOutcome::Closed
                } else {
                    ReadOutcome::TimedOut
                };
            }
        }
        self.try_read(cursor)
    }

    /// Non-blocking read of the frame at `cursor`.
    fn try_read(&self, cursor: u64) -> ReadOutcome {
        let head = self.head.load(Ordering::SeqCst);
        let capacity = self.mask + 1;
        if head.saturating_sub(cursor) > capacity {
            return self.lapped(cursor, head);
        }
        let slot = &self.slots[(cursor & self.mask) as usize];
        let seq_before = slot.seq.load(Ordering::SeqCst);
        if seq_before != cursor {
            // Already overwritten (or mid-overwrite): the reader is at
            // least a full ring behind.
            return self.lapped(cursor, self.head.load(Ordering::SeqCst));
        }
        let words = [
            slot.words[0].load(Ordering::SeqCst),
            slot.words[1].load(Ordering::SeqCst),
            slot.words[2].load(Ordering::SeqCst),
            slot.words[3].load(Ordering::SeqCst),
        ];
        let seq_after = slot.seq.load(Ordering::SeqCst);
        if seq_after != cursor {
            return self.lapped(cursor, self.head.load(Ordering::SeqCst));
        }
        ReadOutcome::Frame(unpack(words))
    }

    fn lapped(&self, cursor: u64, head: u64) -> ReadOutcome {
        let capacity = self.mask + 1;
        // Resume behind the head, but with a margin so the producer
        // does not immediately overtake the reader again.
        let resume_at = head.saturating_sub(capacity - capacity / RESUME_MARGIN_DENOM);
        let resume_at = resume_at.max(cursor);
        ReadOutcome::Lapped {
            resume_at,
            dropped: resume_at - cursor,
        }
    }
}

impl core::fmt::Debug for BroadcastRing {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("BroadcastRing")
            .field("capacity", &self.capacity())
            .field("head", &self.head())
            .field("closed", &self.is_closed())
            .finish()
    }
}

fn pack(frame: &StreamFrame) -> [u64; 4] {
    let quad = |lo: usize| {
        u64::from(frame.raw[lo])
            | u64::from(frame.raw[lo + 1]) << 16
            | u64::from(frame.raw[lo + 2]) << 32
            | u64::from(frame.raw[lo + 3]) << 48
    };
    [
        frame.time.as_micros(),
        quad(0),
        quad(4),
        u64::from(frame.present) | (u64::from(frame.marker) << 8),
    ]
}

fn unpack(words: [u64; 4]) -> StreamFrame {
    let mut raw = [0u16; SENSOR_SLOTS];
    for (i, code) in raw.iter_mut().enumerate() {
        let word = words[1 + i / 4];
        *code = (word >> (16 * (i % 4))) as u16;
    }
    StreamFrame {
        time: SimTime::from_micros(words[0]),
        raw,
        present: words[3] as u8,
        marker: words[3] & (1 << 8) != 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn frame(t_us: u64) -> StreamFrame {
        let mut raw = [0u16; SENSOR_SLOTS];
        for (slot, code) in raw.iter_mut().enumerate() {
            *code = ((t_us + slot as u64) & 0x3FF) as u16;
        }
        StreamFrame {
            time: SimTime::from_micros(t_us),
            raw,
            present: 0b11,
            marker: t_us.is_multiple_of(7),
        }
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let f = frame(123_456_789);
        assert_eq!(unpack(pack(&f)), f);
    }

    #[test]
    fn single_reader_sees_everything_in_order() {
        let ring = BroadcastRing::new(64);
        for i in 0..50 {
            ring.publish(&frame(i * 50));
        }
        let mut cursor = 0;
        while cursor < 50 {
            match ring.next(cursor, Duration::from_millis(1)) {
                ReadOutcome::Frame(f) => {
                    assert_eq!(f.time.as_micros(), cursor * 50);
                    cursor += 1;
                }
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        assert_eq!(
            ring.next(cursor, Duration::from_millis(1)),
            ReadOutcome::TimedOut
        );
    }

    #[test]
    fn slow_reader_is_lapped_with_gap_accounting() {
        let ring = BroadcastRing::new(16);
        for i in 0..100 {
            ring.publish(&frame(i));
        }
        match ring.next(0, Duration::ZERO) {
            ReadOutcome::Lapped { resume_at, dropped } => {
                assert_eq!(dropped, resume_at);
                assert!(resume_at >= 100 - 16, "resume {resume_at} too far back");
                assert!(resume_at < 100, "resume {resume_at} past head");
                // The resumed cursor reads cleanly.
                match ring.next(resume_at, Duration::ZERO) {
                    ReadOutcome::Frame(f) => assert_eq!(f.time.as_micros(), resume_at),
                    other => panic!("unexpected outcome {other:?}"),
                }
            }
            other => panic!("expected lap, got {other:?}"),
        }
    }

    #[test]
    fn close_wakes_and_drains() {
        let ring = Arc::new(BroadcastRing::new(8));
        ring.publish(&frame(1));
        ring.close();
        assert_eq!(ring.next(0, Duration::ZERO), ReadOutcome::Frame(frame(1)));
        assert_eq!(ring.next(1, Duration::from_secs(5)), ReadOutcome::Closed);
    }

    #[test]
    fn concurrent_readers_never_see_torn_frames() {
        let ring = Arc::new(BroadcastRing::new(32));
        let total: u64 = 20_000;
        let mut readers = Vec::new();
        for _ in 0..4 {
            let ring = Arc::clone(&ring);
            readers.push(std::thread::spawn(move || {
                let mut cursor = 0u64;
                let mut seen = 0u64;
                let mut dropped = 0u64;
                loop {
                    match ring.next(cursor, Duration::from_millis(100)) {
                        ReadOutcome::Frame(f) => {
                            // Frame contents must be internally
                            // consistent with its timestamp.
                            let expect = frame(f.time.as_micros());
                            assert_eq!(f, expect, "torn read at cursor {cursor}");
                            assert_eq!(f.time.as_micros(), cursor);
                            cursor += 1;
                            seen += 1;
                        }
                        ReadOutcome::Lapped {
                            resume_at,
                            dropped: d,
                        } => {
                            cursor = resume_at;
                            dropped += d;
                        }
                        ReadOutcome::TimedOut => continue,
                        ReadOutcome::Closed => break,
                    }
                }
                (seen, dropped)
            }));
        }
        for i in 0..total {
            ring.publish(&frame(i));
        }
        ring.close();
        for reader in readers {
            let (seen, dropped) = reader.join().unwrap();
            assert_eq!(seen + dropped, total, "every frame seen or accounted");
        }
    }
}
