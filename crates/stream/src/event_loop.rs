//! The single-thread readiness event loop behind the stream daemon
//! and the fleet coordinator.
//!
//! The C10k problem, in this codebase's terms: the original daemon
//! spawned **two OS threads per TCP subscriber** (a ring-draining
//! sender and a control-message reader), so a few hundred subscribers
//! meant a thousand threads contending on per-subscriber mutexes —
//! exactly the measurement-plane perturbation a power-measurement
//! stack must not introduce. This module replaces all of them with
//! **one** thread per daemon running a readiness loop over the
//! vendored `mio` compat layer (epoll on Linux, poll(2) elsewhere).
//!
//! # Structure
//!
//! * [`bring_up`] — the one shared bring-up path: bind the listener
//!   (`SO_REUSEADDR`, non-blocking), create the selector, register
//!   the listener and the publish [`LoopWaker`].
//! * [`spawn_loop`] — runs the reactor on its own named thread.
//! * [`Handler`] — what differs between a plain daemon and a fleet
//!   coordinator: how a `Subscribe` opens a session, how a session
//!   drains its ring(s) into the connection's [`OutQueue`], and how
//!   control messages are answered. The reactor owns everything else:
//!   non-blocking accept, per-connection handshake state machines,
//!   incremental control-frame parsing, batched non-blocking sends,
//!   stall detection and eviction.
//!
//! # Eviction equivalence
//!
//! The thread-per-subscriber implementation pinned down precise
//! semantics (and the sim invariants assert them). They carry over:
//!
//! * A connection's ring cursor only advances while its [`OutQueue`]
//!   is below its bound, so a slow subscriber is lapped by the ring
//!   exactly as before — same `Gap { dropped }` raw-frame accounting,
//!   same `TooManyGaps` eviction once `max_gap_events` is exceeded.
//! * A connection whose socket accepts no bytes for `write_timeout`
//!   while output is pending is evicted `StalledWrite` — the same
//!   stall the per-subscriber blocking write timeout detected.
//! * Ring closure (shutdown, end of replay) sends a best-effort
//!   `Evicted { reason: Shutdown }` and drains the connection within
//!   a `write_timeout` grace window.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mio::{Events, Interest, Poll, Token, Waker};

use crate::daemon::StreamDaemonConfig;
use crate::log;
use crate::net::set_send_buffer;
use crate::proto::{ClientMsg, EvictReason, RigSelector, ServerMsg, MAX_MSG_LEN};

const LISTENER: Token = Token(0);
const WAKER: Token = Token(1);
/// Connection slot `i` registers as token `i + TOKEN_BASE`.
const TOKEN_BASE: usize = 2;

/// Fallback poll timeout: bounds how late a deadline (handshake,
/// stall, drain grace) can be noticed when no I/O event fires.
const IDLE_POLL: Duration = Duration::from_millis(25);

/// Per-connection read budget per loop iteration, so one chatty
/// client cannot starve the rest (level-triggered readiness
/// re-delivers whatever is left).
const READ_CHUNKS_PER_TURN: usize = 8;

/// Output bound when the config leaves the kernel send buffer at its
/// OS default (`send_buffer_bytes == 0`).
const DEFAULT_OUT_LIMIT: usize = 256 * 1024;

/// What a daemon flavour plugs into the shared reactor.
///
/// Implemented by the plain stream daemon (one ring, one cursor per
/// session) and the fleet coordinator (k-way merge over per-rig
/// rings). Handlers run on the loop thread and must never block.
pub trait Handler: Send + 'static {
    /// Per-connection streaming state (cursors, downsamplers, batch).
    type Session: Send;

    /// Validates a `Subscribe` and opens a session. Returns the
    /// encoded `Hello` to send and the session state.
    ///
    /// # Errors
    ///
    /// Invalid subscriptions (e.g. a rig selector out of range); the
    /// connection is dropped without a hello, as before.
    fn begin(
        &self,
        pair_mask: u8,
        divisor: u32,
        rig: Option<RigSelector>,
    ) -> io::Result<(Vec<u8>, Self::Session)>;

    /// Drains the session's ring cursor(s) into `out`. Must stop when
    /// [`OutQueue::is_full`] and never block; called on every loop
    /// wakeup.
    fn pump(&self, session: &mut Self::Session, out: &mut OutQueue) -> Pump;

    /// Handles one decoded control message.
    fn control(&self, session: &mut Self::Session, msg: ClientMsg, out: &mut OutQueue) -> Control;
}

/// Outcome of one [`Handler::pump`] call.
#[derive(Debug)]
pub enum Pump {
    /// Sources drained (or output full); nothing to decide.
    Idle,
    /// Evict this subscriber for cause.
    Evict(EvictReason),
    /// Every source ring closed: end the subscription as a shutdown.
    Closed,
}

/// Outcome of one [`Handler::control`] call.
#[derive(Debug)]
pub enum Control {
    /// Keep serving.
    Continue,
    /// Client said `Bye` (or broke protocol): close without eviction.
    Disconnect,
}

/// Cumulative counters shared between the loop thread and
/// `stats()`/status surfaces. All plain `SeqCst` atomics.
#[derive(Debug, Default)]
pub struct LoopStats {
    /// Currently connected (post-handshake) subscribers.
    pub active_subscribers: AtomicU64,
    /// TCP connections accepted since start (including ones that
    /// never completed a handshake).
    pub accepted: AtomicU64,
    /// High-water mark of `active_subscribers`.
    pub active_peak: AtomicU64,
    /// Subscribers evicted for cause (gaps or stalls; shutdown is not
    /// an eviction).
    pub evicted: AtomicU64,
    /// Evictions whose cause was `TooManyGaps`.
    pub evicted_gaps: AtomicU64,
    /// Evictions whose cause was `StalledWrite`.
    pub evicted_stalled: AtomicU64,
    /// Ring-lap gap events across all subscribers.
    pub gap_events: AtomicU64,
    /// Payload bytes handed to the kernel across all subscribers.
    pub bytes_sent: AtomicU64,
}

impl LoopStats {
    fn subscriber_up(&self) {
        let now_active = self.active_subscribers.fetch_add(1, Ordering::SeqCst) + 1;
        self.active_peak.fetch_max(now_active, Ordering::SeqCst);
    }

    fn subscriber_down(&self) {
        self.active_subscribers.fetch_sub(1, Ordering::SeqCst);
    }

    fn note_evicted(&self, reason: &EvictReason) {
        self.evicted.fetch_add(1, Ordering::SeqCst);
        match reason {
            EvictReason::TooManyGaps { .. } => {
                self.evicted_gaps.fetch_add(1, Ordering::SeqCst);
            }
            EvictReason::StalledWrite => {
                self.evicted_stalled.fetch_add(1, Ordering::SeqCst);
            }
            EvictReason::Shutdown => {}
        }
    }
}

/// Wakes the loop when the pump publishes new frames. Coalescing: any
/// number of `wake` calls between two loop iterations cost one
/// syscall, so a 20 kHz publisher does not turn into 20 k wakeups.
#[derive(Debug)]
pub struct LoopWaker {
    waker: Waker,
    pending: AtomicBool,
}

impl LoopWaker {
    /// Signals the loop; safe from any thread, never blocks.
    pub fn wake(&self) {
        if !self.pending.swap(true, Ordering::SeqCst) {
            let _ = self.waker.wake();
        }
    }

    /// Re-arms coalescing; called by the loop after each poll.
    fn clear(&self) {
        self.pending.store(false, Ordering::SeqCst);
    }
}

/// Everything [`bring_up`] assembles and [`spawn_loop`] consumes: the
/// bound listener, the selector, and the publish waker.
#[derive(Debug)]
pub struct LoopParts {
    listener: TcpListener,
    local_addr: SocketAddr,
    poll: Poll,
    waker: Arc<LoopWaker>,
}

impl LoopParts {
    /// The address the listener bound (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The waker publishers signal after `ring.publish`.
    #[must_use]
    pub fn waker(&self) -> Arc<LoopWaker> {
        Arc::clone(&self.waker)
    }
}

/// The one shared bring-up path (live daemon, replay daemon, and the
/// fleet coordinator all go through here): bind with `SO_REUSEADDR`,
/// switch to non-blocking, create the selector, register listener and
/// waker.
///
/// # Errors
///
/// Bind and selector-creation failures.
pub fn bring_up<A: ToSocketAddrs>(addr: A) -> io::Result<LoopParts> {
    let listener = crate::net::bind_reusable(addr)?;
    listener.set_nonblocking(true)?;
    let local_addr = listener.local_addr()?;
    let poll = Poll::new()?;
    poll.registry()
        .register(&listener, LISTENER, Interest::READABLE)?;
    let waker = Arc::new(LoopWaker {
        waker: Waker::new(poll.registry(), WAKER)?,
        pending: AtomicBool::new(false),
    });
    Ok(LoopParts {
        listener,
        local_addr,
        poll,
        waker,
    })
}

/// Spawns the reactor thread. `component` prefixes structured log
/// lines (`ps3-stream`, `ps3-fleet`).
///
/// # Errors
///
/// Thread spawn failures.
pub fn spawn_loop<H: Handler>(
    thread_name: &str,
    component: &'static str,
    parts: LoopParts,
    handler: H,
    config: StreamDaemonConfig,
    shutdown: Arc<AtomicBool>,
    stats: Arc<LoopStats>,
) -> io::Result<JoinHandle<()>> {
    let reactor = Reactor {
        listener: parts.listener,
        poll: parts.poll,
        waker: parts.waker,
        handler,
        config,
        shutdown,
        stats,
        component,
        conns: Vec::new(),
        free_slots: Vec::new(),
        next_client: 0,
    };
    std::thread::Builder::new()
        .name(thread_name.into())
        .spawn(move || reactor.run()) // ps3-lint: allow(blocking-io) reason="spawns the one event-loop thread itself; connections are multiplexed onto it, never given threads"
}

/// Extracts one complete length-prefixed message body from the front
/// of `buf`, leaving any partial tail for the next read. This is the
/// incremental (non-blocking) twin of [`crate::proto::read_msg_body`]
/// and enforces the same framing limits.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] on a zero or oversized length — the
/// connection is unrecoverable because framing is lost.
pub fn take_frame(buf: &mut Vec<u8>) -> io::Result<Option<Vec<u8>>> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len == 0 || len > MAX_MSG_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad message length",
        ));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    let body = buf[4..4 + len].to_vec();
    buf.drain(..4 + len);
    Ok(Some(body))
}

/// A connection's bounded outgoing message queue.
///
/// Messages are pre-encoded wire bytes (length prefix included);
/// writes drain the front message-by-message, tracking a partial
/// offset, so a send interrupted by `WouldBlock` resumes exactly
/// where it stopped. The bound is soft: the *pump* stops adding
/// batches once [`is_full`](Self::is_full), which parks the ring
/// cursor and lets the ring's drop-oldest lap semantics take over —
/// control replies and gap/evict notices still enqueue.
#[derive(Debug)]
pub struct OutQueue {
    queue: VecDeque<Vec<u8>>,
    /// Bytes of the front message already written.
    front_off: usize,
    queued_bytes: usize,
    limit: usize,
}

impl OutQueue {
    /// An empty queue that reports full at `limit` buffered bytes.
    #[must_use]
    pub fn new(limit: usize) -> Self {
        Self {
            queue: VecDeque::new(),
            front_off: 0,
            queued_bytes: 0,
            limit: limit.max(1),
        }
    }

    /// Encodes and enqueues a server message.
    pub fn push(&mut self, msg: &ServerMsg) {
        self.push_encoded(msg.encode());
    }

    /// Enqueues pre-encoded wire bytes (length prefix included).
    pub fn push_encoded(&mut self, bytes: Vec<u8>) {
        self.queued_bytes += bytes.len();
        self.queue.push_back(bytes);
    }

    /// Whether the pump should stop adding frames.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.queued_bytes >= self.limit
    }

    /// Whether everything queued has been written out.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Bytes currently queued (unwritten).
    #[must_use]
    pub fn queued_bytes(&self) -> usize {
        self.queued_bytes
    }

    /// Writes as much queued data as `w` accepts without blocking.
    /// Returns the bytes written; `WouldBlock` is not an error (the
    /// remainder stays queued).
    ///
    /// # Errors
    ///
    /// Real I/O errors (peer reset, broken pipe) — and a `write`
    /// returning `Ok(0)` is reported as [`io::ErrorKind::WriteZero`].
    pub fn write_some<W: Write>(&mut self, w: &mut W) -> io::Result<usize> {
        let mut written = 0usize;
        while let Some(front) = self.queue.front() {
            match w.write(&front[self.front_off..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    written += n;
                    self.front_off += n;
                    self.queued_bytes -= n;
                    if self.front_off == front.len() {
                        self.queue.pop_front();
                        self.front_off = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) => return Err(e),
            }
        }
        Ok(written)
    }
}

/// Per-connection state machine.
enum State<S> {
    /// Waiting for the `Subscribe`; dropped at `deadline`.
    Handshake { deadline: Instant },
    /// Serving frames.
    Streaming { session: S },
    /// Evicted or shut down: flush what is queued, then close. The
    /// session is gone (`active` already decremented).
    Draining { deadline: Instant },
}

struct Conn<S> {
    stream: TcpStream,
    client_id: u64,
    state: State<S>,
    /// Unparsed inbound bytes (partial control frames).
    inbuf: Vec<u8>,
    out: OutQueue,
    /// Interest currently registered with the selector.
    interest: Interest,
    /// Set when a flush made zero progress with output pending;
    /// cleared on any accepted byte. The stall-eviction timer.
    blocked_since: Option<Instant>,
}

/// How a connection ended (mirrors the threaded daemon's
/// `SessionEnd` so the observable semantics stay identical).
enum End {
    /// Client closed, said `Bye`, or broke protocol.
    Disconnected,
    /// For-cause eviction: counted, best-effort `Evicted` notice.
    Evicted(EvictReason),
    /// Source closed (shutdown / replay end): uncounted `Evicted`
    /// notice with `Shutdown`.
    Shutdown,
}

struct Reactor<H: Handler> {
    listener: TcpListener,
    poll: Poll,
    waker: Arc<LoopWaker>,
    handler: H,
    config: StreamDaemonConfig,
    shutdown: Arc<AtomicBool>,
    stats: Arc<LoopStats>,
    component: &'static str,
    conns: Vec<Option<Conn<H::Session>>>,
    free_slots: Vec<usize>,
    next_client: u64,
}

impl<H: Handler> Reactor<H> {
    fn run(mut self) {
        let mut events = Events::with_capacity(1024);
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                self.drain_all_and_exit();
                return;
            }
            if let Err(e) = self.poll.poll(&mut events, Some(IDLE_POLL)) {
                log::emit(self.component, "poll-error", &[("cause", &e.to_string())]);
                std::thread::sleep(Duration::from_millis(5));
            }
            self.waker.clear();
            let now = Instant::now();
            let mut accept_ready = false;
            for ev in &events {
                match ev.token() {
                    LISTENER => accept_ready = true,
                    WAKER => {}
                    Token(t) => {
                        if ev.is_readable() {
                            self.on_readable(t - TOKEN_BASE, now);
                        }
                    }
                }
            }
            if accept_ready {
                self.accept_all(now);
            }
            self.pump_and_flush_all(now);
            self.sweep_deadlines(now);
        }
    }

    // ---- accept path ----------------------------------------------

    fn accept_all(&mut self, now: Instant) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    self.stats.accepted.fetch_add(1, Ordering::SeqCst);
                    self.next_client += 1;
                    let client_id = self.next_client;
                    if let Err(e) = self.setup_conn(stream, client_id, now) {
                        log::emit(
                            self.component,
                            "client-dropped",
                            &[
                                ("client", &client_id.to_string()),
                                ("cause", &e.to_string()),
                            ],
                        );
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    // Degrade, don't die: fd exhaustion may be
                    // transient; the listener stays registered.
                    log::emit(self.component, "accept-error", &[("cause", &e.to_string())]);
                    return;
                }
            }
        }
    }

    fn setup_conn(&mut self, stream: TcpStream, client_id: u64, now: Instant) -> io::Result<()> {
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        if self.config.send_buffer_bytes > 0 {
            set_send_buffer(&stream, self.config.send_buffer_bytes)?;
        }
        let idx = match self.free_slots.pop() {
            Some(idx) => idx,
            None => {
                self.conns.push(None);
                self.conns.len() - 1
            }
        };
        if let Err(e) =
            self.poll
                .registry()
                .register(&stream, Token(idx + TOKEN_BASE), Interest::READABLE)
        {
            self.free_slots.push(idx);
            return Err(e);
        }
        let out_limit = if self.config.send_buffer_bytes > 0 {
            self.config.send_buffer_bytes
        } else {
            DEFAULT_OUT_LIMIT
        };
        self.conns[idx] = Some(Conn {
            stream,
            client_id,
            state: State::Handshake {
                deadline: now + self.config.handshake_timeout,
            },
            inbuf: Vec::new(),
            out: OutQueue::new(out_limit),
            interest: Interest::READABLE,
            blocked_since: None,
        });
        Ok(())
    }

    // ---- read path ------------------------------------------------

    fn on_readable(&mut self, idx: usize, now: Instant) {
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
            return;
        };
        if matches!(conn.state, State::Draining { .. }) {
            return; // input no longer matters; only the flush does
        }
        let mut buf = [0u8; 4096];
        let mut eof = false;
        for _ in 0..READ_CHUNKS_PER_TURN {
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(n) => conn.inbuf.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    eof = true; // connection reset: same as gone
                    break;
                }
            }
        }
        match self.process_inbuf(idx, now) {
            Ok(()) if !eof => {}
            Ok(()) => self.finish_conn(idx, End::Disconnected, now),
            // Protocol error (bad framing, non-Subscribe handshake):
            // drop the connection, exactly as the blocking readers
            // did when `read_msg_body`/`decode` failed.
            Err(_) => self.finish_conn(idx, End::Disconnected, now),
        }
    }

    /// Parses and dispatches every complete control frame buffered on
    /// `idx`. Errors mean the connection must be dropped.
    fn process_inbuf(&mut self, idx: usize, _now: Instant) -> io::Result<()> {
        loop {
            let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                return Ok(());
            };
            let Some(body) = take_frame(&mut conn.inbuf)? else {
                return Ok(());
            };
            let msg = ClientMsg::decode(&body)?;
            match &mut conn.state {
                State::Handshake { .. } => {
                    let ClientMsg::Subscribe {
                        pair_mask,
                        divisor,
                        rig,
                    } = msg
                    else {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            "first message must be Subscribe",
                        ));
                    };
                    let (hello, session) = self.handler.begin(pair_mask, divisor, rig)?;
                    conn.out.push_encoded(hello);
                    conn.state = State::Streaming { session };
                    self.stats.subscriber_up();
                }
                State::Streaming { session } => {
                    match self.handler.control(session, msg, &mut conn.out) {
                        Control::Continue => {}
                        Control::Disconnect => {
                            return Err(io::Error::new(
                                io::ErrorKind::ConnectionAborted,
                                "client ended the session",
                            ));
                        }
                    }
                }
                State::Draining { .. } => return Ok(()),
            }
        }
    }

    // ---- pump + write path ----------------------------------------

    fn pump_and_flush_all(&mut self, now: Instant) {
        for idx in 0..self.conns.len() {
            let end = {
                let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                    continue;
                };
                match &mut conn.state {
                    State::Streaming { session } if !conn.out.is_full() => {
                        match self.handler.pump(session, &mut conn.out) {
                            Pump::Idle => None,
                            Pump::Evict(reason) => Some(End::Evicted(reason)),
                            Pump::Closed => Some(End::Shutdown),
                        }
                    }
                    _ => None,
                }
            };
            if let Some(end) = end {
                self.finish_conn(idx, end, now);
            }
            self.flush_conn(idx, now);
        }
    }

    /// Attempts a non-blocking flush; manages write interest, the
    /// stall timer, and closes drained `Draining` connections.
    fn flush_conn(&mut self, idx: usize, now: Instant) {
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
            return;
        };
        if !conn.out.is_empty() {
            match conn.out.write_some(&mut conn.stream) {
                Ok(written) => {
                    if written > 0 {
                        self.stats
                            .bytes_sent
                            .fetch_add(written as u64, Ordering::SeqCst);
                        conn.blocked_since = None;
                    }
                }
                Err(_) => {
                    // Peer is gone; nothing left to deliver.
                    self.close_conn(idx, false);
                    return;
                }
            }
        }
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
            return;
        };
        if conn.out.is_empty() {
            conn.blocked_since = None;
            if matches!(conn.state, State::Draining { .. }) {
                self.close_conn(idx, false);
                return;
            }
            if conn.interest.is_writable() {
                self.set_interest(idx, Interest::READABLE);
            }
        } else {
            if conn.blocked_since.is_none() {
                conn.blocked_since = Some(now);
            }
            if !conn.interest.is_writable() {
                self.set_interest(idx, Interest::READABLE | Interest::WRITABLE);
            }
        }
    }

    fn set_interest(&mut self, idx: usize, interest: Interest) {
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
            return;
        };
        if self
            .poll
            .registry()
            .reregister(&conn.stream, Token(idx + TOKEN_BASE), interest)
            .is_ok()
        {
            conn.interest = interest;
        }
    }

    // ---- deadlines ------------------------------------------------

    fn sweep_deadlines(&mut self, now: Instant) {
        for idx in 0..self.conns.len() {
            let (end, client_id) = {
                let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                    continue;
                };
                match &conn.state {
                    State::Handshake { deadline } if now >= *deadline => {
                        (Some(End::Disconnected), conn.client_id)
                    }
                    State::Draining { deadline } if now >= *deadline => {
                        // Grace expired with bytes still queued (a
                        // stalled peer won't read its eviction
                        // notice): close regardless.
                        self.close_conn(idx, false);
                        continue;
                    }
                    State::Streaming { .. } => {
                        let stalled = conn.blocked_since.is_some_and(|since| {
                            now.duration_since(since) >= self.config.write_timeout
                        });
                        if stalled {
                            (
                                Some(End::Evicted(EvictReason::StalledWrite)),
                                conn.client_id,
                            )
                        } else {
                            (None, 0)
                        }
                    }
                    _ => (None, 0),
                }
            };
            match end {
                Some(End::Disconnected) => {
                    log::emit(
                        self.component,
                        "client-dropped",
                        &[
                            ("client", &client_id.to_string()),
                            ("cause", "handshake timeout"),
                        ],
                    );
                    self.close_conn(idx, true);
                }
                Some(end) => self.finish_conn(idx, end, now),
                None => {}
            }
        }
    }

    // ---- teardown -------------------------------------------------

    /// Ends a session the way the threaded daemon's `serve_client`
    /// epilogue did: count evictions, queue the best-effort `Evicted`
    /// notice, then drain within a `write_timeout` grace window.
    fn finish_conn(&mut self, idx: usize, end: End, now: Instant) {
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
            return;
        };
        let was_streaming = matches!(conn.state, State::Streaming { .. });
        if was_streaming {
            self.stats.subscriber_down();
        }
        match end {
            End::Disconnected => {
                self.close_conn(idx, true);
            }
            End::Evicted(reason) => {
                self.stats.note_evicted(&reason);
                conn.out.push(&ServerMsg::Evicted { reason });
                conn.state = State::Draining {
                    deadline: now + self.config.write_timeout,
                };
                self.flush_conn(idx, now);
            }
            End::Shutdown => {
                conn.out.push(&ServerMsg::Evicted {
                    reason: EvictReason::Shutdown,
                });
                conn.state = State::Draining {
                    deadline: now + self.config.write_timeout,
                };
                self.flush_conn(idx, now);
            }
        }
    }

    /// Deregisters and drops the connection. `count_down` is for
    /// states where the subscriber count was not already decremented.
    fn close_conn(&mut self, idx: usize, already_counted: bool) {
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::take) else {
            return;
        };
        if !already_counted && matches!(conn.state, State::Streaming { .. }) {
            self.stats.subscriber_down();
        }
        let _ = self.poll.registry().deregister(&conn.stream);
        let _ = conn.stream.shutdown(Shutdown::Both);
        self.free_slots.push(idx);
    }

    /// Daemon shutdown: notify every live subscriber, grant one
    /// `write_timeout` of grace to flush, then close everything.
    fn drain_all_and_exit(mut self) {
        let now = Instant::now();
        for idx in 0..self.conns.len() {
            let is_live = {
                let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                    continue;
                };
                match conn.state {
                    State::Streaming { .. } => true,
                    State::Handshake { .. } => false,
                    State::Draining { .. } => continue,
                }
            };
            if is_live {
                self.finish_conn(idx, End::Shutdown, now);
            } else {
                self.close_conn(idx, true);
            }
        }
        let deadline = now + self.config.write_timeout;
        let mut events = Events::with_capacity(256);
        loop {
            if self.conns.iter().all(Option::is_none) {
                return;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let _ = self.poll.poll(
                &mut events,
                Some(Duration::from_millis(5).min(deadline - now)),
            );
            let now = Instant::now();
            for idx in 0..self.conns.len() {
                self.flush_conn(idx, now);
            }
        }
        for idx in 0..self.conns.len() {
            self.close_conn(idx, true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_frame_reassembles_split_messages() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&3u32.to_le_bytes());
        wire.extend_from_slice(b"abc");
        wire.extend_from_slice(&1u32.to_le_bytes());
        wire.push(b'z');

        let mut buf = Vec::new();
        let mut got = Vec::new();
        for chunk in wire.chunks(2) {
            buf.extend_from_slice(chunk);
            while let Some(body) = take_frame(&mut buf).unwrap() {
                got.push(body);
            }
        }
        assert_eq!(got, vec![b"abc".to_vec(), b"z".to_vec()]);
        assert!(buf.is_empty());
    }

    #[test]
    fn take_frame_rejects_broken_framing() {
        let mut zero = 0u32.to_le_bytes().to_vec();
        assert!(take_frame(&mut zero).is_err());
        let mut huge = ((MAX_MSG_LEN + 1) as u32).to_le_bytes().to_vec();
        assert!(take_frame(&mut huge).is_err());
    }

    #[test]
    fn out_queue_resumes_partial_writes() {
        struct Trickle(Vec<u8>, usize);
        impl Write for Trickle {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.1 == 0 {
                    self.1 = 3;
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "full"));
                }
                let n = buf.len().min(self.1);
                self.1 -= n;
                self.0.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let mut q = OutQueue::new(1024);
        q.push_encoded(b"hello ".to_vec());
        q.push_encoded(b"world".to_vec());
        let mut sink = Trickle(Vec::new(), 4);
        let mut total = 0;
        while !q.is_empty() {
            total += q.write_some(&mut sink).unwrap();
        }
        assert_eq!(total, 11);
        assert_eq!(sink.0, b"hello world");
        assert_eq!(q.queued_bytes(), 0);
    }

    #[test]
    fn out_queue_reports_fullness_by_bytes() {
        let mut q = OutQueue::new(8);
        assert!(!q.is_full());
        q.push_encoded(vec![0u8; 8]);
        assert!(q.is_full());
        let mut sink = Vec::new();
        q.write_some(&mut sink).unwrap();
        assert!(!q.is_full() && q.is_empty());
    }
}
