//! Structured logging for the streaming plane.
//!
//! Daemon-side operational events (a dropped client, a failed rig
//! advance, an accept error) used to be ad-hoc `eprintln!` prose,
//! which fleet logs cannot grep reliably. This module replaces them
//! with one `key=value` line per event:
//!
//! ```text
//! ps3-stream event=client-dropped client=17 cause="handshake timeout"
//! ```
//!
//! The component name comes first, then `event=`, then the fields in
//! the order given. Values containing spaces, quotes or `=` are
//! double-quoted with `"` and `\` escaped, so a line always splits
//! back into fields on whitespace-outside-quotes. Everything goes to
//! stderr, keeping stdout clean for tool output.

use std::fmt::Write as _;

/// Formats one structured line (no trailing newline).
#[must_use]
pub fn format_line(component: &str, event: &str, fields: &[(&str, &str)]) -> String {
    let mut out = String::with_capacity(32 + 16 * fields.len());
    let _ = write!(out, "{component} event={}", quoted(event));
    for (key, value) in fields {
        let _ = write!(out, " {key}={}", quoted(value));
    }
    out
}

/// Emits one structured event line to stderr.
pub fn emit(component: &str, event: &str, fields: &[(&str, &str)]) {
    eprintln!("{}", format_line(component, event, fields));
}

/// Quotes a value only when it would break whitespace tokenisation.
fn quoted(value: &str) -> String {
    let needs_quotes = value.is_empty()
        || value
            .chars()
            .any(|c| c.is_whitespace() || c == '"' || c == '=' || c == '\\');
    if !needs_quotes {
        return value.to_owned();
    }
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for c in value.chars() {
        if c == '"' || c == '\\' {
            out.push('\\');
        }
        out.push(c);
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_values_stay_bare() {
        assert_eq!(
            format_line("ps3-stream", "client-dropped", &[("client", "17")]),
            "ps3-stream event=client-dropped client=17"
        );
    }

    #[test]
    fn spaces_quotes_and_equals_are_quoted() {
        let line = format_line(
            "ps3-fleet",
            "rig-advance-failed",
            &[("rig", "3"), ("cause", "bus error \"E=7\"")],
        );
        assert_eq!(
            line,
            "ps3-fleet event=rig-advance-failed rig=3 cause=\"bus error \\\"E=7\\\"\""
        );
    }

    #[test]
    fn empty_value_is_visible() {
        assert_eq!(format_line("x", "e", &[("k", "")]), "x event=e k=\"\"");
    }
}
