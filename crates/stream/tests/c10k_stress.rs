//! C10k stress: a thousand concurrent subscribers multiplexed onto the
//! daemon's single event-loop thread, plus property tests over the two
//! incremental state machines that make non-blocking service correct —
//! [`take_frame`] (partial reads) and [`OutQueue`] (partial writes).
//!
//! The stress clients are raw non-blocking sockets pumped from one
//! test thread: a thousand `StreamClient`s would mean a thousand OS
//! threads, which is exactly the design the event loop replaces.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use ps3_core::SharedPowerSensor;
use ps3_duts::{BenchSetup, LoadProgram, RailId};
use ps3_sensors::ModuleKind;
use ps3_stream::event_loop::take_frame;
use ps3_stream::{ClientMsg, OutQueue, ServerMsg, StreamDaemon, StreamDaemonConfig};
use ps3_testbed::{Testbed, TestbedBuilder};
use ps3_units::{Amps, SimDuration};

const SUBS: usize = 1000;
const DIVISOR: u32 = 20;
const CAPTURE_MS: u64 = 1000;
const FRAMES: u64 = CAPTURE_MS * 20; // 20 kHz device
const EXPECT_PER_SUB: u64 = FRAMES / DIVISOR as u64;

fn bench_testbed() -> Testbed<BenchSetup> {
    TestbedBuilder::new(BenchSetup::twelve_volt(LoadProgram::Constant(Amps::new(
        2.0,
    ))))
    .attach(ModuleKind::Slot10A12V, RailId::Ext12V)
    .seed(11)
    .build()
}

/// A raw subscriber: non-blocking socket, reassembly buffer, counters.
struct RawSub {
    sock: TcpStream,
    buf: Vec<u8>,
    frames: u64,
    gap_events: u64,
    dropped: u64,
    evicted: bool,
}

impl RawSub {
    fn connect(addr: std::net::SocketAddr, divisor: u32) -> Self {
        let mut sock = TcpStream::connect(addr).unwrap();
        sock.write_all(
            &ClientMsg::Subscribe {
                pair_mask: 0x0F,
                divisor,
                rig: None,
            }
            .encode(),
        )
        .unwrap();
        sock.set_nonblocking(true).unwrap();
        Self {
            sock,
            buf: Vec::new(),
            frames: 0,
            gap_events: 0,
            dropped: 0,
            evicted: false,
        }
    }

    /// Drains whatever the socket has, returns whether bytes arrived.
    fn pump(&mut self) -> bool {
        let mut progressed = false;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.sock.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    progressed = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
        while let Some(body) = take_frame(&mut self.buf).unwrap() {
            match ServerMsg::decode(&body).unwrap() {
                ServerMsg::Batch { frames } => self.frames += frames.len() as u64,
                ServerMsg::Gap { dropped } => {
                    self.gap_events += 1;
                    self.dropped += dropped;
                }
                ServerMsg::Evicted { .. } => self.evicted = true,
                _ => {}
            }
        }
        progressed
    }
}

/// One event-loop thread serves 1000 downsampled subscribers and a
/// stalled one: every healthy subscriber gets its full gap-free
/// stream, the stalled one is evicted as a stalled write (never as a
/// gap overrun — the ring outlives the whole capture), and the
/// daemon's cumulative counters account for all of it.
#[test]
fn thousand_subscribers_on_one_thread_gap_free() {
    let mut tb = bench_testbed();
    let sensor = SharedPowerSensor::new(tb.connect().unwrap());
    let daemon = StreamDaemon::start(
        sensor.clone(),
        "127.0.0.1:0",
        StreamDaemonConfig {
            // Holds the entire capture: laps are impossible, so
            // gap-free delivery is an invariant, not a race outcome.
            ring_capacity: 32768,
            // Small socket buffers make the stalled client's eviction
            // deterministic within one capture's worth of data.
            send_buffer_bytes: 32 * 1024,
            write_timeout: Duration::from_millis(150),
            ..StreamDaemonConfig::default()
        },
    )
    .unwrap();
    let addr = daemon.local_addr();

    let mut subs: Vec<RawSub> = (0..SUBS).map(|_| RawSub::connect(addr, DIVISOR)).collect();
    // Plus one full-rate subscriber that never reads a byte.
    let stalled = RawSub::connect(addr, 1);

    let deadline = Instant::now() + Duration::from_secs(60);
    while daemon.stats().active_subscribers != SUBS as u64 + 1 {
        assert!(
            Instant::now() < deadline,
            "subscribers should register: {:?}",
            daemon.stats()
        );
        for s in &mut subs {
            s.pump();
        }
        std::thread::sleep(Duration::from_millis(1));
    }

    tb.advance_and_sync(&sensor, SimDuration::from_millis(CAPTURE_MS))
        .unwrap();
    assert_eq!(tb.frames_emitted(), FRAMES);

    // Pump the healthy thousand until each has its complete stream.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let mut progressed = false;
        let mut done = 0usize;
        for s in &mut subs {
            if s.frames >= EXPECT_PER_SUB {
                done += 1;
                continue;
            }
            progressed |= s.pump();
        }
        if done == SUBS {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "stalled at {done}/{SUBS} complete, stats: {:?}",
            daemon.stats()
        );
        if !progressed {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
    for s in &subs {
        assert_eq!(s.frames, EXPECT_PER_SUB);
        assert_eq!(s.gap_events, 0, "healthy subscriber saw a gap");
        assert_eq!(s.dropped, 0);
        assert!(!s.evicted);
    }

    // The stalled subscriber blows through its socket + queue budget
    // long before the capture ends; the write timeout then evicts it.
    let deadline = Instant::now() + Duration::from_secs(30);
    while daemon.stats().evicted == 0 {
        assert!(
            Instant::now() < deadline,
            "stalled subscriber should be evicted: {:?}",
            daemon.stats()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let stats = daemon.stats();
    assert_eq!(stats.evicted, 1);
    assert_eq!(stats.evicted_stalled, 1, "evicted for the stall…");
    assert_eq!(stats.evicted_gaps, 0, "…not for gaps: {stats:?}");
    assert_eq!(stats.accepted, SUBS as u64 + 1);
    assert_eq!(stats.active_peak, SUBS as u64 + 1);
    assert_eq!(stats.frames_published, FRAMES);
    assert!(stats.bytes_sent > 0);
    assert_eq!(sensor.frames_received(), tb.frames_emitted());

    drop(stalled);
    drop(subs);
    let deadline = Instant::now() + Duration::from_secs(30);
    while daemon.stats().active_subscribers != 0 {
        assert!(
            Instant::now() < deadline,
            "subscribers drain on disconnect: {:?}",
            daemon.stats()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

// ---------------------------------------------------------------------
// Property tests: the incremental read and write state machines.
// ---------------------------------------------------------------------

use proptest::prelude::*;

/// Wire-encodes message bodies: 4-byte LE length prefix + body.
fn encode_wire(bodies: &[Vec<u8>]) -> Vec<u8> {
    let mut wire = Vec::new();
    for b in bodies {
        wire.extend_from_slice(&u32::try_from(b.len()).unwrap().to_le_bytes());
        wire.extend_from_slice(b);
    }
    wire
}

/// A writer that accepts a bounded number of bytes per call, following
/// a schedule; a zero entry models the socket returning `WouldBlock`.
struct ThrottledWriter {
    sink: Vec<u8>,
    schedule: Vec<usize>,
    next: usize,
}

impl Write for ThrottledWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let cap = if self.next < self.schedule.len() {
            let c = self.schedule[self.next];
            self.next += 1;
            c
        } else {
            // Past the schedule the socket is wide open, so every
            // run terminates.
            usize::MAX
        };
        if cap == 0 {
            return Err(std::io::Error::from(ErrorKind::WouldBlock));
        }
        let n = cap.min(buf.len());
        self.sink.extend_from_slice(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

proptest! {
    /// However a byte stream is chopped into reads, `take_frame`
    /// reassembles exactly the original message bodies, in order,
    /// and never leaves more than a partial message buffered.
    #[test]
    fn take_frame_reassembles_any_chunking(
        bodies in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..200), 0..12),
        chunk_sizes in proptest::collection::vec(1usize..64, 1..64),
    ) {
        let wire = encode_wire(&bodies);
        let mut buf = Vec::new();
        let mut got: Vec<Vec<u8>> = Vec::new();
        let mut fed = 0usize;
        let mut i = 0usize;
        while fed < wire.len() {
            let n = chunk_sizes[i % chunk_sizes.len()].min(wire.len() - fed);
            i += 1;
            buf.extend_from_slice(&wire[fed..fed + n]);
            fed += n;
            while let Some(body) = take_frame(&mut buf).unwrap() {
                got.push(body);
            }
            // Nothing complete may linger: whatever is buffered is a
            // strict prefix of the next message.
            prop_assert!(take_frame(&mut buf).unwrap().is_none());
        }
        prop_assert_eq!(got, bodies);
        prop_assert!(buf.is_empty(), "no trailing bytes after full input");
    }

    /// A zero-length or oversized length prefix is unrecoverable.
    #[test]
    fn take_frame_rejects_bad_lengths(
        oversized in (ps3_stream::proto::MAX_MSG_LEN as u32 + 1)..u32::MAX,
        zero in any::<bool>(),
    ) {
        let len = if zero { 0u32 } else { oversized };
        let mut buf = len.to_le_bytes().to_vec();
        buf.extend_from_slice(&[0u8; 8]);
        prop_assert!(take_frame(&mut buf).is_err());
    }

    /// However the socket throttles writes, `OutQueue` delivers the
    /// queued messages byte-for-byte in order, with `queued_bytes`
    /// tracking exactly what remains.
    #[test]
    fn out_queue_survives_any_write_schedule(
        bodies in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..200), 1..12),
        schedule in proptest::collection::vec(0usize..48, 0..96),
        limit in 1usize..4096,
    ) {
        let mut q = OutQueue::new(limit);
        let mut expected = Vec::new();
        for b in &bodies {
            let wire = encode_wire(std::slice::from_ref(b));
            expected.extend_from_slice(&wire);
            q.push_encoded(wire);
        }
        prop_assert_eq!(q.queued_bytes(), expected.len());

        let mut w = ThrottledWriter { sink: Vec::new(), schedule, next: 0 };
        while !q.is_empty() {
            let before = q.queued_bytes();
            let written = q.write_some(&mut w).unwrap();
            prop_assert_eq!(before - q.queued_bytes(), written);
            prop_assert_eq!(w.sink.len(), expected.len() - q.queued_bytes());
        }
        prop_assert_eq!(q.queued_bytes(), 0);
        prop_assert_eq!(w.sink, expected);
    }
}
