//! Replay after a crash: an archive truncated mid-segment must replay
//! exactly its recovered prefix — every frame of every sealed segment,
//! nothing from the torn tail — and close the ring cleanly so the
//! subscriber observes an ordinary end-of-stream, not an eviction.

use std::fs::OpenOptions;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ps3_archive::{Archive, ArchiveFrame, SegmentWriter};
use ps3_firmware::{SensorConfig, SENSOR_SLOTS};
use ps3_stream::{
    EvictReason, StreamClient, StreamClientConfig, StreamDaemon, StreamDaemonConfig, StreamFrame,
};
use ps3_units::SimTime;

fn wait_until(deadline: Duration, mut done: impl FnMut() -> bool) -> bool {
    let end = Instant::now() + deadline;
    while Instant::now() < end {
        if done() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    done()
}

#[test]
fn replay_of_truncated_archive_serves_recovered_prefix_and_closes_cleanly() {
    let mut configs: [SensorConfig; SENSOR_SLOTS] =
        core::array::from_fn(|_| SensorConfig::unpopulated());
    configs[0] = SensorConfig::new("I0", 3.3, 0.105, true);
    configs[1] = SensorConfig::new("U0", 3.3, 0.2171, true);

    let path = std::env::temp_dir().join(format!(
        "ps3-stream-replay-torn-{}.ps3a",
        std::process::id()
    ));
    let frames: Vec<ArchiveFrame> = (0..300u64)
        .map(|i| {
            let mut raw = [0u16; SENSOR_SLOTS];
            raw[0] = 400 + (i % 41) as u16;
            raw[1] = 600 + (i % 13) as u16;
            ArchiveFrame {
                time: SimTime::from_micros(25 + i * 50),
                raw,
                present: 0b11,
                marker: (i == 50 || i == 250).then_some('m'),
            }
        })
        .collect();
    {
        let mut writer = SegmentWriter::create_with(&path, configs, 100).unwrap();
        for &frame in &frames {
            writer.push(frame).unwrap();
        }
        writer.finish().unwrap();
    }

    // Crash simulation: tear 37 bytes off the end, which lands inside
    // the third segment's bytes. The stale sidecar index still
    // describes all 300 frames, so recovery must also notice the index
    // no longer matches the file and fall back to a scan.
    let full_len = std::fs::metadata(&path).unwrap().len();
    OpenOptions::new()
        .write(true)
        .open(&path)
        .unwrap()
        .set_len(full_len - 37)
        .unwrap();

    let archive = Arc::new(Archive::open(&path).unwrap());
    let recovery = archive.recovery();
    assert!(!recovery.used_index, "stale index must be rejected");
    assert!(recovery.trailing_bytes > 0, "torn tail must be declared");
    let recovered: u64 = archive
        .segments()
        .iter()
        .map(|m| u64::from(m.header.frame_count))
        .sum();
    assert_eq!(recovered, 200, "two sealed segments survive");

    let mut daemon = StreamDaemon::start_replay(
        Arc::clone(&archive),
        None,
        0.0,
        "127.0.0.1:0",
        StreamDaemonConfig::default(),
    )
    .unwrap();
    let client = StreamClient::connect(
        daemon.local_addr(),
        StreamClientConfig {
            pair_mask: 0x0F,
            divisor: 1,
            ..StreamClientConfig::default()
        },
    )
    .unwrap();
    let received: Arc<Mutex<Vec<StreamFrame>>> = Arc::new(Mutex::new(Vec::new()));
    {
        let received = Arc::clone(&received);
        client.set_frame_callback(move |frame| received.lock().unwrap().push(*frame));
    }

    // The replay ends by closing the ring; the client sees a clean
    // end-of-stream.
    assert!(
        wait_until(Duration::from_secs(30), || !client.is_alive()),
        "replay should end the stream"
    );
    let got = received.lock().unwrap().clone();
    assert_eq!(got.len(), 200, "exactly the recovered prefix is served");
    for (frame, want) in got.iter().zip(&frames[..200]) {
        assert_eq!(frame.time, want.time);
        assert_eq!(frame.raw, want.raw);
        assert_eq!(frame.present, want.present);
        assert_eq!(frame.marker, want.marker.is_some());
    }
    assert_eq!(client.frames_received(), 200);
    assert_eq!(client.gap_events(), 0, "no gaps on an unpaced replay");
    assert!(!client.is_evicted(), "end-of-replay is not an eviction");
    assert_eq!(client.eviction_reason(), Some(EvictReason::Shutdown));

    // The daemon's own accounting agrees, and shutdown is orderly.
    assert_eq!(daemon.stats().frames_published, 200);
    assert_eq!(daemon.stats().evicted, 0);
    daemon.shutdown();

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(ps3_archive::index_path_for(&path)).ok();
}
