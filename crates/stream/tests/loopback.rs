//! End-to-end loopback test: a daemon owning a virtual-testbed sensor,
//! many concurrent TCP subscribers at mixed rates, one deliberately
//! stalled subscriber that must be evicted without disturbing anyone
//! else — the acceptance scenario for the streaming subsystem.

use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ps3_core::SharedPowerSensor;
use ps3_duts::{BenchSetup, LoadProgram, RailId};
use ps3_sensors::ModuleKind;
use ps3_stream::{ClientMsg, StreamClient, StreamClientConfig, StreamDaemon, StreamDaemonConfig};
use ps3_testbed::{Testbed, TestbedBuilder};
use ps3_units::{Amps, SimDuration};

fn bench_testbed() -> Testbed<BenchSetup> {
    TestbedBuilder::new(BenchSetup::twelve_volt(LoadProgram::Constant(Amps::new(
        2.0,
    ))))
    .attach(ModuleKind::Slot10A12V, RailId::Ext12V)
    .seed(7)
    .build()
}

fn wait_until(deadline: Duration, mut done: impl FnMut() -> bool) -> bool {
    let end = Instant::now() + deadline;
    while Instant::now() < end {
        if done() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    done()
}

#[test]
fn daemon_serves_mixed_rate_subscribers_and_evicts_stalled() {
    let mut tb = bench_testbed();
    let sensor = SharedPowerSensor::new(tb.connect().unwrap());
    let daemon = StreamDaemon::start(
        sensor.clone(),
        "127.0.0.1:0",
        StreamDaemonConfig {
            ring_capacity: 65536,
            write_timeout: Duration::from_millis(150),
            max_gap_events: 8,
            ..StreamDaemonConfig::default()
        },
    )
    .unwrap();
    let addr = daemon.local_addr();

    // Seven healthy subscribers at three rates…
    let at = |divisor: u32| StreamClientConfig {
        pair_mask: 0x0F,
        divisor,
        ..StreamClientConfig::default()
    };
    let fast: Vec<StreamClient> = (0..3)
        .map(|_| StreamClient::connect(addr, at(1)).unwrap())
        .collect();
    let khz: Vec<StreamClient> = (0..2)
        .map(|_| StreamClient::connect(addr, at(20)).unwrap())
        .collect();
    let slow: Vec<StreamClient> = (0..2)
        .map(|_| StreamClient::connect(addr, at(2000)).unwrap())
        .collect();

    // …plus one that subscribes and then never reads a byte.
    let mut stalled = TcpStream::connect(addr).unwrap();
    stalled
        .write_all(
            &ClientMsg::Subscribe {
                pair_mask: 0x0F,
                divisor: 1,
                rig: None,
            }
            .encode(),
        )
        .unwrap();

    assert!(
        wait_until(Duration::from_secs(10), || daemon
            .stats()
            .active_subscribers
            == 8),
        "all 8 subscribers should be accepted, stats: {:?}",
        daemon.stats()
    );

    // The first fast client records every timestamp it sees.
    let timestamps: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let markers = Arc::new(AtomicU64::new(0));
    {
        let timestamps = Arc::clone(&timestamps);
        let markers = Arc::clone(&markers);
        fast[0].set_frame_callback(move |frame| {
            timestamps.lock().unwrap().push(frame.time.as_micros());
            if frame.marker {
                markers.fetch_add(1, Ordering::SeqCst);
            }
        });
    }

    // Drive the virtual clock until the stalled subscriber has been
    // evicted (its TCP buffers fill, a daemon write times out), with a
    // generous cap on how much data that may take.
    let chunk = SimDuration::from_millis(250);
    let mut chunks = 0;
    while daemon.stats().evicted == 0 && chunks < 120 {
        tb.advance_and_sync(&sensor, chunk).unwrap();
        chunks += 1;
        if chunks == 2 {
            // A marker injected over the network, mid-stream.
            fast[1].inject_marker('n').unwrap();
        }
    }
    let stats = daemon.stats();
    assert_eq!(stats.evicted, 1, "stalled subscriber evicted: {stats:?}");

    // Acquisition never depends on subscribers: the host processed
    // every frame the device emitted.
    assert_eq!(sensor.frames_received(), tb.frames_emitted());
    let frames_total = tb.frames_emitted();
    assert!(
        frames_total >= 10_000,
        "expected a substantial run, got {frames_total} frames"
    );

    // Every healthy 20 kHz subscriber gets every frame, gap-free.
    for client in &fast {
        assert!(
            wait_until(Duration::from_secs(30), || client.frames_received()
                >= frames_total),
            "20 kHz subscriber received {} of {frames_total}",
            client.frames_received()
        );
        assert_eq!(client.frames_received(), frames_total);
        assert_eq!(client.gap_events(), 0, "20 kHz stream must be gap-free");
        assert_eq!(client.dropped_frames(), 0);
        assert!(!client.is_evicted());
        assert!(client.is_alive());
    }

    // The recorded timestamps are strictly 50 µs apart — no holes, no
    // reordering, across the whole run.
    {
        let ts = timestamps.lock().unwrap();
        assert_eq!(ts.len() as u64, frames_total);
        for pair in ts.windows(2) {
            assert_eq!(
                pair[1] - pair[0],
                50,
                "gap between {} and {}",
                pair[0],
                pair[1]
            );
        }
    }
    assert_eq!(markers.load(Ordering::SeqCst), 1, "one injected marker");

    // Downsampled subscribers see block counts and the same power.
    for (clients, divisor) in [(&khz, 20u64), (&slow, 2000u64)] {
        let expect = frames_total / divisor;
        for client in clients.iter() {
            assert!(
                wait_until(Duration::from_secs(30), || client.frames_received()
                    >= expect),
                "÷{divisor} subscriber received {} of {expect}",
                client.frames_received()
            );
            assert_eq!(client.frames_received(), expect);
            assert_eq!(client.gap_events(), 0);
            let watts = client.last_watts().value();
            assert!((watts - 24.0).abs() < 0.5, "÷{divisor} power {watts}");
        }
    }
    // A single un-averaged 20 kHz frame carries the full sensor noise,
    // so its tolerance is wider than the downsampled streams'.
    let watts = fast[2].last_watts().value();
    assert!((watts - 24.0).abs() < 2.0, "native-rate power {watts}");

    // Stats round-trip over the wire matches the daemon's own view
    // (the evicted session's thread needs a moment to finish tearing
    // down before the subscriber count settles at 7).
    assert!(
        wait_until(Duration::from_secs(10), || daemon
            .stats()
            .active_subscribers
            == 7),
        "evicted session should deregister, stats: {:?}",
        daemon.stats()
    );
    let wire_stats = fast[0].query_stats(Duration::from_secs(5)).unwrap();
    assert_eq!(wire_stats.frames_published, frames_total);
    assert_eq!(wire_stats.evicted, 1);
    assert_eq!(wire_stats.active_subscribers, 7);

    drop(stalled);
    drop(fast);
    drop(khz);
    drop(slow);
    assert!(
        wait_until(Duration::from_secs(10), || daemon
            .stats()
            .active_subscribers
            == 0),
        "subscribers drain on disconnect"
    );
    drop(daemon);
    drop(sensor);
}

#[test]
fn lagging_subscriber_gets_gap_markers_not_backpressure() {
    let mut tb = bench_testbed();
    let sensor = SharedPowerSensor::new(tb.connect().unwrap());
    // A two-slot ring: the producer's bursts are guaranteed to lap the
    // sender thread, so the drop-oldest path runs constantly. The gap
    // budget is unlimited — this test watches the Gap messages.
    let daemon = StreamDaemon::start(
        sensor.clone(),
        "127.0.0.1:0",
        StreamDaemonConfig {
            ring_capacity: 2,
            max_gap_events: u64::MAX,
            ..StreamDaemonConfig::default()
        },
    )
    .unwrap();

    let client = StreamClient::connect(daemon.local_addr(), StreamClientConfig::default()).unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    while client.gap_events() == 0 && Instant::now() < deadline {
        tb.advance_and_sync(&sensor, SimDuration::from_millis(100))
            .unwrap();
    }

    assert!(
        client.gap_events() > 0,
        "two-slot ring must lap: {client:?}"
    );
    assert!(client.dropped_frames() > 0);
    assert!(
        client.frames_received() > 0,
        "laps drop data, not the client"
    );
    assert!(client.is_alive());
    assert!(!client.is_evicted());
    // Acquisition never noticed any of it.
    assert_eq!(sensor.frames_received(), tb.frames_emitted());
}

#[test]
fn persistently_lapped_subscriber_is_evicted() {
    let mut tb = bench_testbed();
    let sensor = SharedPowerSensor::new(tb.connect().unwrap());
    let daemon = StreamDaemon::start(
        sensor.clone(),
        "127.0.0.1:0",
        StreamDaemonConfig {
            ring_capacity: 2,
            max_gap_events: 2,
            ..StreamDaemonConfig::default()
        },
    )
    .unwrap();

    let client = StreamClient::connect(daemon.local_addr(), StreamClientConfig::default()).unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    while daemon.stats().evicted == 0 && Instant::now() < deadline {
        tb.advance_and_sync(&sensor, SimDuration::from_millis(100))
            .unwrap();
    }
    assert_eq!(daemon.stats().evicted, 1, "gap budget exceeded → eviction");
    // The client reads promptly, so the Evicted notice reaches it.
    assert!(
        wait_until(Duration::from_secs(10), || client.is_evicted()),
        "client should learn of its eviction: {client:?}"
    );
    // The eviction notice carries the cause: the configured gap budget
    // it blew through.
    match client.eviction_reason() {
        Some(ps3_stream::EvictReason::TooManyGaps { gaps, limit }) => {
            assert_eq!(limit, 2, "limit echoes the daemon config");
            assert!(gaps > limit, "reported gaps exceed the limit");
        }
        other => panic!("expected TooManyGaps eviction, got {other:?}"),
    }
    assert_eq!(sensor.frames_received(), tb.frames_emitted());
}

#[test]
fn marker_injected_by_client_reaches_host_trace() {
    let mut tb = bench_testbed();
    let sensor = SharedPowerSensor::new(tb.connect().unwrap());
    let daemon =
        StreamDaemon::start(sensor.clone(), "127.0.0.1:0", StreamDaemonConfig::default()).unwrap();
    let client = StreamClient::connect(daemon.local_addr(), StreamClientConfig::default()).unwrap();

    sensor.begin_trace();
    tb.advance_and_sync(&sensor, SimDuration::from_millis(5))
        .unwrap();
    client.inject_marker('z').unwrap();
    // The marker command travels client → daemon → sensor: give it a
    // moment to land before producing the frames that carry it.
    std::thread::sleep(Duration::from_millis(50));
    tb.advance_and_sync(&sensor, SimDuration::from_millis(5))
        .unwrap();
    let trace = sensor.end_trace();
    let labels: Vec<char> = trace.markers().iter().map(|m| m.label).collect();
    assert_eq!(labels, vec!['z'], "network-injected marker in host trace");
}

/// Replay mode: a daemon serving an archived range must deliver the
/// stored frames bit-for-bit (raw codes, presence, marker positions)
/// and close the stream when the range is exhausted.
#[test]
fn replay_daemon_serves_archived_range_exactly() {
    use ps3_archive::{Archive, ArchiveFrame, SegmentWriter};
    use ps3_firmware::{SensorConfig, SENSOR_SLOTS};
    use ps3_stream::StreamFrame;
    use ps3_units::SimTime;

    let mut configs: [SensorConfig; SENSOR_SLOTS] =
        core::array::from_fn(|_| SensorConfig::unpopulated());
    configs[0] = SensorConfig::new("I0", 3.3, 0.105, true);
    configs[1] = SensorConfig::new("U0", 3.3, 0.2171, true);

    let path = std::env::temp_dir().join(format!("ps3-stream-replay-{}.ps3a", std::process::id()));
    let frames: Vec<ArchiveFrame> = (0..400u64)
        .map(|i| {
            let mut raw = [0u16; SENSOR_SLOTS];
            raw[0] = 400 + (i % 37) as u16;
            raw[1] = 600 + (i % 11) as u16;
            ArchiveFrame {
                time: SimTime::from_micros(25 + i * 50),
                raw,
                present: 0b11,
                marker: (i == 150 || i == 250).then_some('r'),
            }
        })
        .collect();
    {
        let mut writer = SegmentWriter::create_with(&path, configs, 100).unwrap();
        for &frame in &frames {
            writer.push(frame).unwrap();
        }
        writer.finish().unwrap();
    }

    // Replay only frames 100..300, unpaced.
    let archive = Arc::new(Archive::open(&path).unwrap());
    let range = Some((frames[100].time, frames[300].time));
    let mut daemon = StreamDaemon::start_replay(
        archive,
        range,
        0.0,
        "127.0.0.1:0",
        StreamDaemonConfig::default(),
    )
    .unwrap();
    assert!(daemon.is_replay());
    assert!(daemon.sensor().is_none());

    let client = StreamClient::connect(
        daemon.local_addr(),
        StreamClientConfig {
            pair_mask: 0x0F,
            divisor: 1,
            ..StreamClientConfig::default()
        },
    )
    .unwrap();
    let received: Arc<Mutex<Vec<StreamFrame>>> = Arc::new(Mutex::new(Vec::new()));
    {
        let received = Arc::clone(&received);
        client.set_frame_callback(move |frame| received.lock().unwrap().push(*frame));
    }
    // InjectMarker is accepted but ignored in replay mode.
    client.inject_marker('x').unwrap();

    // End of range closes the stream; the client observes it.
    assert!(
        wait_until(Duration::from_secs(30), || !client.is_alive()),
        "replay should end the stream"
    );
    let got = received.lock().unwrap().clone();
    assert_eq!(got.len(), 200, "half-open range [100, 300)");
    for (frame, want) in got.iter().zip(&frames[100..300]) {
        assert_eq!(frame.time, want.time);
        assert_eq!(frame.raw, want.raw);
        assert_eq!(frame.present, want.present);
        assert_eq!(frame.marker, want.marker.is_some());
    }
    assert_eq!(client.gap_events(), 0);
    // End-of-replay is a clean shutdown, not a for-cause eviction.
    assert!(!client.is_evicted());
    assert_eq!(
        client.eviction_reason(),
        Some(ps3_stream::EvictReason::Shutdown)
    );

    daemon.shutdown();
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(ps3_archive::index_path_for(&path)).ok();
}

/// Satellite: a client with a reconnect policy survives a daemon
/// bounce (stop + restart on the same port) and resumes receiving
/// frames from the new incarnation without counting the outage as
/// dropped frames.
#[test]
fn reconnecting_client_survives_daemon_bounce() {
    use ps3_stream::ReconnectPolicy;

    let mut tb = bench_testbed();
    let sensor = SharedPowerSensor::new(tb.connect().unwrap());
    let daemon =
        StreamDaemon::start(sensor.clone(), "127.0.0.1:0", StreamDaemonConfig::default()).unwrap();
    let addr = daemon.local_addr();

    let client = StreamClient::connect(
        addr,
        StreamClientConfig {
            reconnect: Some(ReconnectPolicy {
                max_retries: 50,
                initial_backoff: Duration::from_millis(20),
                max_backoff: Duration::from_millis(100),
            }),
            ..StreamClientConfig::default()
        },
    )
    .unwrap();

    tb.advance_and_sync(&sensor, SimDuration::from_millis(50))
        .unwrap();
    assert!(
        wait_until(Duration::from_secs(10), || client.frames_received() > 0),
        "first incarnation delivers frames"
    );
    let before_bounce = client.frames_received();

    // Bounce: tear the daemon down (clients get a Shutdown notice) and
    // start a fresh one on the same address.
    drop(daemon);
    let mut tb2 = bench_testbed();
    let sensor2 = SharedPowerSensor::new(tb2.connect().unwrap());
    let daemon2 =
        StreamDaemon::start(sensor2.clone(), addr, StreamDaemonConfig::default()).unwrap();

    // The client redials and resubscribes on its own.
    assert!(
        wait_until(Duration::from_secs(10), || daemon2
            .stats()
            .active_subscribers
            == 1),
        "client should reattach to the new daemon"
    );
    assert_eq!(client.reconnects(), 1);
    assert!(client.is_alive());
    assert!(!client.is_evicted(), "a bounce is not a for-cause eviction");

    tb2.advance_and_sync(&sensor2, SimDuration::from_millis(50))
        .unwrap();
    assert!(
        wait_until(Duration::from_secs(10), || client.frames_received()
            > before_bounce),
        "second incarnation delivers frames to the same client"
    );
    // The outage is a cursor jump, not a counted gap: dropped_frames
    // only ever reports server-side ring laps.
    assert_eq!(client.gap_events(), 0);
    assert_eq!(client.dropped_frames(), 0);

    drop(client);
    assert!(
        wait_until(Duration::from_secs(10), || daemon2
            .stats()
            .active_subscribers
            == 0),
        "client drains from the new daemon on close"
    );
}
