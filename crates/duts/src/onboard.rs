//! On-board (vendor) power sensor models.
//!
//! §II-A and Fig 7: vendor APIs expose the GPU's built-in sensor, but
//! with severe temporal limitations. The NVML model provides both the
//! 'instantaneous' reading (new values at ~10 Hz) and the 'legacy'
//! averaged reading (a sliding 1-second window, also served at 10 Hz);
//! the AMD SMI model updates every millisecond and tracks the true
//! power closely — exactly the contrast the paper demonstrates.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use ps3_units::{SimDuration, SimTime, Watts};

use crate::gpu::GpuModel;

/// One reading from an on-board sensor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnboardReading {
    /// When the reported value was last refreshed by the device
    /// (sample-and-hold: usually earlier than the poll time).
    pub updated_at: SimTime,
    /// Reported power.
    pub power: Watts,
}

/// A vendor power-reporting API.
pub trait OnboardSensor: Send {
    /// Polls the API at time `now`; returns the currently held value.
    fn read(&mut self, now: SimTime) -> OnboardReading;

    /// How often the held value refreshes.
    fn update_interval(&self) -> SimDuration;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// NVML reporting mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NvmlMode {
    Instant,
    Average,
}

/// NVML-like sensor: 10 Hz refresh; optionally the legacy 1 s-window
/// average (driver < 530 semantics).
pub struct NvmlSensor {
    gpu: Arc<Mutex<GpuModel>>,
    mode: NvmlMode,
    held: Option<OnboardReading>,
    /// History of instantaneous grid samples for the averaging window.
    history: VecDeque<(SimTime, f64)>,
    /// Per-instance gain error: Yang et al. report significant NVML
    /// inaccuracies; we default to a mild 2 %.
    gain: f64,
}

/// Refresh interval of the NVML-held value (~10 Hz).
const NVML_INTERVAL: SimDuration = SimDuration::from_millis(100);

/// Averaging window of the legacy NVML reading.
const NVML_WINDOW: SimDuration = SimDuration::from_secs(1);

impl NvmlSensor {
    /// The 'instantaneous' NVML field (driver ≥ 530).
    #[must_use]
    pub fn instantaneous(gpu: Arc<Mutex<GpuModel>>) -> Self {
        Self {
            gpu,
            mode: NvmlMode::Instant,
            held: None,
            history: VecDeque::new(),
            gain: 1.02,
        }
    }

    /// The legacy 'average' NVML field: a sliding 1 s window.
    #[must_use]
    pub fn average(gpu: Arc<Mutex<GpuModel>>) -> Self {
        Self {
            gpu,
            mode: NvmlMode::Average,
            held: None,
            history: VecDeque::new(),
            gain: 1.02,
        }
    }

    /// Overrides the gain error (Yang et al. found GPUs off by much
    /// more than the default 2 %).
    pub fn set_gain_error(&mut self, gain: f64) {
        self.gain = gain;
    }

    fn refresh(&mut self, grid: SimTime) {
        let p = self.gpu.lock().power(grid).value() * self.gain;
        self.history.push_back((grid, p));
        while let Some(&(t, _)) = self.history.front() {
            if grid.saturating_duration_since(t) > NVML_WINDOW {
                self.history.pop_front();
            } else {
                break;
            }
        }
        let value = match self.mode {
            NvmlMode::Instant => p,
            NvmlMode::Average => {
                let sum: f64 = self.history.iter().map(|&(_, p)| p).sum();
                sum / self.history.len() as f64
            }
        };
        self.held = Some(OnboardReading {
            updated_at: grid,
            power: Watts::new(value),
        });
    }
}

impl OnboardSensor for NvmlSensor {
    fn read(&mut self, now: SimTime) -> OnboardReading {
        let interval = NVML_INTERVAL.as_nanos();
        let grid = SimTime::from_nanos((now.as_nanos() / interval) * interval);
        let due = match self.held {
            None => true,
            Some(h) => grid > h.updated_at,
        };
        if due {
            // Catch up missed grid points so the averaging window is
            // well-populated even under sparse polling.
            let start = self
                .held
                .map(|h| h.updated_at.as_nanos() / interval + 1)
                .unwrap_or(grid.as_nanos() / interval);
            let first = start.max((grid.as_nanos() / interval).saturating_sub(15));
            for g in first..=grid.as_nanos() / interval {
                self.refresh(SimTime::from_nanos(g * interval));
            }
        }
        self.held.expect("refreshed above")
    }

    fn update_interval(&self) -> SimDuration {
        NVML_INTERVAL
    }

    fn name(&self) -> &'static str {
        match self.mode {
            NvmlMode::Instant => "NVML (instantaneous)",
            NvmlMode::Average => "NVML (average)",
        }
    }
}

/// AMD-SMI / ROCm-SMI-like sensor: 1 ms refresh, accurate (the paper
/// found both APIs to yield identical, PowerSensor3-matching results).
pub struct AmdSmiSensor {
    gpu: Arc<Mutex<GpuModel>>,
    held: Option<OnboardReading>,
    name: &'static str,
}

/// Refresh interval of the AMD sensor value.
const AMD_INTERVAL: SimDuration = SimDuration::from_millis(1);

impl AmdSmiSensor {
    /// The `amd-smi` interface.
    #[must_use]
    pub fn amd_smi(gpu: Arc<Mutex<GpuModel>>) -> Self {
        Self {
            gpu,
            held: None,
            name: "AMD SMI",
        }
    }

    /// The `rocm-smi` interface — same sensor, different API (§V-A:
    /// "identical results despite differences in their programming
    /// interfaces").
    #[must_use]
    pub fn rocm_smi(gpu: Arc<Mutex<GpuModel>>) -> Self {
        Self {
            gpu,
            held: None,
            name: "ROCm SMI",
        }
    }
}

impl OnboardSensor for AmdSmiSensor {
    fn read(&mut self, now: SimTime) -> OnboardReading {
        let interval = AMD_INTERVAL.as_nanos();
        let grid = SimTime::from_nanos((now.as_nanos() / interval) * interval);
        let due = match self.held {
            None => true,
            Some(h) => grid > h.updated_at,
        };
        if due {
            let p = self.gpu.lock().power(grid);
            self.held = Some(OnboardReading {
                updated_at: grid,
                power: p,
            });
        }
        self.held.expect("refreshed above")
    }

    fn update_interval(&self) -> SimDuration {
        AMD_INTERVAL
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::{GpuKernel, GpuSpec};

    fn shared_gpu(spec: GpuSpec) -> Arc<Mutex<GpuModel>> {
        Arc::new(Mutex::new(GpuModel::new(spec, 9)))
    }

    #[test]
    fn nvml_holds_values_between_refreshes() {
        let gpu = shared_gpu(GpuSpec::rtx4000_ada());
        let mut nvml = NvmlSensor::instantaneous(Arc::clone(&gpu));
        let a = nvml.read(SimTime::from_micros(100_000));
        let b = nvml.read(SimTime::from_micros(150_000));
        assert_eq!(a, b, "held between 10 Hz refreshes");
        let c = nvml.read(SimTime::from_micros(210_000));
        assert!(c.updated_at > a.updated_at);
    }

    #[test]
    fn nvml_misses_inter_wave_dips() {
        let gpu = shared_gpu(GpuSpec::rtx4000_ada());
        gpu.lock().launch(GpuKernel {
            waves: 50,
            wave_duration: SimDuration::from_millis(30),
            gap: SimDuration::from_micros(400),
            utilization: 0.9,
        });
        let mut nvml = NvmlSensor::instantaneous(Arc::clone(&gpu));
        // Poll NVML at its own rate through steady state.
        let mut nvml_readings = Vec::new();
        for ms in (500..1400u64).step_by(100) {
            nvml_readings.push(nvml.read(SimTime::from_micros(ms * 1000)).power.value());
        }
        let nv_max = nvml_readings.iter().cloned().fold(0.0, f64::max);
        // The 400 µs dips occupy ~1.3% of the time; 10 Hz sampling lands
        // on the plateau almost always (an occasional unlucky poll can
        // still hit one).
        let on_plateau = nvml_readings.iter().filter(|&&p| p > 0.8 * nv_max).count();
        assert!(
            on_plateau >= nvml_readings.len() - 1,
            "NVML mostly misses dips: {on_plateau}/{} on plateau",
            nvml_readings.len()
        );
    }

    #[test]
    fn amd_smi_tracks_closely() {
        let gpu = shared_gpu(GpuSpec::w7700());
        gpu.lock()
            .launch(GpuKernel::synthetic_fma(SimDuration::from_secs(2), 4));
        let mut smi = AmdSmiSensor::amd_smi(Arc::clone(&gpu));
        let t = SimTime::from_micros(1_200_000);
        let reading = smi.read(t).power.value();
        let truth = gpu.lock().power(t + SimDuration::from_micros(1)).value();
        assert!(
            (reading - truth).abs() < 3.0,
            "SMI {reading} vs truth {truth}"
        );
    }

    #[test]
    fn rocm_and_amd_smi_agree() {
        let gpu = shared_gpu(GpuSpec::w7700());
        let mut a = AmdSmiSensor::amd_smi(Arc::clone(&gpu));
        let mut b = AmdSmiSensor::rocm_smi(Arc::clone(&gpu));
        // Same held-grid semantics: identical timestamps. (Values may
        // differ by the model's sampling noise; the grid matches.)
        let ra = a.read(SimTime::from_micros(5_500));
        let rb = b.read(SimTime::from_micros(5_700));
        assert_eq!(ra.updated_at, rb.updated_at);
        assert_ne!(a.name(), b.name());
    }

    #[test]
    fn nvml_average_lags_instant() {
        let gpu = shared_gpu(GpuSpec::rtx4000_ada());
        let mut instant = NvmlSensor::instantaneous(Arc::clone(&gpu));
        let mut average = NvmlSensor::average(Arc::clone(&gpu));
        // Prime both during idle.
        instant.read(SimTime::from_micros(900_000));
        average.read(SimTime::from_micros(900_000));
        gpu.lock()
            .launch(GpuKernel::synthetic_fma(SimDuration::from_secs(3), 4));
        // Shortly after launch the window average still contains idle.
        let t = SimTime::from_micros(1_300_000);
        let i = instant.read(t).power.value();
        let a = average.read(t).power.value();
        assert!(i > 80.0, "instant sees the kernel: {i}");
        assert!(a < i - 20.0, "average lags: avg {a} vs instant {i}");
    }
}
