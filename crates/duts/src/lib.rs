//! Device-under-test (DUT) power models.
//!
//! The paper's evaluation measures four classes of devices; this crate
//! models each of them as a [`Dut`]: a stateful object that reports the
//! voltage and current on each of its power rails at any simulated
//! instant. The testbed wires these rails through sensor modules into
//! the emulated PowerSensor3.
//!
//! * [`BenchSetup`] — the accuracy-assessment bench of Fig 3: a lab
//!   PSU ([`LabPsu`]) plus a programmable electronic load
//!   ([`ElectronicLoad`]) with square-wave modulation for the step
//!   response (Fig 5) and current sweeps (Fig 4).
//! * [`GpuModel`] — a PCIe GPU with a DVFS boost governor; NVIDIA-like
//!   and AMD-like profiles reproduce the Fig 7 power signatures
//!   (clock ramp, inter-wave dips, power-limit capping, idle decay).
//!   [`NvmlSensor`] / [`AmdSmiSensor`] model the on-board counterparts.
//! * [`JetsonModel`] — an AGX-Orin-like SoC on a USB-C rail whose
//!   built-in sensor ([`JetsonBuiltinSensor`]) sees only the module,
//!   not the carrier board (§V-B).
//! * [`SsdModel`] — an NVMe SSD with an FTL (SLC cache, greedy garbage
//!   collection, write amplification) behind a PCIe slot, driven by a
//!   fio-like workload ([`FioJob`]); reproduces Fig 12.
//! * [`NicModel`] — a network adapter whose power scales with both
//!   throughput and packet rate (§VI extendibility demo).
//! * [`CpuModel`] — a CPU package running a phase-marked
//!   [`CpuWorkload`], with exact accounting of the cycles on-CPU
//!   measurement probes steal from it (the Diamond et al. overhead
//!   study's subject; see `ps3-pmt`'s probe family).

#![forbid(unsafe_code)]

mod bench_load;
mod cpu;
pub mod ftl;
mod gpu;
mod jetson;
mod nic;
mod onboard;
mod rail;
mod ssd;

pub use bench_load::{BenchSetup, ElectronicLoad, LabPsu, LoadProgram};
pub use cpu::{CpuModel, CpuPhase, CpuSpec, CpuWorkload, ENERGY_HISTORY};
pub use gpu::{GpuHandle, GpuKernel, GpuModel, GpuSpec, GpuVendor};
pub use jetson::{JetsonBuiltinSensor, JetsonModel, JetsonSpec};
pub use nic::{NicModel, NicSpec, TrafficLoad};
pub use onboard::{AmdSmiSensor, NvmlSensor, OnboardReading, OnboardSensor};
pub use rail::{ConstantDut, Dut, RailId, RailState, SharedDut};
pub use ssd::{FioJob, IoPattern, SsdHandle, SsdModel, SsdSpec, SsdStats};
