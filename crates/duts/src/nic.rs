//! A network interface controller (NIC) power model.
//!
//! The paper lists NICs among the PCIe peripherals PowerSensor3
//! targets (§I, §II) without dedicating an experiment to them; this
//! model rounds out the DUT library so the toolkit is demonstrably
//! extensible (§VI "Extendibility"). Power scales with both throughput
//! (SerDes/MAC activity) and packet rate (per-descriptor DMA and
//! interrupt work), so small-packet workloads burn more watts per
//! gigabit than large-packet ones — the behaviour an external sensor
//! would reveal.

use ps3_units::{Amps, SimTime, Volts, Watts};

use crate::rail::{Dut, RailId, RailState};

/// Static characteristics of the NIC.
#[derive(Debug, Clone, PartialEq)]
pub struct NicSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Line rate in Gbit/s.
    pub line_rate_gbps: f64,
    /// Idle power in watts (link up, no traffic).
    pub idle_w: f64,
    /// Power per Gbit/s of throughput.
    pub w_per_gbps: f64,
    /// Power per million packets per second.
    pub w_per_mpps: f64,
    /// Fraction of power drawn from the 3.3 V slot rail.
    pub frac_3v3: f64,
}

impl NicSpec {
    /// A dual-port 100 GbE adapter (ConnectX-class).
    #[must_use]
    pub fn hundred_gbe() -> Self {
        Self {
            name: "100 GbE NIC (model)",
            line_rate_gbps: 100.0,
            idle_w: 8.5,
            w_per_gbps: 0.06,
            w_per_mpps: 0.045,
            frac_3v3: 0.15,
        }
    }

    /// A 10 GbE adapter.
    #[must_use]
    pub fn ten_gbe() -> Self {
        Self {
            name: "10 GbE NIC (model)",
            line_rate_gbps: 10.0,
            idle_w: 3.2,
            w_per_gbps: 0.12,
            w_per_mpps: 0.06,
            frac_3v3: 0.25,
        }
    }
}

/// A traffic profile offered to the NIC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficLoad {
    /// Offered throughput in Gbit/s (clamped to line rate).
    pub gbps: f64,
    /// Packet size in bytes (determines the packet rate).
    pub packet_bytes: u32,
}

impl TrafficLoad {
    /// Packets per second implied by the load.
    #[must_use]
    pub fn pps(&self) -> f64 {
        self.gbps * 1e9 / 8.0 / f64::from(self.packet_bytes.max(1))
    }
}

/// The NIC model.
#[derive(Debug, Clone)]
pub struct NicModel {
    spec: NicSpec,
    load: Option<TrafficLoad>,
}

impl NicModel {
    /// Creates an idle NIC (link up).
    #[must_use]
    pub fn new(spec: NicSpec) -> Self {
        Self { spec, load: None }
    }

    /// The static spec.
    #[must_use]
    pub fn spec(&self) -> &NicSpec {
        &self.spec
    }

    /// Applies (or replaces) a traffic load.
    pub fn offer(&mut self, load: TrafficLoad) {
        self.load = Some(load);
    }

    /// Stops traffic.
    pub fn stop(&mut self) {
        self.load = None;
    }

    /// Achieved throughput in Gbit/s (offered, clamped to line rate).
    #[must_use]
    pub fn throughput_gbps(&self) -> f64 {
        self.load
            .map(|l| l.gbps.min(self.spec.line_rate_gbps))
            .unwrap_or(0.0)
    }

    /// Total power at the current load.
    #[must_use]
    pub fn power(&self) -> Watts {
        let (gbps, mpps) = match self.load {
            None => (0.0, 0.0),
            Some(load) => {
                let gbps = load.gbps.min(self.spec.line_rate_gbps);
                let scale = if load.gbps > 0.0 {
                    gbps / load.gbps
                } else {
                    0.0
                };
                (gbps, load.pps() * scale / 1e6)
            }
        };
        Watts::new(self.spec.idle_w + gbps * self.spec.w_per_gbps + mpps * self.spec.w_per_mpps)
    }
}

impl Dut for NicModel {
    fn rails(&self) -> Vec<RailId> {
        vec![RailId::Slot3V3, RailId::Slot12V]
    }

    fn rail_state(&mut self, rail: RailId, _now: SimTime) -> RailState {
        let total = self.power().value();
        let watts = match rail {
            RailId::Slot3V3 => total * self.spec.frac_3v3,
            RailId::Slot12V => total * (1.0 - self.spec.frac_3v3),
            _ => return RailState::idle(rail),
        };
        let nominal = rail.nominal().value();
        let amps_nominal = watts / nominal;
        let volts = nominal - 0.006 * amps_nominal;
        RailState {
            volts: Volts::new(volts),
            amps: Amps::new(watts / volts),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_power_is_spec_idle() {
        let nic = NicModel::new(NicSpec::hundred_gbe());
        assert_eq!(nic.power(), Watts::new(8.5));
        assert_eq!(nic.throughput_gbps(), 0.0);
    }

    #[test]
    fn small_packets_cost_more_per_gigabit() {
        let mut nic = NicModel::new(NicSpec::hundred_gbe());
        nic.offer(TrafficLoad {
            gbps: 50.0,
            packet_bytes: 1500,
        });
        let large = nic.power().value();
        nic.offer(TrafficLoad {
            gbps: 50.0,
            packet_bytes: 64,
        });
        let small = nic.power().value();
        // 64 B at 50 Gbit/s ≈ 98 Mpps vs 4 Mpps at 1500 B: ≈ +4 W of
        // descriptor/interrupt work.
        assert!(
            small > large + 3.0,
            "64 B at 50 Gbps ({small} W) should dwarf 1500 B ({large} W)"
        );
    }

    #[test]
    fn offered_load_clamps_to_line_rate() {
        let mut nic = NicModel::new(NicSpec::ten_gbe());
        nic.offer(TrafficLoad {
            gbps: 40.0,
            packet_bytes: 1500,
        });
        assert_eq!(nic.throughput_gbps(), 10.0);
        // Power reflects the achieved 10 Gbit/s, not the offered 40.
        let p = nic.power().value();
        let expect = 3.2 + 10.0 * 0.12 + (10e9 / 8.0 / 1500.0 / 1e6) * 0.06;
        assert!((p - expect).abs() < 1e-9, "p {p} expect {expect}");
    }

    #[test]
    fn rails_split_and_sum() {
        let mut nic = NicModel::new(NicSpec::hundred_gbe());
        nic.offer(TrafficLoad {
            gbps: 100.0,
            packet_bytes: 512,
        });
        let t = SimTime::ZERO;
        let p33 = nic.rail_state(RailId::Slot3V3, t).watts().value();
        let p12 = nic.rail_state(RailId::Slot12V, t).watts().value();
        let total = nic.power().value();
        assert!((p33 + p12 - total).abs() < 1e-6);
        assert!(p12 > p33);
        assert_eq!(
            nic.rail_state(RailId::UsbC, t),
            RailState::idle(RailId::UsbC)
        );
    }

    #[test]
    fn stop_returns_to_idle() {
        let mut nic = NicModel::new(NicSpec::ten_gbe());
        nic.offer(TrafficLoad {
            gbps: 5.0,
            packet_bytes: 256,
        });
        assert!(nic.power().value() > 3.2);
        nic.stop();
        assert_eq!(nic.power(), Watts::new(3.2));
    }
}
