//! A CPU package DUT: phase-marked workloads, and the cycle-stealing
//! hook the RAPL probe family charges its measurement overhead to.
//!
//! Diamond et al. ("What Is the Cost of Energy Monitoring?") show that
//! on-CPU probes perturb the workload they measure: every counter read
//! runs *on* the package, stealing cycles and inflating runtime. This
//! model makes that effect first-class and exact:
//!
//! * a [`CpuWorkload`] is a sequence of [`CpuPhase`]s, each a fixed
//!   amount of *work* (busy time at a given utilisation);
//! * [`CpuModel::steal`] freezes workload progress for the stolen span
//!   while keeping the package busy, so **runtime inflation equals
//!   stolen time to the nanosecond** — the invariant the `probes` sim
//!   scenario and the `overhead` bench experiment both check;
//! * a short piecewise-constant power history backs
//!   [`CpuModel::energy_at`], letting probes quantise energy at their
//!   own hardware update tick (≤ [`ENERGY_HISTORY`] in the past)
//!   instead of at the poll instant.
//!
//! Everything is a pure function of the call sequence on the simulated
//! clock — no wall-clock reads, no hidden randomness.

use std::collections::VecDeque;

use ps3_units::{Joules, SimDuration, SimTime, Watts};

use crate::rail::{Dut, RailId, RailState};

/// How far behind the model's cursor [`CpuModel::energy_at`] can still
/// answer exactly. Probe update intervals (≤ 1 ms) fit comfortably.
pub const ENERGY_HISTORY: SimDuration = SimDuration::from_millis(50);

/// Electrical characteristics of a CPU package.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuSpec {
    /// Model name for reports.
    pub name: &'static str,
    /// Package power at zero utilisation.
    pub idle_w: f64,
    /// Additional power at full utilisation (linear in between).
    pub dynamic_w: f64,
    /// Core count — a probe read occupies one core, so the package
    /// never drops below `1/cores` utilisation while being measured.
    pub cores: u32,
}

impl CpuSpec {
    /// A desktop-class package: 15 W idle, +65 W at full load, 8 cores
    /// (the same power curve as `ps3-pmt`'s `RaplMeter::desktop`).
    #[must_use]
    pub const fn desktop() -> Self {
        Self {
            name: "desktop-8c",
            idle_w: 15.0,
            dynamic_w: 65.0,
            cores: 8,
        }
    }

    /// A server-class package: 60 W idle, +220 W at full load.
    #[must_use]
    pub const fn server() -> Self {
        Self {
            name: "server-64c",
            idle_w: 60.0,
            dynamic_w: 220.0,
            cores: 64,
        }
    }

    /// Package power at a given utilisation.
    #[must_use]
    pub fn power(&self, util: f64) -> Watts {
        Watts::new(self.idle_w + self.dynamic_w * util)
    }

    /// Power at full utilisation — the bound probe error envelopes are
    /// scaled by.
    #[must_use]
    pub fn max_power(&self) -> Watts {
        self.power(1.0)
    }
}

/// One phase of a workload: `work` nanoseconds of progress at a fixed
/// utilisation, tagged with a marker label for trace alignment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuPhase {
    /// Marker label emitted when the phase begins.
    pub label: char,
    /// Utilisation during the phase (0–1).
    pub util: f64,
    /// Busy time the phase needs (excluding stolen time).
    pub work: SimDuration,
}

/// A phase schedule. Work is measured in *progress* time: probes
/// stealing cycles delay completion but never change the energy the
/// workload itself needs.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuWorkload {
    phases: Vec<CpuPhase>,
}

impl CpuWorkload {
    /// Builds a workload from a phase schedule.
    ///
    /// # Panics
    ///
    /// Panics if any phase has zero work or a utilisation outside
    /// `[0, 1]`.
    #[must_use]
    pub fn new(phases: Vec<CpuPhase>) -> Self {
        for p in &phases {
            assert!(!p.work.is_zero(), "phase '{}' has zero work", p.label);
            assert!(
                (0.0..=1.0).contains(&p.util),
                "phase '{}' utilisation out of range",
                p.label
            );
        }
        Self { phases }
    }

    /// The schedule.
    #[must_use]
    pub fn phases(&self) -> &[CpuPhase] {
        &self.phases
    }

    /// Runtime with zero measurement overhead: the sum of phase work.
    #[must_use]
    pub fn ideal_runtime(&self) -> SimDuration {
        self.phases.iter().map(|p| p.work).sum()
    }

    /// Energy the unperturbed workload dissipates on `spec`.
    #[must_use]
    pub fn ideal_energy(&self, spec: &CpuSpec) -> Joules {
        self.phases
            .iter()
            .map(|p| spec.power(p.util) * p.work)
            .sum()
    }
}

/// One piece of the piecewise-constant power history.
#[derive(Debug, Clone, Copy)]
struct Segment {
    /// When this power level began.
    start: SimTime,
    /// Package power over the segment.
    power_w: f64,
    /// Cumulative energy at `start`, joules.
    cum_j: f64,
}

/// The CPU package under test: advances lazily on the virtual clock,
/// integrates energy exactly over piecewise-constant power, and
/// accounts every stolen nanosecond.
pub struct CpuModel {
    spec: CpuSpec,
    phases: Vec<CpuPhase>,
    /// How far the model has been advanced.
    cursor: SimTime,
    /// End of the latest steal window (may be in the future).
    steal_until: SimTime,
    /// Index of the phase in progress.
    phase_idx: usize,
    /// Progress through the current phase.
    phase_done: SimDuration,
    /// Set when the last phase completes.
    finished_at: Option<SimTime>,
    /// All stolen time, including steals issued after completion.
    stolen_total: SimDuration,
    /// Stolen time charged while the workload was still running — the
    /// exact amount completion is delayed by.
    stolen_before_finish: SimDuration,
    /// Cumulative package energy at `cursor`, joules.
    energy_j: f64,
    /// Recent power segments backing [`Self::energy_at`].
    history: VecDeque<Segment>,
    /// `(time, label)` markers: one per phase start, `'Z'` at finish.
    transitions: Vec<(SimTime, char)>,
}

impl CpuModel {
    /// Starts `workload` on `spec` at the simulation epoch.
    #[must_use]
    pub fn new(spec: CpuSpec, workload: CpuWorkload) -> Self {
        let phases = workload.phases.clone();
        let mut transitions = Vec::with_capacity(phases.len() + 1);
        if let Some(first) = phases.first() {
            transitions.push((SimTime::ZERO, first.label));
        }
        let power_w = spec.power(phases.first().map_or(0.0, |p| p.util)).value();
        let mut history = VecDeque::new();
        history.push_back(Segment {
            start: SimTime::ZERO,
            power_w,
            cum_j: 0.0,
        });
        Self {
            spec,
            phases,
            cursor: SimTime::ZERO,
            steal_until: SimTime::ZERO,
            phase_idx: 0,
            phase_done: SimDuration::ZERO,
            finished_at: None,
            stolen_total: SimDuration::ZERO,
            stolen_before_finish: SimDuration::ZERO,
            energy_j: 0.0,
            history,
            transitions,
        }
    }

    /// The package spec.
    #[must_use]
    pub fn spec(&self) -> &CpuSpec {
        &self.spec
    }

    /// Runtime if no probe ever stole a cycle.
    #[must_use]
    pub fn ideal_runtime(&self) -> SimDuration {
        self.phases.iter().map(|p| p.work).sum()
    }

    /// Energy of the unperturbed workload.
    #[must_use]
    pub fn ideal_energy(&self) -> Joules {
        self.phases
            .iter()
            .map(|p| self.spec.power(p.util) * p.work)
            .sum()
    }

    /// When the workload finished, if the model has advanced that far.
    #[must_use]
    pub fn finished_at(&self) -> Option<SimTime> {
        self.finished_at
    }

    /// All stolen time charged so far.
    #[must_use]
    pub fn stolen_total(&self) -> SimDuration {
        self.stolen_total
    }

    /// Stolen time charged before the workload completed — equal, to
    /// the nanosecond, to the workload's runtime inflation.
    #[must_use]
    pub fn stolen_before_finish(&self) -> SimDuration {
        self.stolen_before_finish
    }

    /// Phase-start markers (`label` at phase begin, `'Z'` at finish).
    #[must_use]
    pub fn transitions(&self) -> &[(SimTime, char)] {
        &self.transitions
    }

    /// Advances the model to `now` (no-op if already there).
    pub fn advance_to(&mut self, now: SimTime) {
        while self.cursor < now {
            let (seg_end, util, working) = if self.cursor < self.steal_until {
                // Probe read in flight: workload frozen, one core busy
                // servicing the read on top of whatever the phase held.
                let util = self.phase_util().max(1.0 / f64::from(self.spec.cores));
                (now.min(self.steal_until), util, false)
            } else if let Some(ph) = self.phases.get(self.phase_idx).copied() {
                let remain = ph.work - self.phase_done;
                (now.min(self.cursor + remain), ph.util, true)
            } else {
                (now, 0.0, false)
            };
            let power_w = self.spec.power(util).value();
            self.record_segment(power_w);
            let dt = seg_end - self.cursor;
            self.energy_j += power_w * dt.as_secs_f64();
            if working {
                self.phase_done += dt;
            }
            self.cursor = seg_end;
            self.roll_phases();
        }
        self.roll_phases();
        self.prune();
    }

    /// Charges `cost` of probe time at `now`: the workload freezes for
    /// the span while the package stays busy. Back-to-back reads queue
    /// (`cost` always delays completion in full when issued before the
    /// workload finishes).
    pub fn steal(&mut self, now: SimTime, cost: SimDuration) {
        if cost.is_zero() {
            return;
        }
        self.advance_to(now);
        let base = self.cursor.max(self.steal_until);
        self.steal_until = base + cost;
        self.stolen_total += cost;
        if self.finished_at.is_none() {
            self.stolen_before_finish += cost;
        }
    }

    /// Cumulative package energy at `now` (ground truth).
    pub fn energy(&mut self, now: SimTime) -> Joules {
        self.advance_to(now);
        Joules::new(self.energy_j)
    }

    /// Cumulative energy at an instant up to [`ENERGY_HISTORY`] behind
    /// the cursor (probes quantise at their hardware update tick, which
    /// trails the poll). `None` if `t` has been pruned.
    pub fn energy_at(&mut self, t: SimTime) -> Option<Joules> {
        if t > self.cursor {
            self.advance_to(t);
        }
        let front = self.history.front()?;
        if t < front.start {
            return None;
        }
        let idx = self.history.partition_point(|s| s.start <= t);
        let seg = &self.history[idx - 1];
        let dt = (t - seg.start).as_secs_f64();
        Some(Joules::new(seg.cum_j + seg.power_w * dt))
    }

    /// Instantaneous package power at `now`.
    pub fn power(&mut self, now: SimTime) -> Watts {
        self.advance_to(now);
        self.spec.power(self.util_at_cursor())
    }

    fn phase_util(&self) -> f64 {
        self.phases.get(self.phase_idx).map_or(0.0, |p| p.util)
    }

    fn util_at_cursor(&self) -> f64 {
        if self.cursor < self.steal_until {
            self.phase_util().max(1.0 / f64::from(self.spec.cores))
        } else {
            self.phase_util()
        }
    }

    /// Completes any phases whose work is done at the cursor.
    fn roll_phases(&mut self) {
        while let Some(ph) = self.phases.get(self.phase_idx) {
            if self.phase_done < ph.work {
                break;
            }
            self.phase_idx += 1;
            self.phase_done = SimDuration::ZERO;
            match self.phases.get(self.phase_idx) {
                Some(next) => self.transitions.push((self.cursor, next.label)),
                None => {
                    self.finished_at = Some(self.cursor);
                    self.transitions.push((self.cursor, 'Z'));
                }
            }
        }
    }

    /// Opens a new history segment at the cursor unless the power level
    /// is unchanged.
    fn record_segment(&mut self, power_w: f64) {
        if let Some(last) = self.history.back() {
            if last.power_w == power_w {
                return;
            }
        }
        self.history.push_back(Segment {
            start: self.cursor,
            power_w,
            cum_j: self.energy_j,
        });
    }

    /// Drops segments that ended more than [`ENERGY_HISTORY`] ago.
    fn prune(&mut self) {
        let keep_from = self.cursor - ENERGY_HISTORY;
        while self.history.len() > 1 && self.history[1].start <= keep_from {
            self.history.pop_front();
        }
    }
}

impl Dut for CpuModel {
    fn rails(&self) -> Vec<RailId> {
        vec![RailId::Ext12V]
    }

    fn rail_state(&mut self, rail: RailId, now: SimTime) -> RailState {
        if rail != RailId::Ext12V {
            return RailState::idle(rail);
        }
        self.advance_to(now);
        let watts = self.spec.power(self.util_at_cursor());
        RailState {
            volts: RailId::Ext12V.nominal(),
            amps: watts / RailId::Ext12V.nominal(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_phase() -> CpuWorkload {
        CpuWorkload::new(vec![
            CpuPhase {
                label: 'i',
                util: 0.0,
                work: SimDuration::from_millis(10),
            },
            CpuPhase {
                label: 'c',
                util: 1.0,
                work: SimDuration::from_millis(30),
            },
            CpuPhase {
                label: 'f',
                util: 0.5,
                work: SimDuration::from_millis(20),
            },
        ])
    }

    #[test]
    fn unperturbed_run_matches_closed_form() {
        let wl = three_phase();
        let spec = CpuSpec::desktop();
        let ideal_j = wl.ideal_energy(&spec).value();
        let mut cpu = CpuModel::new(spec, wl);
        assert_eq!(cpu.ideal_runtime(), SimDuration::from_millis(60));
        cpu.advance_to(SimTime::from_micros(100_000));
        assert_eq!(cpu.finished_at(), Some(SimTime::from_micros(60_000)));
        // 10 ms @ 15 W + 30 ms @ 80 W + 20 ms @ 47.5 W, then idle.
        let after = Joules::new(ideal_j + 15.0 * 0.040).value();
        assert!((cpu.energy(SimTime::from_micros(100_000)).value() - after).abs() < 1e-9);
        let labels: Vec<char> = cpu.transitions().iter().map(|&(_, l)| l).collect();
        assert_eq!(labels, vec!['i', 'c', 'f', 'Z']);
    }

    #[test]
    fn steal_balance_is_exact_in_nanoseconds() {
        let mut cpu = CpuModel::new(CpuSpec::desktop(), three_phase());
        let ideal = cpu.ideal_runtime();
        // Steals at awkward offsets, including queued back-to-back ones.
        let mut total = SimDuration::ZERO;
        for k in 0..500u64 {
            let t = SimTime::from_nanos(k * 100_001);
            let cost = SimDuration::from_nanos(137 + (k % 7) * 31);
            cpu.steal(t, cost);
            total += cost;
        }
        cpu.advance_to(SimTime::from_micros(200_000));
        let finished = cpu.finished_at().expect("workload completes");
        assert_eq!(cpu.stolen_before_finish(), total);
        assert_eq!(finished - SimTime::ZERO, ideal + total);
    }

    #[test]
    fn steals_after_finish_do_not_count_against_runtime() {
        let mut cpu = CpuModel::new(CpuSpec::desktop(), three_phase());
        cpu.advance_to(SimTime::from_micros(80_000));
        let finished = cpu.finished_at().expect("done");
        cpu.steal(SimTime::from_micros(90_000), SimDuration::from_micros(5));
        assert_eq!(cpu.stolen_before_finish(), SimDuration::ZERO);
        assert_eq!(cpu.stolen_total(), SimDuration::from_micros(5));
        assert_eq!(cpu.finished_at(), Some(finished));
    }

    #[test]
    fn energy_at_agrees_with_incremental_integration() {
        let mut cpu = CpuModel::new(CpuSpec::desktop(), three_phase());
        cpu.steal(SimTime::from_micros(9_990), SimDuration::from_micros(25));
        cpu.advance_to(SimTime::from_micros(12_000));
        // Reference: advance a twin model directly to each query point.
        for t_us in [9_990, 10_000, 10_015, 11_000, 12_000] {
            let t = SimTime::from_micros(t_us);
            let mut twin = CpuModel::new(CpuSpec::desktop(), three_phase());
            twin.steal(SimTime::from_micros(9_990), SimDuration::from_micros(25));
            let want = twin.energy(t).value();
            let got = cpu.energy_at(t).expect("within history").value();
            assert!((got - want).abs() < 1e-12, "t={t_us}µs: {got} vs {want}");
        }
    }

    #[test]
    fn history_prunes_but_recent_queries_survive() {
        let wl = CpuWorkload::new(vec![CpuPhase {
            label: 'i',
            util: 0.0,
            work: SimDuration::from_secs(2),
        }]);
        let mut cpu = CpuModel::new(CpuSpec::desktop(), wl);
        // Steals on an idle phase bump power to one core, so each one
        // opens two history segments; prune keeps the window bounded.
        for k in 0..2_000u64 {
            cpu.steal(SimTime::from_micros(k * 500), SimDuration::from_micros(10));
        }
        let one_sec = SimTime::from_micros(1_000_000);
        cpu.advance_to(one_sec);
        assert!(
            cpu.history.len() < 300,
            "history grew: {}",
            cpu.history.len()
        );
        let recent = one_sec - SimDuration::from_millis(10);
        assert!(cpu.energy_at(recent).is_some());
        let ancient = SimTime::from_micros(10);
        assert!(cpu.energy_at(ancient).is_none(), "pruned past still served");
    }

    #[test]
    fn steal_raises_idle_package_to_one_core() {
        let wl = CpuWorkload::new(vec![CpuPhase {
            label: 'i',
            util: 0.0,
            work: SimDuration::from_millis(10),
        }]);
        let mut cpu = CpuModel::new(CpuSpec::desktop(), wl);
        cpu.steal(SimTime::from_micros(1_000), SimDuration::from_micros(100));
        let during = cpu.power(SimTime::from_micros(1_050)).value();
        assert!(
            (during - (15.0 + 65.0 / 8.0)).abs() < 1e-9,
            "during {during}"
        );
        let after = cpu.power(SimTime::from_micros(1_200)).value();
        assert!((after - 15.0).abs() < 1e-9, "after {after}");
    }

    #[test]
    fn dut_rail_reports_power_over_ext12v() {
        let mut cpu = CpuModel::new(CpuSpec::desktop(), three_phase());
        assert_eq!(cpu.rails(), vec![RailId::Ext12V]);
        let s = cpu.rail_state(RailId::Ext12V, SimTime::from_micros(20_000));
        assert!((s.watts().value() - 80.0).abs() < 1e-9);
        assert_eq!(
            cpu.rail_state(RailId::UsbC, SimTime::from_micros(20_000)),
            RailState::idle(RailId::UsbC)
        );
    }

    #[test]
    #[should_panic(expected = "utilisation out of range")]
    fn workload_rejects_bad_utilisation() {
        let _ = CpuWorkload::new(vec![CpuPhase {
            label: 'x',
            util: 1.5,
            work: SimDuration::from_millis(1),
        }]);
    }
}
