//! A PCIe GPU power model with a DVFS boost governor.
//!
//! The model reproduces the power signatures PowerSensor3 uncovers in
//! the paper's Fig 7:
//!
//! * **NVIDIA-like** (RTX 4000 Ada): on kernel launch power spikes to
//!   ~¾ of the running level, then climbs as the clock governor ramps
//!   towards boost; sequential thread-block *waves* along the grid's
//!   y-dimension produce brief power dips between phases; after the
//!   kernel ends the card takes over a second to decay back to idle.
//! * **AMD-like** (W7700): an initial spike to the power limit, a sharp
//!   drop as the governor overcorrects, a ramp back up with brief
//!   overshoot (an underdamped clock controller), then stable operation
//!   at the limit; the return to idle is much faster.
//!
//! Power follows `P = P_idle + P_dyn · util · (f/f_boost)²` — dynamic
//! power ∝ f·V² with the mild voltage scaling available in the boost
//! range — which gives the auto-tuner the clock/energy trade-off of
//! Fig 8: modest efficiency gains at modest slowdowns.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ps3_units::{Amps, SimDuration, SimTime, Volts, Watts};

use crate::rail::{Dut, RailId, RailState};

/// Governor personality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpuVendor {
    /// First-order clock ramp, slow idle decay.
    Nvidia,
    /// Underdamped power-limit controller, fast idle decay.
    Amd,
}

/// Static characteristics of a GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Marketing name (shows up in reports).
    pub name: &'static str,
    /// Governor personality.
    pub vendor: GpuVendor,
    /// Idle power in watts.
    pub idle_w: f64,
    /// Board power limit in watts.
    pub power_limit_w: f64,
    /// Dynamic power at boost clock and full utilisation, in watts
    /// (so `idle + dyn` may exceed the limit; the governor caps it).
    pub dyn_w: f64,
    /// Boost clock in MHz.
    pub boost_mhz: f64,
    /// Base clock in MHz.
    pub base_mhz: f64,
    /// Number of SMs / CUs (the synthetic workload of Fig 7 sizes its
    /// grid x-dimension to this).
    pub sm_count: u32,
    /// Peak compute at boost clock, in TFLOP/s (16-bit tensor).
    pub peak_tflops: f64,
    /// Clock ramp rate for the NVIDIA-style governor, MHz/s.
    pub ramp_mhz_per_s: f64,
    /// Idle-return time constant in seconds.
    pub idle_decay_tau_s: f64,
    /// Power the slot 3.3 V rail contributes (roughly constant).
    pub slot_3v3_w: f64,
    /// Maximum power drawn from the 12 V slot rail; the rest comes
    /// from the external connector.
    pub slot_12v_max_w: f64,
}

impl GpuSpec {
    /// An NVIDIA RTX 4000 Ada -like profile (130 W board limit).
    #[must_use]
    pub fn rtx4000_ada() -> Self {
        Self {
            name: "RTX 4000 Ada (model)",
            vendor: GpuVendor::Nvidia,
            idle_w: 18.0,
            power_limit_w: 130.0,
            dyn_w: 123.0,
            boost_mhz: 2580.0,
            base_mhz: 1500.0,
            sm_count: 48,
            peak_tflops: 96.0,
            ramp_mhz_per_s: 900.0,
            idle_decay_tau_s: 0.45,
            slot_3v3_w: 3.5,
            slot_12v_max_w: 55.0,
        }
    }

    /// An AMD W7700 -like profile (150 W board limit).
    #[must_use]
    pub fn w7700() -> Self {
        Self {
            name: "AMD W7700 (model)",
            vendor: GpuVendor::Amd,
            idle_w: 16.0,
            power_limit_w: 150.0,
            dyn_w: 160.0,
            boost_mhz: 2400.0,
            base_mhz: 1400.0,
            sm_count: 48,
            peak_tflops: 85.0,
            ramp_mhz_per_s: 1200.0,
            idle_decay_tau_s: 0.12,
            slot_3v3_w: 3.0,
            slot_12v_max_w: 55.0,
        }
    }

    /// Jetson-AGX-Orin-like integrated GPU (used by [`crate::JetsonModel`]).
    #[must_use]
    pub fn orin_igpu() -> Self {
        Self {
            name: "Jetson AGX Orin iGPU (model)",
            vendor: GpuVendor::Nvidia,
            idle_w: 9.0,
            power_limit_w: 48.0,
            dyn_w: 42.0,
            boost_mhz: 1300.0,
            base_mhz: 620.0,
            sm_count: 16,
            peak_tflops: 10.6,
            ramp_mhz_per_s: 700.0,
            idle_decay_tau_s: 0.25,
            slot_3v3_w: 0.0,
            slot_12v_max_w: 0.0,
        }
    }

    /// Steady-state power at clock `f_mhz` and utilisation `util`
    /// (before the power limit).
    #[must_use]
    pub fn power_at(&self, f_mhz: f64, util: f64) -> f64 {
        self.idle_w + self.dyn_w * util * (f_mhz / self.boost_mhz).powi(2)
    }

    /// The clock the governor settles at for utilisation `util`:
    /// boost, unless the power limit forces lower.
    #[must_use]
    pub fn sustained_clock(&self, util: f64) -> f64 {
        if util <= 0.0 {
            return self.base_mhz;
        }
        let budget = (self.power_limit_w - self.idle_w) / (self.dyn_w * util);
        self.boost_mhz * budget.sqrt().min(1.0)
    }
}

/// A kernel execution request.
///
/// The Fig 7 synthetic workload launches a 2-D grid: the x-dimension
/// covers the SMs, and the y-dimension executes as `waves` sequential
/// phases with small scheduling gaps between them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuKernel {
    /// Number of sequential thread-block waves.
    pub waves: u32,
    /// Execution time of one wave at boost clock.
    pub wave_duration: SimDuration,
    /// Scheduling gap between waves (the power dips of Fig 7a).
    pub gap: SimDuration,
    /// Power intensity of the instruction mix, 0–1 (FMA ≈ 0.9).
    pub utilization: f64,
}

impl GpuKernel {
    /// The paper's synthetic FMA workload: y-waves sized so the kernel
    /// runs roughly `total` at boost clock.
    #[must_use]
    pub fn synthetic_fma(total: SimDuration, waves: u32) -> Self {
        Self {
            waves,
            wave_duration: total / u64::from(waves.max(1)),
            gap: SimDuration::from_micros(400),
            utilization: 0.9,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Activity {
    Idle {
        /// Power when the card went idle (decays towards idle_w).
        release_w: f64,
        since: SimTime,
    },
    Wave {
        wave: u32,
        /// Remaining work in boost-clock seconds.
        remaining_boost_s: f64,
    },
    Gap {
        next_wave: u32,
        remaining: SimDuration,
    },
}

/// The dynamic GPU model. Create one, wrap it in the testbed's shared
/// DUT slot, and drive it through [`GpuModel::launch`].
#[derive(Debug)]
pub struct GpuModel {
    spec: GpuSpec,
    clock_mhz: f64,
    /// Clock velocity for the AMD second-order controller.
    clock_vel: f64,
    activity: Activity,
    pending: Option<GpuKernel>,
    current: Option<GpuKernel>,
    last_update: SimTime,
    noise: StdRng,
    noise_w: f64,
    kernels_completed: u64,
    /// AMD governor: time spent capped at the power limit since kernel
    /// launch; triggers the one-time sharp clock drop of Fig 7b.
    amd_cap_time_s: f64,
    amd_dip_done: bool,
    /// Application-locked clock (nvidia-smi -lgc style); the governor
    /// still caps it to respect the power limit.
    locked_mhz: Option<f64>,
    /// Software power-limit override (nvidia-smi -pl style), in watts.
    power_limit_override: Option<f64>,
}

/// Maximum integration step for the governor dynamics.
const MAX_STEP: SimDuration = SimDuration::from_micros(1000);

impl GpuModel {
    /// Creates an idle GPU.
    #[must_use]
    pub fn new(spec: GpuSpec, seed: u64) -> Self {
        let clock = spec.base_mhz;
        Self {
            spec,
            clock_mhz: clock,
            clock_vel: 0.0,
            activity: Activity::Idle {
                release_w: 0.0,
                since: SimTime::ZERO,
            },
            pending: None,
            current: None,
            last_update: SimTime::ZERO,
            noise: StdRng::seed_from_u64(seed),
            noise_w: 0.35,
            kernels_completed: 0,
            amd_cap_time_s: 0.0,
            amd_dip_done: false,
            locked_mhz: None,
            power_limit_override: None,
        }
    }

    /// Overrides the board power limit (power capping, as with
    /// `nvidia-smi -pl`); `None` restores the factory limit. The
    /// governor immediately retargets its sustained clock.
    ///
    /// # Panics
    ///
    /// Panics if the requested limit is below idle power (the card
    /// cannot cap below its floor).
    pub fn set_power_limit(&mut self, watts: Option<f64>) {
        if let Some(w) = watts {
            assert!(
                w > self.spec.idle_w,
                "cap {w} W below idle {} W",
                self.spec.idle_w
            );
        }
        self.power_limit_override = watts;
    }

    /// The currently effective board power limit.
    #[must_use]
    pub fn effective_power_limit(&self) -> f64 {
        self.power_limit_override
            .unwrap_or(self.spec.power_limit_w)
            .min(self.spec.power_limit_w)
    }

    /// Sustained clock under the effective (possibly capped) limit.
    fn sustained_clock_capped(&self, util: f64) -> f64 {
        if util <= 0.0 {
            return self.spec.base_mhz;
        }
        let budget = (self.effective_power_limit() - self.spec.idle_w) / (self.spec.dyn_w * util);
        self.spec.boost_mhz * budget.max(0.0).sqrt().min(1.0)
    }

    /// Locks the application clock (as auto-tuners do with
    /// `nvidia-smi -lgc`); `None` restores governor control. A locked
    /// clock is still lowered when the power limit demands it.
    pub fn set_locked_clock(&mut self, mhz: Option<f64>) {
        self.locked_mhz = mhz;
        if let Some(f) = mhz {
            // Clock switches take effect almost immediately.
            self.clock_mhz = f.min(self.spec.boost_mhz);
            self.clock_vel = 0.0;
        }
    }

    /// The static spec.
    #[must_use]
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Queues a kernel for execution (starts at the current model
    /// time or as soon as the running kernel finishes).
    pub fn launch(&mut self, kernel: GpuKernel) {
        if self.current.is_none() {
            self.begin(kernel);
        } else {
            self.pending = Some(kernel);
        }
    }

    fn begin(&mut self, kernel: GpuKernel) {
        self.current = Some(kernel);
        self.activity = Activity::Wave {
            wave: 0,
            remaining_boost_s: kernel.wave_duration.as_secs_f64(),
        };
        match self.spec.vendor {
            GpuVendor::Nvidia => {
                // Boost entry: start at ~87 % of the sustainable clock
                // (the Fig 7a launch spike at ~3/4 of running power),
                // then ramp the rest.
                let target = self.sustained_clock_capped(kernel.utilization);
                self.clock_mhz = self.clock_mhz.max(0.87 * target);
                self.clock_vel = 0.0;
            }
            GpuVendor::Amd => {
                // Aggressive boost entry: slam to boost clock; the
                // limiter caps the resulting spike at the board limit
                // and the underdamped controller then rings.
                self.clock_mhz = self.spec.boost_mhz;
                self.clock_vel = 0.0;
                self.amd_cap_time_s = 0.0;
                self.amd_dip_done = false;
            }
        }
    }

    /// `true` while a kernel is executing at time `now`.
    pub fn busy(&mut self, now: SimTime) -> bool {
        self.advance(now);
        self.current.is_some()
    }

    /// Number of kernels that have completed.
    #[must_use]
    pub fn kernels_completed(&self) -> u64 {
        self.kernels_completed
    }

    /// Current core clock in MHz at time `now`.
    pub fn clock_mhz(&mut self, now: SimTime) -> f64 {
        self.advance(now);
        self.clock_mhz
    }

    /// Board power at time `now` (ground truth, before any sensor).
    pub fn power(&mut self, now: SimTime) -> Watts {
        self.advance(now);
        let base = self.power_now();
        let noise = self.noise.gen_range(-1.0..1.0) * self.noise_w;
        Watts::new((base + noise).max(0.0))
    }

    /// Deterministic (noise-free) power at the current internal state.
    fn power_now(&self) -> f64 {
        match self.activity {
            Activity::Idle { release_w, since } => {
                let dt = self
                    .last_update
                    .saturating_duration_since(since)
                    .as_secs_f64();
                let excess = (release_w - self.spec.idle_w).max(0.0);
                self.spec.idle_w + excess * (-dt / self.spec.idle_decay_tau_s).exp()
            }
            Activity::Wave { .. } => {
                let util = self.current.map_or(0.0, |k| k.utilization);
                self.spec
                    .power_at(self.clock_mhz, util)
                    .min(self.effective_power_limit())
            }
            Activity::Gap { .. } => {
                // Scheduling gap: SMs drain, utilisation collapses.
                let util = self.current.map_or(0.0, |k| k.utilization) * 0.30;
                self.spec
                    .power_at(self.clock_mhz, util)
                    .min(self.effective_power_limit())
            }
        }
    }

    fn advance(&mut self, now: SimTime) {
        while self.last_update < now {
            let dt = (now - self.last_update).min(MAX_STEP);
            self.step(dt);
            self.last_update += dt;
        }
    }

    fn step(&mut self, dt: SimDuration) {
        let dt_s = dt.as_secs_f64();
        // --- workload progress ---
        match &mut self.activity {
            Activity::Idle { .. } => {}
            Activity::Wave {
                wave,
                remaining_boost_s,
            } => {
                let rate = self.clock_mhz / self.spec.boost_mhz;
                *remaining_boost_s -= dt_s * rate;
                if *remaining_boost_s <= 0.0 {
                    let kernel = self.current.expect("wave implies kernel");
                    let next = *wave + 1;
                    if next < kernel.waves {
                        self.activity = Activity::Gap {
                            next_wave: next,
                            remaining: kernel.gap,
                        };
                    } else {
                        self.kernels_completed += 1;
                        let release = self.power_now();
                        self.current = None;
                        self.activity = Activity::Idle {
                            release_w: release,
                            since: self.last_update,
                        };
                        if let Some(next_kernel) = self.pending.take() {
                            self.begin(next_kernel);
                        }
                    }
                }
            }
            Activity::Gap {
                next_wave,
                remaining,
            } => {
                if *remaining > dt {
                    *remaining -= dt;
                } else {
                    let kernel = self.current.expect("gap implies kernel");
                    self.activity = Activity::Wave {
                        wave: *next_wave,
                        remaining_boost_s: kernel.wave_duration.as_secs_f64(),
                    };
                }
            }
        }

        // --- clock governor ---
        let util = self.current.map_or(0.0, |k| k.utilization);
        if let Some(locked) = self.locked_mhz {
            // Locked clocks bypass the boost dynamics but still respect
            // the power limit.
            let cap = self.sustained_clock_capped(util.max(1e-6));
            self.clock_mhz =
                locked
                    .min(self.spec.boost_mhz)
                    .min(if util > 0.0 { cap } else { f64::INFINITY });
            self.clock_vel = 0.0;
            return;
        }
        match self.spec.vendor {
            GpuVendor::Nvidia => {
                let target = if self.current.is_some() {
                    self.sustained_clock_capped(util)
                } else {
                    self.spec.base_mhz
                };
                let max_delta = self.spec.ramp_mhz_per_s * dt_s;
                let delta = (target - self.clock_mhz).clamp(-8.0 * max_delta, max_delta);
                self.clock_mhz += delta;
            }
            GpuVendor::Amd => {
                let target = if self.current.is_some() {
                    self.sustained_clock_capped(util)
                } else {
                    self.spec.base_mhz
                };
                // Firmware limiter: after ~25 ms capped at the board
                // limit, the governor slams the clock down hard once —
                // the sharp drop after the launch spike in Fig 7b.
                if self.current.is_some() && !self.amd_dip_done {
                    let uncapped = self.spec.power_at(self.clock_mhz, util);
                    if uncapped >= self.effective_power_limit() {
                        self.amd_cap_time_s += dt_s;
                        if self.amd_cap_time_s > 0.025 {
                            self.clock_mhz = 0.72 * target;
                            self.clock_vel = 0.0;
                            self.amd_dip_done = true;
                        }
                    }
                }
                // Underdamped second-order tracking: ζ≈0.3, ω≈30 rad/s.
                let omega = 30.0;
                let zeta = 0.30;
                let acc =
                    omega * omega * (target - self.clock_mhz) - 2.0 * zeta * omega * self.clock_vel;
                self.clock_vel += acc * dt_s;
                self.clock_mhz += self.clock_vel * dt_s;
                self.clock_mhz = self
                    .clock_mhz
                    .clamp(0.3 * self.spec.base_mhz, self.spec.boost_mhz);
            }
        }
    }

    /// Splits total power across the three PCIe rails.
    fn rail_power(&self, total: f64, rail: RailId) -> f64 {
        let slot33 = (self.spec.slot_3v3_w + 0.015 * total).min(9.0).min(total);
        let rest = total - slot33;
        let slot12 = (0.45 * rest).min(self.spec.slot_12v_max_w);
        let ext = rest - slot12;
        match rail {
            RailId::Slot3V3 => slot33,
            RailId::Slot12V => slot12,
            RailId::Ext12V => ext,
            RailId::UsbC => 0.0,
        }
    }
}

impl Dut for GpuModel {
    fn rails(&self) -> Vec<RailId> {
        vec![RailId::Slot3V3, RailId::Slot12V, RailId::Ext12V]
    }

    fn rail_state(&mut self, rail: RailId, now: SimTime) -> RailState {
        if rail == RailId::UsbC {
            return RailState::idle(rail);
        }
        let total = self.power(now).value();
        let watts = self.rail_power(total, rail);
        let nominal = rail.nominal().value();
        // Supply droop: ~8 mΩ effective per rail.
        let amps_nominal = watts / nominal;
        let volts = nominal - 0.008 * amps_nominal;
        RailState {
            volts: Volts::new(volts),
            amps: Amps::new(watts / volts),
        }
    }
}

/// Convenience wrapper for sharing a GPU between the testbed sampler
/// and experiment code.
#[derive(Debug, Clone)]
pub struct GpuHandle(std::sync::Arc<parking_lot::Mutex<GpuModel>>);

impl GpuHandle {
    /// Wraps a model.
    #[must_use]
    pub fn new(model: GpuModel) -> Self {
        Self(std::sync::Arc::new(parking_lot::Mutex::new(model)))
    }

    /// The shared model.
    #[must_use]
    pub fn inner(&self) -> std::sync::Arc<parking_lot::Mutex<GpuModel>> {
        std::sync::Arc::clone(&self.0)
    }

    /// Launches a kernel.
    pub fn launch(&self, kernel: GpuKernel) {
        self.0.lock().launch(kernel);
    }

    /// Busy check at `now`.
    pub fn busy(&self, now: SimTime) -> bool {
        self.0.lock().busy(now)
    }

    /// Ground-truth power at `now`.
    pub fn power(&self, now: SimTime) -> Watts {
        self.0.lock().power(now)
    }

    /// Kernels completed so far.
    #[must_use]
    pub fn kernels_completed(&self) -> u64 {
        self.0.lock().kernels_completed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(gpu: &mut GpuModel, t_ms: u64) -> f64 {
        gpu.power(SimTime::from_micros(t_ms * 1000)).value()
    }

    #[test]
    fn idle_gpu_sits_at_idle_power() {
        let mut gpu = GpuModel::new(GpuSpec::rtx4000_ada(), 1);
        for t in [1u64, 100, 1000] {
            let p = probe(&mut gpu, t);
            assert!((p - 18.0).abs() < 1.5, "p={p} at {t}ms");
        }
    }

    #[test]
    fn nvidia_ramps_from_launch_spike_to_steady() {
        let mut gpu = GpuModel::new(GpuSpec::rtx4000_ada(), 2);
        gpu.advance(SimTime::from_micros(10_000));
        gpu.launch(GpuKernel::synthetic_fma(SimDuration::from_secs(2), 8));
        let early = probe(&mut gpu, 15); // few ms in
        let late = probe(&mut gpu, 700); // after the ramp
        assert!(early > 80.0, "launch spike {early}");
        assert!(late > early + 10.0, "ramp: early {early}, late {late}");
        assert!(late < 131.0, "below power limit, got {late}");
    }

    #[test]
    fn nvidia_decays_slowly_after_kernel() {
        let mut gpu = GpuModel::new(GpuSpec::rtx4000_ada(), 3);
        gpu.launch(GpuKernel::synthetic_fma(SimDuration::from_millis(500), 4));
        // The kernel (500 ms of boost-clock work + ramp) ends ~550 ms in;
        // afterwards power decays with τ ≈ 0.45 s.
        assert!(!gpu.busy(SimTime::from_micros(600_000)), "kernel done");
        let p_soon = probe(&mut gpu, 700);
        let p_later = probe(&mut gpu, 1600);
        assert!(p_soon > 60.0, "still elevated shortly after: {p_soon}");
        assert!(p_later < p_soon - 20.0, "decaying: {p_soon} -> {p_later}");
        assert!((probe(&mut gpu, 4000) - 18.0).abs() < 3.0, "back to idle");
    }

    #[test]
    fn amd_spikes_to_limit_then_drops_then_recovers() {
        let mut gpu = GpuModel::new(GpuSpec::w7700(), 4);
        gpu.advance(SimTime::from_micros(1000));
        gpu.launch(GpuKernel {
            waves: 1,
            wave_duration: SimDuration::from_secs(2),
            gap: SimDuration::ZERO,
            utilization: 1.0,
        });
        let spike = probe(&mut gpu, 3);
        assert!(spike > 145.0, "initial spike to limit, got {spike}");
        // The controller overcorrects: find the trough within 150 ms.
        let mut trough = f64::INFINITY;
        for t in 10..150u64 {
            trough = trough.min(probe(&mut gpu, t));
        }
        assert!(trough < 120.0, "sharp drop, trough {trough}");
        // Then stabilises at the limit.
        let settled = probe(&mut gpu, 1500);
        assert!((settled - 150.0).abs() < 6.0, "settled {settled}");
    }

    #[test]
    fn wave_gaps_produce_power_dips() {
        let mut gpu = GpuModel::new(GpuSpec::rtx4000_ada(), 5);
        gpu.launch(GpuKernel {
            waves: 10,
            wave_duration: SimDuration::from_millis(20),
            gap: SimDuration::from_micros(500),
            utilization: 0.9,
        });
        // Sample densely and look for dips below 70% of the plateau.
        let mut powers = Vec::new();
        for t_us in (150_000..220_000u64).step_by(100) {
            powers.push(gpu.power(SimTime::from_micros(t_us)).value());
        }
        let max = powers.iter().cloned().fold(0.0, f64::max);
        let min = powers.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(min < 0.7 * max, "dips visible: max {max}, min {min}");
    }

    #[test]
    fn kernel_completion_counted_and_pending_runs() {
        let mut gpu = GpuModel::new(GpuSpec::w7700(), 6);
        let k = GpuKernel::synthetic_fma(SimDuration::from_millis(50), 2);
        gpu.launch(k);
        gpu.launch(k); // queued
        assert!(gpu.busy(SimTime::from_micros(10_000)));
        // Both kernels take ~100 ms+ramp; by 500 ms all done.
        assert!(!gpu.busy(SimTime::from_micros(500_000)));
        assert_eq!(gpu.kernels_completed(), 2);
    }

    #[test]
    fn rail_split_conserves_power() {
        let mut gpu = GpuModel::new(GpuSpec::rtx4000_ada(), 7);
        gpu.launch(GpuKernel::synthetic_fma(SimDuration::from_secs(1), 4));
        let t = SimTime::from_micros(400_000);
        let total = gpu.power(t).value();
        let sum: f64 = [RailId::Slot3V3, RailId::Slot12V, RailId::Ext12V]
            .into_iter()
            .map(|r| gpu.rail_state(r, t).watts().value())
            .sum();
        // Rail noise differs per call; allow a few watts of slack.
        assert!((sum - total).abs() < 4.0, "total {total} vs rails {sum}");
    }

    #[test]
    fn power_cap_throttles_clock_and_power() {
        let mut gpu = GpuModel::new(GpuSpec::rtx4000_ada(), 8);
        gpu.set_power_limit(Some(90.0));
        gpu.launch(GpuKernel::synthetic_fma(SimDuration::from_secs(4), 4));
        let t = SimTime::from_micros(1_500_000);
        let p = gpu.power(t).value();
        assert!(p <= 91.5, "capped power {p}");
        assert!(p > 80.0, "still working near the cap: {p}");
        let clock = gpu.clock_mhz(t);
        assert!(
            clock < 0.95 * GpuSpec::rtx4000_ada().boost_mhz,
            "clock throttled: {clock}"
        );
        // Lifting the cap restores full power.
        gpu.set_power_limit(None);
        let p = gpu.power(SimTime::from_micros(3_000_000)).value();
        assert!(p > 120.0, "restored {p}");
    }

    #[test]
    #[should_panic(expected = "below idle")]
    fn cap_below_idle_panics() {
        let mut gpu = GpuModel::new(GpuSpec::rtx4000_ada(), 9);
        gpu.set_power_limit(Some(5.0));
    }

    #[test]
    fn sustained_clock_respects_power_limit() {
        let spec = GpuSpec::w7700();
        // At full utilisation, dyn 160 W > limit headroom 134 W: clamped.
        let f = spec.sustained_clock(1.0);
        assert!(f < spec.boost_mhz);
        let p = spec.power_at(f, 1.0);
        assert!((p - spec.power_limit_w).abs() < 1.0, "p={p}");
        // At low utilisation the boost clock is sustainable.
        assert_eq!(spec.sustained_clock(0.2), spec.boost_mhz);
    }
}
