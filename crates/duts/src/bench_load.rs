//! The accuracy-assessment bench (paper Fig 3): a laboratory power
//! supply feeding a programmable electronic load through the sensor
//! under test.

use ps3_units::{Amps, SimTime, Volts};

use crate::rail::{Dut, RailId, RailState};

/// A Keysight-N6705B-like laboratory power supply: a stiff voltage
/// source with a small series resistance (cable + shunt losses cause
/// measurable droop under load, which is why the real sensor has a
/// remote-sense input).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabPsu {
    /// Programmed output voltage.
    pub setpoint: Volts,
    /// Effective source resistance in ohms.
    pub source_resistance: f64,
}

impl LabPsu {
    /// A 12 V bench supply with 10 mΩ source resistance.
    #[must_use]
    pub fn twelve_volt() -> Self {
        Self {
            setpoint: Volts::new(12.0),
            source_resistance: 0.010,
        }
    }

    /// A 3.3 V bench supply.
    #[must_use]
    pub fn three_volt_three() -> Self {
        Self {
            setpoint: Volts::new(3.3),
            source_resistance: 0.005,
        }
    }

    /// A 20 V supply (USB-PD bench configuration).
    #[must_use]
    pub fn twenty_volt() -> Self {
        Self {
            setpoint: Volts::new(20.0),
            source_resistance: 0.015,
        }
    }

    /// Terminal voltage when sourcing `amps`.
    #[must_use]
    pub fn terminal_voltage(&self, amps: Amps) -> Volts {
        self.setpoint - Volts::new(self.source_resistance * amps.value())
    }
}

/// The load current program of the electronic load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadProgram {
    /// Constant current (positive or negative — the Fig 4 sweep runs
    /// −10 A…+10 A through a bidirectional sensor).
    Constant(Amps),
    /// Square-wave modulation between `low` and `high` at `frequency`
    /// (Fig 5 uses 3.3 A ↔ 8 A at 100 Hz).
    SquareWave {
        /// Low-phase current.
        low: Amps,
        /// High-phase current.
        high: Amps,
        /// Modulation frequency in Hz.
        frequency_hz: f64,
    },
}

/// A Kniel-E.Last-like programmable electronic load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElectronicLoad {
    program: LoadProgram,
    /// Slew rate limit in amps per second (real loads cannot step
    /// instantaneously; 8 A steps settle in a few µs).
    slew_a_per_s: f64,
}

impl ElectronicLoad {
    /// A load running `program` with a realistic 2 A/µs slew limit.
    #[must_use]
    pub fn new(program: LoadProgram) -> Self {
        Self {
            program,
            slew_a_per_s: 2e6,
        }
    }

    /// Reprograms the load.
    pub fn set_program(&mut self, program: LoadProgram) {
        self.program = program;
    }

    /// The commanded current at time `now` (before slew limiting; the
    /// slew transition is ≪ one ADC conversion so we fold it into the
    /// sensor bandwidth model).
    #[must_use]
    pub fn current_at(&self, now: SimTime) -> Amps {
        match self.program {
            LoadProgram::Constant(a) => a,
            LoadProgram::SquareWave {
                low,
                high,
                frequency_hz,
            } => {
                let period_s = 1.0 / frequency_hz;
                let phase = (now.as_secs_f64() / period_s).fract();
                // Model the slew-limited edge as a linear ramp.
                let edge_s = (high - low).value().abs() / self.slew_a_per_s;
                let half = 0.5;
                if phase < half {
                    // High phase (starts with the rising edge).
                    let into = phase * period_s;
                    if into < edge_s {
                        low + (high - low) * (into / edge_s)
                    } else {
                        high
                    }
                } else {
                    let into = (phase - half) * period_s;
                    if into < edge_s {
                        high - (high - low) * (into / edge_s)
                    } else {
                        low
                    }
                }
            }
        }
    }
}

/// The complete Fig 3 bench: PSU + electronic load on one rail.
///
/// # Examples
///
/// ```
/// use ps3_duts::{BenchSetup, Dut, LoadProgram, RailId};
/// use ps3_units::{Amps, SimTime};
///
/// let mut bench = BenchSetup::twelve_volt(LoadProgram::Constant(Amps::new(8.0)));
/// let s = bench.rail_state(RailId::Ext12V, SimTime::ZERO);
/// assert!((s.amps.value() - 8.0).abs() < 1e-12);
/// assert!(s.volts.value() < 12.0); // droop under load
/// ```
#[derive(Debug, Clone)]
pub struct BenchSetup {
    psu: LabPsu,
    load: ElectronicLoad,
    rail: RailId,
}

impl BenchSetup {
    /// A 12 V bench on the external PCIe rail.
    #[must_use]
    pub fn twelve_volt(program: LoadProgram) -> Self {
        Self {
            psu: LabPsu::twelve_volt(),
            load: ElectronicLoad::new(program),
            rail: RailId::Ext12V,
        }
    }

    /// A 3.3 V bench on the slot rail.
    #[must_use]
    pub fn three_volt_three(program: LoadProgram) -> Self {
        Self {
            psu: LabPsu::three_volt_three(),
            load: ElectronicLoad::new(program),
            rail: RailId::Slot3V3,
        }
    }

    /// A 20 V bench on the USB-C rail.
    #[must_use]
    pub fn twenty_volt(program: LoadProgram) -> Self {
        Self {
            psu: LabPsu::twenty_volt(),
            load: ElectronicLoad::new(program),
            rail: RailId::UsbC,
        }
    }

    /// A custom PSU/load/rail combination.
    #[must_use]
    pub fn custom(psu: LabPsu, load: ElectronicLoad, rail: RailId) -> Self {
        Self { psu, load, rail }
    }

    /// Reprograms the electronic load.
    pub fn set_program(&mut self, program: LoadProgram) {
        self.load.set_program(program);
    }

    /// Ground-truth rail state at `now` — what the reference meters of
    /// Fig 3 (Fluke DMMs) would read.
    #[must_use]
    pub fn reference(&self, now: SimTime) -> RailState {
        let amps = self.load.current_at(now);
        RailState {
            volts: self.psu.terminal_voltage(amps),
            amps,
        }
    }
}

impl Dut for BenchSetup {
    fn rails(&self) -> Vec<RailId> {
        vec![self.rail]
    }

    fn rail_state(&mut self, rail: RailId, now: SimTime) -> RailState {
        if rail == self.rail {
            self.reference(now)
        } else {
            RailState::idle(rail)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn psu_droop_is_linear() {
        let psu = LabPsu::twelve_volt();
        assert_eq!(psu.terminal_voltage(Amps::zero()).value(), 12.0);
        let v8 = psu.terminal_voltage(Amps::new(8.0)).value();
        assert!((v8 - 11.92).abs() < 1e-12, "got {v8}");
    }

    #[test]
    fn constant_load_is_flat() {
        let load = ElectronicLoad::new(LoadProgram::Constant(Amps::new(-5.0)));
        for us in [0u64, 13, 5_000, 1_000_000] {
            assert_eq!(load.current_at(SimTime::from_micros(us)).value(), -5.0);
        }
    }

    #[test]
    fn square_wave_alternates_at_frequency() {
        let load = ElectronicLoad::new(LoadProgram::SquareWave {
            low: Amps::new(3.3),
            high: Amps::new(8.0),
            frequency_hz: 100.0,
        });
        // 100 Hz → 10 ms period: high during [0,5) ms, low during [5,10).
        let high = load.current_at(SimTime::from_micros(2_000)).value();
        let low = load.current_at(SimTime::from_micros(7_000)).value();
        assert_eq!(high, 8.0);
        assert_eq!(low, 3.3);
    }

    #[test]
    fn square_wave_edge_is_slew_limited() {
        let load = ElectronicLoad::new(LoadProgram::SquareWave {
            low: Amps::new(3.3),
            high: Amps::new(8.0),
            frequency_hz: 100.0,
        });
        // The rising edge spans (8-3.3)/2e6 s ≈ 2.35 µs from period start.
        let mid_edge = load.current_at(SimTime::from_nanos(1_175)).value();
        assert!(mid_edge > 3.3 && mid_edge < 8.0, "got {mid_edge}");
    }

    #[test]
    fn bench_reference_matches_rail_state() {
        let mut bench = BenchSetup::three_volt_three(LoadProgram::Constant(Amps::new(4.0)));
        let t = SimTime::from_micros(123);
        assert_eq!(bench.reference(t), bench.rail_state(RailId::Slot3V3, t));
    }

    #[test]
    fn negative_current_supported() {
        let mut bench = BenchSetup::twelve_volt(LoadProgram::Constant(Amps::new(-10.0)));
        let s = bench.rail_state(RailId::Ext12V, SimTime::ZERO);
        assert_eq!(s.amps.value(), -10.0);
        // Sinking current raises the terminal voltage slightly.
        assert!(s.volts.value() > 12.0);
    }
}
