//! The DUT abstraction: power rails sampled on the virtual clock.

use std::sync::Arc;

use parking_lot::Mutex;

use ps3_units::{Amps, SimTime, Volts, Watts};

/// Identifies one power path into a device (§II: PCIe devices draw
/// power from several sources that must each be measured).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RailId {
    /// PCIe slot 3.3 V rail (≤ 10 W).
    Slot3V3,
    /// PCIe slot 12 V rail (≤ 65 W).
    Slot12V,
    /// External PCIe power connector (8-pin, 12 V).
    Ext12V,
    /// USB-C power input (SoC boards).
    UsbC,
}

impl RailId {
    /// Nominal rail voltage.
    #[must_use]
    pub fn nominal(self) -> Volts {
        match self {
            RailId::Slot3V3 => Volts::new(3.3),
            RailId::Slot12V | RailId::Ext12V => Volts::new(12.0),
            RailId::UsbC => Volts::new(20.0),
        }
    }
}

/// Instantaneous electrical state of one rail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RailState {
    /// Rail voltage at the measurement point.
    pub volts: Volts,
    /// Current drawn by the device.
    pub amps: Amps,
}

impl RailState {
    /// A rail carrying no current at its nominal voltage.
    #[must_use]
    pub fn idle(rail: RailId) -> Self {
        Self {
            volts: rail.nominal(),
            amps: Amps::zero(),
        }
    }

    /// Power delivered over this rail.
    #[must_use]
    pub fn watts(&self) -> Watts {
        self.volts * self.amps
    }
}

/// A device under test: reports rail states as simulated time advances.
///
/// Implementations evolve internal state lazily up to `now` — the ADC
/// samples rails at exact conversion instants, tens of microseconds
/// apart, and expects time to move monotonically forward.
pub trait Dut: Send {
    /// The rails this device draws power from.
    fn rails(&self) -> Vec<RailId>;

    /// Voltage and current on `rail` at time `now`.
    ///
    /// Querying a rail the device does not use returns that rail idle.
    fn rail_state(&mut self, rail: RailId, now: SimTime) -> RailState;

    /// Total power across all rails at `now` (ground truth for
    /// accuracy comparisons).
    fn total_power(&mut self, now: SimTime) -> Watts {
        self.rails()
            .into_iter()
            .map(|r| self.rail_state(r, now).watts())
            .sum()
    }
}

/// A [`Dut`] shared between the device thread (sampling) and the
/// experiment code (driving workloads).
pub type SharedDut = Arc<Mutex<dyn Dut>>;

/// The simplest possible DUT: fixed voltage and current on one rail.
///
/// # Examples
///
/// ```
/// use ps3_duts::{ConstantDut, Dut, RailId};
/// use ps3_units::{Amps, SimTime, Volts};
///
/// let mut dut = ConstantDut::new(RailId::Slot12V, Volts::new(12.0), Amps::new(2.0));
/// let s = dut.rail_state(RailId::Slot12V, SimTime::ZERO);
/// assert_eq!(s.watts().value(), 24.0);
/// ```
#[derive(Debug, Clone)]
pub struct ConstantDut {
    rail: RailId,
    state: RailState,
}

impl ConstantDut {
    /// Creates a constant load on `rail`.
    #[must_use]
    pub fn new(rail: RailId, volts: Volts, amps: Amps) -> Self {
        Self {
            rail,
            state: RailState { volts, amps },
        }
    }

    /// Changes the constant current.
    pub fn set_amps(&mut self, amps: Amps) {
        self.state.amps = amps;
    }
}

impl Dut for ConstantDut {
    fn rails(&self) -> Vec<RailId> {
        vec![self.rail]
    }

    fn rail_state(&mut self, rail: RailId, _now: SimTime) -> RailState {
        if rail == self.rail {
            self.state
        } else {
            RailState::idle(rail)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_voltages() {
        assert_eq!(RailId::Slot3V3.nominal().value(), 3.3);
        assert_eq!(RailId::Slot12V.nominal().value(), 12.0);
        assert_eq!(RailId::Ext12V.nominal().value(), 12.0);
        assert_eq!(RailId::UsbC.nominal().value(), 20.0);
    }

    #[test]
    fn idle_rail_has_no_power() {
        let s = RailState::idle(RailId::Slot12V);
        assert_eq!(s.watts(), Watts::zero());
        assert_eq!(s.volts, Volts::new(12.0));
    }

    #[test]
    fn constant_dut_other_rails_idle() {
        let mut dut = ConstantDut::new(RailId::UsbC, Volts::new(20.0), Amps::new(1.0));
        assert_eq!(
            dut.rail_state(RailId::Slot12V, SimTime::ZERO),
            RailState::idle(RailId::Slot12V)
        );
        assert_eq!(dut.total_power(SimTime::ZERO), Watts::new(20.0));
    }

    #[test]
    fn constant_dut_is_object_safe_and_send() {
        fn takes_dut(_d: Box<dyn Dut>) {}
        takes_dut(Box::new(ConstantDut::new(
            RailId::Slot3V3,
            Volts::new(3.3),
            Amps::zero(),
        )));
    }
}
