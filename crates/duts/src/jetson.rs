//! NVIDIA-Jetson-like SoC board on a USB-C supply (§V-B).
//!
//! The AGX Orin development kit pairs the SoC *module* with a *carrier
//! board*; the built-in INA-style sensor only sees the module, while
//! PowerSensor3 on the USB-C input sees the whole device — one of the
//! paper's selling points. The GPU inside the module reuses
//! [`GpuModel`] with an Orin-ish spec.

use std::sync::Arc;

use parking_lot::Mutex;

use ps3_units::{Amps, SimDuration, SimTime, Volts, Watts};

use crate::gpu::{GpuKernel, GpuModel, GpuSpec};
use crate::onboard::{OnboardReading, OnboardSensor};
use crate::rail::{Dut, RailId, RailState};

/// Static characteristics of the SoC board.
#[derive(Debug, Clone, PartialEq)]
pub struct JetsonSpec {
    /// The integrated GPU profile.
    pub igpu: GpuSpec,
    /// Constant carrier-board power (regulators, USB hub, display
    /// controller) that the built-in sensor does not see.
    pub carrier_w: f64,
    /// CPU-complex idle power inside the module.
    pub cpu_idle_w: f64,
    /// Additional CPU power at full utilisation (all cores busy).
    pub cpu_dyn_w: f64,
    /// USB-C supply voltage (USB-PD contract).
    pub supply: Volts,
}

impl JetsonSpec {
    /// An AGX-Orin-like development kit on a 20 V USB-PD contract.
    #[must_use]
    pub fn agx_orin() -> Self {
        Self {
            igpu: GpuSpec::orin_igpu(),
            carrier_w: 4.5,
            cpu_idle_w: 3.0,
            cpu_dyn_w: 14.0,
            supply: Volts::new(20.0),
        }
    }
}

/// The SoC board model: module (CPU + iGPU) plus carrier board on one
/// USB-C rail.
#[derive(Debug)]
pub struct JetsonModel {
    spec: JetsonSpec,
    gpu: Arc<Mutex<GpuModel>>,
    cpu_util: f64,
}

impl JetsonModel {
    /// Creates an idle board.
    #[must_use]
    pub fn new(spec: JetsonSpec, seed: u64) -> Self {
        let gpu = GpuModel::new(spec.igpu.clone(), seed);
        Self {
            spec,
            gpu: Arc::new(Mutex::new(gpu)),
            cpu_util: 0.0,
        }
    }

    /// Sets the CPU-complex utilisation (0–1); the Orin's twelve
    /// Cortex cores add up to `cpu_dyn_w` at full load.
    ///
    /// # Panics
    ///
    /// Panics if `util` is outside `[0, 1]`.
    pub fn set_cpu_load(&mut self, util: f64) {
        assert!((0.0..=1.0).contains(&util), "utilisation out of range");
        self.cpu_util = util;
    }

    /// The static spec.
    #[must_use]
    pub fn spec(&self) -> &JetsonSpec {
        &self.spec
    }

    /// Shared handle to the integrated GPU (for launching kernels and
    /// for the built-in sensor).
    #[must_use]
    pub fn gpu(&self) -> Arc<Mutex<GpuModel>> {
        Arc::clone(&self.gpu)
    }

    /// Launches a kernel on the integrated GPU.
    pub fn launch(&self, kernel: GpuKernel) {
        self.gpu.lock().launch(kernel);
    }

    /// Module power (CPU + GPU, excluding carrier) — what the built-in
    /// sensor reports.
    pub fn module_power(&self, now: SimTime) -> Watts {
        Watts::new(self.spec.cpu_idle_w + self.cpu_util * self.spec.cpu_dyn_w)
            + self.gpu.lock().power(now)
    }

    /// Total board power (module + carrier) — what PowerSensor3 on the
    /// USB-C input measures.
    pub fn board_power(&self, now: SimTime) -> Watts {
        self.module_power(now) + Watts::new(self.spec.carrier_w)
    }
}

impl Dut for JetsonModel {
    fn rails(&self) -> Vec<RailId> {
        vec![RailId::UsbC]
    }

    fn rail_state(&mut self, rail: RailId, now: SimTime) -> RailState {
        if rail != RailId::UsbC {
            return RailState::idle(rail);
        }
        let watts = self.board_power(now).value();
        let nominal = self.spec.supply.value();
        // USB-C cable resistance ≈ 120 mΩ round trip.
        let amps_nominal = watts / nominal;
        let volts = nominal - 0.12 * amps_nominal;
        RailState {
            volts: Volts::new(volts),
            amps: Amps::new(watts / volts),
        }
    }
}

/// The built-in module power sensor: ~10 Hz (the paper reports ~0.1 s
/// resolution) and blind to the carrier board.
pub struct JetsonBuiltinSensor {
    board: Arc<Mutex<JetsonModel>>,
    held: Option<OnboardReading>,
}

/// Refresh interval of the built-in sensor.
const BUILTIN_INTERVAL: SimDuration = SimDuration::from_millis(100);

impl JetsonBuiltinSensor {
    /// Wraps a shared board model.
    #[must_use]
    pub fn new(board: Arc<Mutex<JetsonModel>>) -> Self {
        Self { board, held: None }
    }
}

impl OnboardSensor for JetsonBuiltinSensor {
    fn read(&mut self, now: SimTime) -> OnboardReading {
        let interval = BUILTIN_INTERVAL.as_nanos();
        let grid = SimTime::from_nanos((now.as_nanos() / interval) * interval);
        let due = match self.held {
            None => true,
            Some(h) => grid > h.updated_at,
        };
        if due {
            let p = self.board.lock().module_power(grid);
            self.held = Some(OnboardReading {
                updated_at: grid,
                power: p,
            });
        }
        self.held.expect("refreshed above")
    }

    fn update_interval(&self) -> SimDuration {
        BUILTIN_INTERVAL
    }

    fn name(&self) -> &'static str {
        "Jetson built-in (module only)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn board_power_includes_carrier() {
        let jetson = JetsonModel::new(JetsonSpec::agx_orin(), 3);
        let t = SimTime::from_micros(10_000);
        let module = jetson.module_power(t).value();
        let board = jetson.board_power(t).value();
        // Each probe draws fresh sampling noise (±0.35 W), so compare
        // with slack.
        assert!((board - module - 4.5).abs() < 1.5);
        // Idle board: carrier + CPU idle + GPU idle ≈ 16.5 W.
        assert!((board - 16.5).abs() < 2.0, "board {board}");
    }

    #[test]
    fn builtin_sensor_misses_carrier() {
        let board = Arc::new(Mutex::new(JetsonModel::new(JetsonSpec::agx_orin(), 4)));
        let mut builtin = JetsonBuiltinSensor::new(Arc::clone(&board));
        let t = SimTime::from_micros(200_000);
        let reading = builtin.read(t).power.value();
        let truth = board.lock().board_power(t).value();
        assert!(
            truth - reading > 4.0,
            "built-in ({reading}) should miss the ~4.5 W carrier ({truth})"
        );
    }

    #[test]
    fn kernel_raises_usbc_power() {
        let mut jetson = JetsonModel::new(JetsonSpec::agx_orin(), 5);
        let idle = jetson
            .rail_state(RailId::UsbC, SimTime::from_micros(10_000))
            .watts()
            .value();
        jetson.launch(GpuKernel::synthetic_fma(SimDuration::from_secs(1), 4));
        let busy = jetson
            .rail_state(RailId::UsbC, SimTime::from_micros(600_000))
            .watts()
            .value();
        assert!(busy > idle + 15.0, "idle {idle}, busy {busy}");
        assert!(busy < 60.0, "bounded by the Orin power budget: {busy}");
    }

    #[test]
    fn cpu_load_adds_module_power() {
        let mut jetson = JetsonModel::new(JetsonSpec::agx_orin(), 7);
        let t = SimTime::from_micros(50_000);
        let idle = jetson.module_power(t).value();
        jetson.set_cpu_load(1.0);
        let busy = jetson.module_power(t).value();
        assert!((busy - idle - 14.0).abs() < 1.5, "idle {idle}, busy {busy}");
        jetson.set_cpu_load(0.5);
        let half = jetson.module_power(t).value();
        assert!((half - idle - 7.0).abs() < 1.5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cpu_load_validated() {
        let mut jetson = JetsonModel::new(JetsonSpec::agx_orin(), 8);
        jetson.set_cpu_load(1.5);
    }

    #[test]
    fn usbc_voltage_droops_under_load() {
        let mut jetson = JetsonModel::new(JetsonSpec::agx_orin(), 6);
        jetson.launch(GpuKernel::synthetic_fma(SimDuration::from_secs(1), 2));
        let s = jetson.rail_state(RailId::UsbC, SimTime::from_micros(500_000));
        assert!(s.volts.value() < 20.0);
        assert!(s.volts.value() > 19.0);
    }
}
