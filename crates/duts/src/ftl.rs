//! A block-level flash translation layer (FTL).
//!
//! The aggregate SSD model needs a write-amplification figure for
//! GC-bound random writes; instead of a curve fit, this module
//! simulates the real mechanism: a logical-to-physical page map,
//! erase blocks with valid-page counts, an append-point, and greedy
//! garbage collection (always erase the block with the fewest valid
//! pages, relocating the rest). Write amplification then *emerges*
//! from over-provisioning and the traffic pattern, matching the
//! classical greedy-GC analysis.
//!
//! The geometry is scaled down ~1:100 from a real 1 TB drive (the WA
//! behaviour depends on ratios, not absolute capacity), keeping the
//! simulation cheap enough to run under every ADC conversion tick.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Geometry and provisioning of the simulated flash.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FtlGeometry {
    /// Number of erase blocks (including over-provisioned spare).
    pub blocks: u32,
    /// Pages per erase block.
    pub pages_per_block: u32,
    /// Fraction of physical capacity hidden from the host
    /// (over-provisioning).
    pub over_provisioning: f64,
}

impl FtlGeometry {
    /// A 980-PRO-like drive scaled down (write-amplification behaviour
    /// depends on ratios, not absolute capacity): 32 k pages in 128-page
    /// blocks. The 15 % effective spare combines the physical
    /// over-provisioning with the dynamic SLC-to-TLC reserve.
    #[must_use]
    pub fn samsung_like() -> Self {
        Self {
            blocks: 256,
            pages_per_block: 128,
            over_provisioning: 0.15,
        }
    }

    /// Total physical pages.
    #[must_use]
    pub fn physical_pages(&self) -> u64 {
        u64::from(self.blocks) * u64::from(self.pages_per_block)
    }

    /// Pages exposed to the host.
    #[must_use]
    pub fn logical_pages(&self) -> u64 {
        (self.physical_pages() as f64 * (1.0 - self.over_provisioning)) as u64
    }
}

/// Marker for an unmapped logical page.
const UNMAPPED: u32 = u32::MAX;

/// The page-mapping FTL with greedy garbage collection.
#[derive(Debug, Clone)]
pub struct Ftl {
    geometry: FtlGeometry,
    /// Logical page → physical page (or [`UNMAPPED`]).
    l2p: Vec<u32>,
    /// Physical page → logical page (or [`UNMAPPED`] when invalid).
    p2l: Vec<u32>,
    /// Valid-page count per block.
    valid: Vec<u32>,
    /// Blocks with no valid data, ready to write.
    free_blocks: Vec<u32>,
    /// Block currently being appended to.
    active_block: u32,
    /// Next page index within the active block.
    active_page: u32,
    /// Cumulative host page writes.
    host_writes: u64,
    /// Cumulative relocation (GC) page writes.
    gc_writes: u64,
    rng: StdRng,
}

impl Ftl {
    /// An empty (freshly formatted) FTL.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate geometry (fewer than 3 blocks or zero
    /// over-provisioning).
    #[must_use]
    pub fn new(geometry: FtlGeometry, seed: u64) -> Self {
        assert!(geometry.blocks >= 3, "need blocks to rotate through");
        assert!(
            geometry.over_provisioning > 0.0,
            "zero spare area deadlocks GC"
        );
        let physical = geometry.physical_pages() as usize;
        let mut free_blocks: Vec<u32> = (1..geometry.blocks).rev().collect();
        let active_block = 0;
        let _ = &mut free_blocks;
        Self {
            geometry,
            l2p: vec![UNMAPPED; geometry.logical_pages() as usize],
            p2l: vec![UNMAPPED; physical],
            valid: vec![0; geometry.blocks as usize],
            free_blocks,
            active_block,
            active_page: 0,
            host_writes: 0,
            gc_writes: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The geometry.
    #[must_use]
    pub fn geometry(&self) -> FtlGeometry {
        self.geometry
    }

    /// Host page writes so far.
    #[must_use]
    pub fn host_writes(&self) -> u64 {
        self.host_writes
    }

    /// GC relocation writes so far.
    #[must_use]
    pub fn gc_writes(&self) -> u64 {
        self.gc_writes
    }

    /// Cumulative write amplification: `(host + gc) / host`.
    #[must_use]
    pub fn write_amplification(&self) -> f64 {
        if self.host_writes == 0 {
            1.0
        } else {
            (self.host_writes + self.gc_writes) as f64 / self.host_writes as f64
        }
    }

    /// Fraction of logical pages currently holding data.
    #[must_use]
    pub fn fill(&self) -> f64 {
        let mapped = self.l2p.iter().filter(|&&p| p != UNMAPPED).count();
        mapped as f64 / self.l2p.len() as f64
    }

    /// Writes one page at a uniformly random logical address (the 4 KiB
    /// random-write workload).
    pub fn write_random_page(&mut self) {
        let lpn = self.rng.gen_range(0..self.l2p.len() as u32);
        self.write_page(lpn);
    }

    /// Writes `n` random pages (one FTL tick's worth of traffic).
    pub fn write_random_pages(&mut self, n: u32) {
        for _ in 0..n {
            self.write_random_page();
        }
    }

    /// Sequentially fills every logical page (preconditioning).
    pub fn precondition(&mut self) {
        for lpn in 0..self.l2p.len() as u32 {
            self.write_page(lpn);
        }
        // Preconditioning traffic is not part of the measured workload.
        self.host_writes = 0;
        self.gc_writes = 0;
    }

    /// Writes one logical page: invalidate the old mapping, append to
    /// the active block, garbage-collect when space runs low.
    pub fn write_page(&mut self, lpn: u32) {
        self.host_writes += 1;
        self.invalidate(lpn);
        self.append(lpn);
        // Keep a small reserve of free blocks: GC until healthy.
        while self.free_blocks.len() < 2 {
            self.collect_one();
        }
    }

    fn invalidate(&mut self, lpn: u32) {
        let ppn = self.l2p[lpn as usize];
        if ppn != UNMAPPED {
            let block = ppn / self.geometry.pages_per_block;
            self.valid[block as usize] -= 1;
            self.p2l[ppn as usize] = UNMAPPED;
            self.l2p[lpn as usize] = UNMAPPED;
        }
    }

    fn append(&mut self, lpn: u32) {
        if self.active_page == self.geometry.pages_per_block {
            let next = self
                .free_blocks
                .pop()
                .expect("reserve maintained by write_page");
            self.active_block = next;
            self.active_page = 0;
        }
        let ppn = self.active_block * self.geometry.pages_per_block + self.active_page;
        self.active_page += 1;
        self.l2p[lpn as usize] = ppn;
        self.p2l[ppn as usize] = lpn;
        self.valid[self.active_block as usize] += 1;
    }

    /// Greedy GC: erase the block with the fewest valid pages,
    /// relocating its survivors.
    fn collect_one(&mut self) {
        let victim = (0..self.geometry.blocks)
            .filter(|&b| b != self.active_block && !self.free_blocks.contains(&b))
            .min_by_key(|&b| self.valid[b as usize])
            .expect("some full block exists");
        let base = victim * self.geometry.pages_per_block;
        for i in 0..self.geometry.pages_per_block {
            let ppn = base + i;
            let lpn = self.p2l[ppn as usize];
            if lpn != UNMAPPED {
                // Relocate the still-valid page.
                self.valid[victim as usize] -= 1;
                self.p2l[ppn as usize] = UNMAPPED;
                self.gc_writes += 1;
                self.append(lpn);
            }
        }
        debug_assert_eq!(self.valid[victim as usize], 0);
        self.free_blocks.push(victim);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small geometry that keeps tests fast.
    fn small() -> FtlGeometry {
        FtlGeometry {
            blocks: 64,
            pages_per_block: 128,
            over_provisioning: 0.10,
        }
    }

    #[test]
    fn fresh_drive_writes_without_amplification() {
        let mut ftl = Ftl::new(small(), 1);
        ftl.write_random_pages(1000);
        // Plenty of free blocks: no GC yet.
        assert_eq!(ftl.write_amplification(), 1.0);
        assert_eq!(ftl.host_writes(), 1000);
    }

    #[test]
    fn precondition_fills_and_resets_counters() {
        let mut ftl = Ftl::new(small(), 2);
        ftl.precondition();
        assert!((ftl.fill() - 1.0).abs() < 1e-9);
        assert_eq!(ftl.host_writes(), 0);
        assert_eq!(ftl.write_amplification(), 1.0);
    }

    #[test]
    fn steady_state_wa_matches_greedy_theory() {
        let mut ftl = Ftl::new(small(), 3);
        ftl.precondition();
        // Several drive-writes of random traffic to reach steady state.
        let logical = ftl.geometry().logical_pages() as u32;
        ftl.write_random_pages(3 * logical);
        let wa = ftl.write_amplification();
        // Greedy GC at 10 % OP under uniform random traffic lands
        // around WA ≈ 4–6 (classical result); far from 1 and finite.
        assert!(wa > 2.5 && wa < 8.0, "WA {wa}");
    }

    #[test]
    fn more_spare_area_means_less_amplification() {
        let run = |op: f64| -> f64 {
            let mut ftl = Ftl::new(
                FtlGeometry {
                    blocks: 64,
                    pages_per_block: 128,
                    over_provisioning: op,
                },
                4,
            );
            ftl.precondition();
            let logical = ftl.geometry().logical_pages() as u32;
            ftl.write_random_pages(3 * logical);
            ftl.write_amplification()
        };
        let tight = run(0.07);
        let roomy = run(0.25);
        assert!(
            roomy < 0.7 * tight,
            "OP 25% (WA {roomy}) should beat OP 7% (WA {tight})"
        );
    }

    #[test]
    fn mapping_stays_consistent_under_load() {
        let mut ftl = Ftl::new(small(), 5);
        ftl.precondition();
        ftl.write_random_pages(10_000);
        // Every mapped logical page points to a physical page that
        // points back; valid counts agree with the mapping.
        let geometry = ftl.geometry();
        let mut per_block = vec![0u32; geometry.blocks as usize];
        let mut mapped = 0u64;
        for (lpn, &ppn) in ftl.l2p.iter().enumerate() {
            if ppn != UNMAPPED {
                assert_eq!(ftl.p2l[ppn as usize], lpn as u32, "bidirectional map");
                per_block[(ppn / geometry.pages_per_block) as usize] += 1;
                mapped += 1;
            }
        }
        assert_eq!(per_block, ftl.valid, "valid counters consistent");
        assert_eq!(mapped, geometry.logical_pages(), "full drive stays full");
    }

    #[test]
    fn sequential_overwrites_are_cheap() {
        // Overwriting the same small range invalidates whole blocks:
        // GC finds empty victims and WA stays near 1.
        let mut ftl = Ftl::new(small(), 6);
        ftl.precondition();
        for _ in 0..5 {
            for lpn in 0..1024u32 {
                ftl.write_page(lpn);
            }
        }
        let wa = ftl.write_amplification();
        assert!(wa < 3.0, "hot small range should not thrash GC: WA {wa}");
    }

    #[test]
    #[should_panic(expected = "spare")]
    fn zero_over_provisioning_rejected() {
        let _ = Ftl::new(
            FtlGeometry {
                blocks: 8,
                pages_per_block: 16,
                over_provisioning: 0.0,
            },
            0,
        );
    }
}
