//! NVMe SSD model with a flash translation layer (FTL) — the substrate
//! behind the paper's storage case study (§V-C, Fig 12).
//!
//! The interesting storage behaviour PowerSensor3 exposes is that SSD
//! *bandwidth is not indicative of power*: under sustained random
//! writes the host-visible bandwidth swings with garbage-collection
//! activity while the total NAND traffic (host writes × write
//! amplification) — and therefore power — stays roughly constant. The
//! model reproduces this with:
//!
//! * an SLC write cache that absorbs bursts at high speed and low
//!   energy per byte,
//! * a TLC backing store with bounded internal NAND bandwidth,
//! * greedy garbage collection whose write amplification depends on
//!   drive fill and over-provisioning, with stochastic "deep GC"
//!   episodes that throttle host writes (the Fig 12b variability), and
//! * a request-size-dependent read path: IOPS-limited for small
//!   requests, bandwidth-saturated for large ones (Fig 12a).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ps3_units::{Amps, SimDuration, SimTime, Volts, Watts};

use crate::ftl::{Ftl, FtlGeometry};
use crate::rail::{Dut, RailId, RailState};

/// Static characteristics of the drive.
#[derive(Debug, Clone, PartialEq)]
pub struct SsdSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Idle (active-idle) power in watts.
    pub idle_w: f64,
    /// Peak sequential read bandwidth, MB/s.
    pub max_read_mbps: f64,
    /// Request size at which read bandwidth reaches half of peak, KiB
    /// (the IOPS-limit knee).
    pub read_knee_kib: f64,
    /// Peak SLC-cache write bandwidth, MB/s.
    pub slc_write_mbps: f64,
    /// SLC cache capacity in GiB.
    pub slc_cache_gib: f64,
    /// Total internal NAND write bandwidth (TLC, incl. GC traffic),
    /// MB/s.
    pub nand_write_mbps: f64,
    /// Nominal steady-state write amplification (informational; the
    /// block-level FTL computes the actual value from its occupancy).
    pub steady_wa: f64,
    /// Read power coefficient, W per MB/s.
    pub read_w_per_mbps: f64,
    /// SLC write power coefficient, W per MB/s.
    pub slc_w_per_mbps: f64,
    /// TLC/GC write power coefficient, W per MB/s of NAND traffic.
    pub tlc_w_per_mbps: f64,
}

impl SsdSpec {
    /// A Samsung-980-PRO-1TB-like profile.
    #[must_use]
    pub fn samsung_980_pro() -> Self {
        Self {
            name: "Samsung 980 PRO 1TB (model)",
            idle_w: 1.6,
            max_read_mbps: 7000.0,
            read_knee_kib: 5.0,
            slc_write_mbps: 2500.0,
            slc_cache_gib: 6.0,
            nand_write_mbps: 1200.0,
            steady_wa: 3.0,
            read_w_per_mbps: 0.00063,
            slc_w_per_mbps: 0.0009,
            tlc_w_per_mbps: 0.0028,
        }
    }

    /// Read bandwidth for request size `block_kib` (MB/s): the classic
    /// saturation curve `B · s/(s + knee)`.
    #[must_use]
    pub fn read_bandwidth(&self, block_kib: f64) -> f64 {
        self.max_read_mbps * block_kib / (block_kib + self.read_knee_kib)
    }

    /// SLC write bandwidth for request size `block_kib` (MB/s).
    #[must_use]
    pub fn slc_bandwidth(&self, block_kib: f64) -> f64 {
        self.slc_write_mbps * block_kib / (block_kib + 2.0)
    }
}

/// The I/O pattern of a fio-like job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoPattern {
    /// Uniformly random reads of the given request size.
    RandRead {
        /// Request size in KiB.
        block_kib: u32,
    },
    /// Uniformly random writes of the given request size.
    RandWrite {
        /// Request size in KiB.
        block_kib: u32,
    },
    /// Sequential writes (used for preconditioning).
    SeqWrite {
        /// Request size in KiB.
        block_kib: u32,
    },
}

/// A fio-like job description (direct I/O, io_uring semantics assumed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FioJob {
    /// Access pattern and request size.
    pub pattern: IoPattern,
    /// Outstanding-request depth (saturating depths assumed ≥ 32).
    pub queue_depth: u32,
}

/// Running statistics of the drive.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SsdStats {
    /// Cumulative host-read bytes.
    pub host_read_bytes: u64,
    /// Cumulative host-written bytes.
    pub host_write_bytes: u64,
    /// Cumulative NAND-written bytes (host + GC relocation).
    pub nand_write_bytes: u64,
}

impl SsdStats {
    /// Observed write amplification so far.
    #[must_use]
    pub fn write_amplification(&self) -> f64 {
        if self.host_write_bytes == 0 {
            1.0
        } else {
            self.nand_write_bytes as f64 / self.host_write_bytes as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GcMode {
    /// SLC cache absorbing writes; background drain only.
    CacheBurst,
    /// Steady-state GC at baseline write amplification.
    Steady,
    /// Deep GC episode: extra relocation throttles the host.
    Deep,
}

/// The drive model. Sampled by the testbed as a [`Dut`]; driven by the
/// fio-like API ([`SsdModel::start_job`], [`SsdModel::format`],
/// [`SsdModel::precondition`]).
#[derive(Debug)]
pub struct SsdModel {
    spec: SsdSpec,
    job: Option<FioJob>,
    stats: SsdStats,
    /// SLC cache fill level in bytes.
    slc_level: f64,
    /// Fraction of logical capacity holding valid data (0 = fresh).
    fill: f64,
    gc_mode: GcMode,
    /// Remaining time in the current deep-GC episode.
    deep_remaining: SimDuration,
    /// The block-level FTL behind the write path.
    ftl: Ftl,
    /// Fractional scaled-page accumulator feeding the FTL.
    page_accum: f64,
    /// Recent write amplification, refreshed from FTL counter deltas.
    wa_recent: f64,
    /// FTL counters at the last WA refresh.
    wa_baseline: (u64, u64),
    last_update: SimTime,
    rng: StdRng,
    /// Smoothed instantaneous rates (MB/s) for power computation.
    read_rate: f64,
    slc_rate: f64,
    nand_rate: f64,
}

/// FTL bookkeeping tick.
const TICK: SimDuration = SimDuration::from_millis(10);

impl SsdModel {
    /// Creates a fresh (formatted) drive.
    #[must_use]
    pub fn new(spec: SsdSpec, seed: u64) -> Self {
        Self {
            spec,
            job: None,
            stats: SsdStats::default(),
            slc_level: 0.0,
            fill: 0.0,
            gc_mode: GcMode::CacheBurst,
            deep_remaining: SimDuration::ZERO,
            ftl: Ftl::new(FtlGeometry::samsung_like(), seed ^ 0xF71),
            page_accum: 0.0,
            wa_recent: 1.0,
            wa_baseline: (0, 0),
            last_update: SimTime::ZERO,
            rng: StdRng::seed_from_u64(seed),
            read_rate: 0.0,
            slc_rate: 0.0,
            nand_rate: 0.0,
        }
    }

    /// The static spec.
    #[must_use]
    pub fn spec(&self) -> &SsdSpec {
        &self.spec
    }

    /// NVMe format: discards everything; the FTL returns to its fresh
    /// state.
    pub fn format(&mut self) {
        self.slc_level = 0.0;
        self.fill = 0.0;
        self.gc_mode = GcMode::CacheBurst;
        self.deep_remaining = SimDuration::ZERO;
        let seed = self.rng.gen();
        self.ftl = Ftl::new(FtlGeometry::samsung_like(), seed);
        self.page_accum = 0.0;
        self.wa_recent = 1.0;
        self.wa_baseline = (0, 0);
    }

    /// Fills the drive with sequential data (the paper's 128 KiB
    /// sequential preconditioning). Modelled as an instant state
    /// change — the hours of preconditioning I/O are not interesting
    /// to simulate. The drive ends at 100 % fill with a *drained* SLC
    /// cache (sequential writes stream through and the drive idles
    /// afterwards), so a subsequent random-write workload first bursts
    /// into SLC, then descends into GC-bound steady state — the Fig 12b
    /// shape.
    pub fn precondition(&mut self) {
        self.fill = 1.0;
        self.slc_level = 0.0;
        self.gc_mode = GcMode::CacheBurst;
        self.deep_remaining = SimDuration::ZERO;
        self.ftl.precondition();
        // The paper writes randomly "until the SSD is in steady-state"
        // before the measured window; spin the FTL there.
        let logical = self.ftl.geometry().logical_pages() as u32;
        self.ftl.write_random_pages(2 * logical);
        self.refresh_wa();
    }

    /// Recomputes the recent write amplification from FTL counter
    /// deltas since the last refresh.
    fn refresh_wa(&mut self) {
        let host = self.ftl.host_writes();
        let gc = self.ftl.gc_writes();
        let dh = host - self.wa_baseline.0;
        if dh >= 512 {
            let dg = gc - self.wa_baseline.1;
            self.wa_recent = (dh + dg) as f64 / dh as f64;
            self.wa_baseline = (host, gc);
        } else if self.wa_baseline == (0, 0) && dh > 0 {
            // First samples on a fresh drive.
            self.wa_recent = (dh + gc) as f64 / dh as f64;
        }
    }

    /// The block-level FTL (inspection/diagnostics).
    #[must_use]
    pub fn ftl(&self) -> &Ftl {
        &self.ftl
    }

    /// Starts (or replaces) the active job at the model's current time.
    pub fn start_job(&mut self, job: FioJob) {
        self.job = Some(job);
    }

    /// Stops the active job.
    pub fn stop_job(&mut self) {
        self.job = None;
    }

    /// Cumulative statistics at time `now`.
    pub fn stats(&mut self, now: SimTime) -> SsdStats {
        self.advance(now);
        self.stats
    }

    /// Drive power at time `now`.
    pub fn power(&mut self, now: SimTime) -> Watts {
        self.advance(now);
        let p = self.spec.idle_w
            + self.read_rate * self.spec.read_w_per_mbps
            + self.slc_rate * self.spec.slc_w_per_mbps
            + self.nand_rate * self.spec.tlc_w_per_mbps;
        Watts::new(p)
    }

    /// Current write amplification regime.
    #[must_use]
    pub fn gc_active(&self) -> bool {
        self.gc_mode != GcMode::CacheBurst
    }

    fn advance(&mut self, now: SimTime) {
        while self.last_update < now {
            let dt = (now - self.last_update).min(TICK);
            self.tick(dt);
            self.last_update += dt;
        }
    }

    fn tick(&mut self, dt: SimDuration) {
        let dt_s = dt.as_secs_f64();
        let mut read_rate = 0.0;
        let mut slc_rate = 0.0;
        let mut nand_rate = 0.0;
        match self.job {
            None => {}
            Some(FioJob { pattern, .. }) => match pattern {
                IoPattern::RandRead { block_kib } => {
                    read_rate = self.spec.read_bandwidth(f64::from(block_kib));
                    self.stats.host_read_bytes += (read_rate * 1e6 * dt_s) as u64;
                }
                IoPattern::RandWrite { block_kib } | IoPattern::SeqWrite { block_kib } => {
                    let seq = matches!(pattern, IoPattern::SeqWrite { .. });
                    let host = self.write_tick(f64::from(block_kib), seq, dt_s);
                    slc_rate = host.0;
                    nand_rate = host.1;
                }
            },
        }
        self.read_rate = read_rate;
        self.slc_rate = slc_rate;
        self.nand_rate = nand_rate;
    }

    /// One write tick; returns (slc_rate, nand_rate) in MB/s.
    fn write_tick(&mut self, block_kib: f64, sequential: bool, dt_s: f64) -> (f64, f64) {
        let slc_cap = self.spec.slc_cache_gib * 1e9;
        // Background SLC→TLC drain always runs when there is data.
        let drain_mbps = 0.35 * self.spec.nand_write_mbps;

        // Update the GC mode state machine.
        match self.gc_mode {
            GcMode::CacheBurst => {
                if self.slc_level >= slc_cap {
                    self.gc_mode = GcMode::Steady;
                }
            }
            GcMode::Steady => {
                // Deep-GC episodes strike at random, more often on a
                // full drive: expected every ~8 s at fill 1.0.
                let p = 0.00125 * self.fill * (dt_s / 0.01);
                if self.rng.gen_bool(p.min(1.0)) {
                    self.gc_mode = GcMode::Deep;
                    self.deep_remaining = SimDuration::from_millis(self.rng.gen_range(800..3000));
                }
            }
            GcMode::Deep => {
                let dt_d = SimDuration::from_secs_f64(dt_s);
                if self.deep_remaining > dt_d {
                    self.deep_remaining -= dt_d;
                } else {
                    self.gc_mode = GcMode::Steady;
                }
            }
        }

        let (host_mbps, slc_mbps, nand_mbps) = match self.gc_mode {
            GcMode::CacheBurst => {
                let rate = self.spec.slc_bandwidth(block_kib);
                self.slc_level += (rate - drain_mbps).max(0.0) * 1e6 * dt_s;
                (rate, rate, drain_mbps)
            }
            GcMode::Steady => {
                let wa = if sequential { 1.2 } else { self.effective_wa() };
                let host = self.spec.nand_write_mbps / wa;
                // Mild jitter: GC scheduling granularity.
                let jitter = 1.0 + self.rng.gen_range(-0.08..0.08);
                (host * jitter, 0.0, self.spec.nand_write_mbps)
            }
            GcMode::Deep => {
                // Wear levelling / metadata compaction piles extra
                // relocation on top of the FTL's steady GC.
                let wa = self.effective_wa() * 1.9;
                let host = self.spec.nand_write_mbps / wa;
                let jitter = 1.0 + self.rng.gen_range(-0.15..0.15);
                (host * jitter, 0.0, self.spec.nand_write_mbps)
            }
        };

        let host_bytes = host_mbps * 1e6 * dt_s;
        self.stats.host_write_bytes += host_bytes as u64;
        self.stats.nand_write_bytes += (nand_mbps * 1e6 * dt_s) as u64;
        // Random writes onto a fresh drive slowly fill it.
        self.fill = (self.fill + host_bytes / 1e12).min(1.0);

        // Feed the block-level FTL a scaled version of the traffic
        // (same fraction of the drive overwritten per second) unless
        // this is sequential preconditioning-style I/O.
        if !sequential {
            let scale = 1e12 / (self.ftl.geometry().logical_pages() as f64 * 4096.0);
            self.page_accum += host_bytes / 4096.0 / scale;
            let whole = self.page_accum.floor();
            if whole >= 1.0 {
                self.page_accum -= whole;
                self.ftl.write_random_pages(whole as u32);
                self.refresh_wa();
            }
        }
        (slc_mbps, nand_mbps)
    }

    /// Recent write amplification as observed by the block-level FTL.
    fn effective_wa(&self) -> f64 {
        self.wa_recent.max(1.0)
    }
}

impl Dut for SsdModel {
    fn rails(&self) -> Vec<RailId> {
        vec![RailId::Slot3V3, RailId::Slot12V]
    }

    fn rail_state(&mut self, rail: RailId, now: SimTime) -> RailState {
        match rail {
            RailId::Slot3V3 => {
                // An M.2 drive on an adapter draws essentially all of
                // its power from the 3.3 V rail.
                let watts = self.power(now).value();
                let nominal = 3.3;
                let amps_nominal = watts / nominal;
                let volts = nominal - 0.004 * amps_nominal;
                RailState {
                    volts: Volts::new(volts),
                    amps: Amps::new(watts / volts),
                }
            }
            RailId::Slot12V => {
                // Adapter logic/LED only.
                RailState {
                    volts: Volts::new(12.0),
                    amps: Amps::new(0.004),
                }
            }
            other => RailState::idle(other),
        }
    }
}

/// Shared-handle convenience mirroring [`crate::GpuHandle`].
#[derive(Debug, Clone)]
pub struct SsdHandle(std::sync::Arc<parking_lot::Mutex<SsdModel>>);

impl SsdHandle {
    /// Wraps a model.
    #[must_use]
    pub fn new(model: SsdModel) -> Self {
        Self(std::sync::Arc::new(parking_lot::Mutex::new(model)))
    }

    /// The shared model.
    #[must_use]
    pub fn inner(&self) -> std::sync::Arc<parking_lot::Mutex<SsdModel>> {
        std::sync::Arc::clone(&self.0)
    }

    /// See [`SsdModel::start_job`].
    pub fn start_job(&self, job: FioJob) {
        self.0.lock().start_job(job);
    }

    /// See [`SsdModel::stop_job`].
    pub fn stop_job(&self) {
        self.0.lock().stop_job();
    }

    /// See [`SsdModel::format`].
    pub fn format(&self) {
        self.0.lock().format();
    }

    /// See [`SsdModel::precondition`].
    pub fn precondition(&self) {
        self.0.lock().precondition();
    }

    /// See [`SsdModel::stats`].
    pub fn stats(&self, now: SimTime) -> SsdStats {
        self.0.lock().stats(now)
    }

    /// See [`SsdModel::power`].
    pub fn power(&self, now: SimTime) -> Watts {
        self.0.lock().power(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive() -> SsdModel {
        SsdModel::new(SsdSpec::samsung_980_pro(), 42)
    }

    #[test]
    fn idle_power_when_no_job() {
        let mut ssd = drive();
        let p = ssd.power(SimTime::from_micros(100_000)).value();
        assert!((p - 1.6).abs() < 1e-9, "idle {p}");
    }

    #[test]
    fn read_bandwidth_saturates_with_request_size() {
        let spec = SsdSpec::samsung_980_pro();
        let b4 = spec.read_bandwidth(4.0);
        let b64 = spec.read_bandwidth(64.0);
        let b1024 = spec.read_bandwidth(1024.0);
        let b4096 = spec.read_bandwidth(4096.0);
        assert!(b4 < b64 && b64 < b1024 && b1024 < b4096);
        assert!(b4096 > 0.99 * spec.max_read_mbps);
        assert!(b4 < 0.5 * spec.max_read_mbps);
    }

    #[test]
    fn read_power_tracks_bandwidth() {
        let mut ssd = drive();
        ssd.start_job(FioJob {
            pattern: IoPattern::RandRead { block_kib: 4 },
            queue_depth: 32,
        });
        let p_small = ssd.power(SimTime::from_micros(1_000_000)).value();
        ssd.start_job(FioJob {
            pattern: IoPattern::RandRead { block_kib: 512 },
            queue_depth: 32,
        });
        let p_big = ssd.power(SimTime::from_micros(2_000_000)).value();
        assert!(p_big > p_small + 1.0, "small {p_small}, big {p_big}");
        assert!(p_big < 7.0, "bounded: {p_big}");
    }

    #[test]
    fn fresh_drive_bursts_then_descends() {
        let mut ssd = drive();
        ssd.start_job(FioJob {
            pattern: IoPattern::RandWrite { block_kib: 4 },
            queue_depth: 32,
        });
        // Burst phase: SLC cache (6 GB at ~1.6 GB/s ≈ 4 s).
        let s1 = ssd.stats(SimTime::from_micros(1_000_000));
        let burst_bw = s1.host_write_bytes as f64 / 1e6; // MB in 1 s
        assert!(burst_bw > 1000.0, "SLC burst {burst_bw} MB/s");
        assert!(!ssd.gc_active());
        // Much later: steady state, throttled by WA.
        let s2 = ssd.stats(SimTime::from_micros(30_000_000));
        let s3 = ssd.stats(SimTime::from_micros(40_000_000));
        let steady_bw = (s3.host_write_bytes - s2.host_write_bytes) as f64 / 10.0 / 1e6;
        assert!(ssd.gc_active());
        // A fresh (mostly empty) drive descends to the direct-TLC rate
        // at SLC exhaustion (its FTL has spare blocks everywhere, so
        // WA ≈ 1); a preconditioned drive falls much further (see the
        // stability test below).
        assert!(
            steady_bw < 0.75 * burst_bw,
            "steady {steady_bw} vs burst {burst_bw}"
        );
    }

    #[test]
    fn steady_write_power_is_stable_despite_bandwidth_swings() {
        let mut ssd = drive();
        ssd.precondition();
        ssd.start_job(FioJob {
            pattern: IoPattern::RandWrite { block_kib: 4 },
            queue_depth: 32,
        });
        let mut bw = Vec::new();
        let mut pw = Vec::new();
        let mut prev_bytes = ssd.stats(SimTime::from_micros(8_000_000)).host_write_bytes;
        for sec in 9..120u64 {
            let t = SimTime::from_micros(sec * 1_000_000);
            let s = ssd.stats(t);
            bw.push((s.host_write_bytes - prev_bytes) as f64 / 1e6);
            prev_bytes = s.host_write_bytes;
            pw.push(ssd.power(t).value());
        }
        let bw_stats = ps3_analysis::SampleStats::from_samples(bw.iter().copied()).unwrap();
        let pw_stats = ps3_analysis::SampleStats::from_samples(pw.iter().copied()).unwrap();
        // Bandwidth is visibly variable (GC episodes)…
        assert!(
            bw_stats.std / bw_stats.mean > 0.10,
            "bandwidth CV {}",
            bw_stats.std / bw_stats.mean
        );
        // …while power stays flat around 5 W.
        assert!(
            pw_stats.std / pw_stats.mean < 0.02,
            "power CV {}",
            pw_stats.std / pw_stats.mean
        );
        assert!((pw_stats.mean - 5.0).abs() < 0.5, "power {}", pw_stats.mean);
    }

    #[test]
    fn write_amplification_reported() {
        let mut ssd = drive();
        ssd.precondition();
        ssd.start_job(FioJob {
            pattern: IoPattern::RandWrite { block_kib: 4 },
            queue_depth: 32,
        });
        let s = ssd.stats(SimTime::from_micros(60_000_000));
        let wa = s.write_amplification();
        assert!(wa > 2.0 && wa < 6.0, "WA {wa}");
    }

    #[test]
    fn format_resets_to_burst() {
        let mut ssd = drive();
        ssd.precondition();
        // Preconditioning drains the SLC cache: writes burst first…
        assert!(!ssd.gc_active());
        ssd.start_job(FioJob {
            pattern: IoPattern::RandWrite { block_kib: 4 },
            queue_depth: 32,
        });
        // …but on a full drive GC engages once the cache is exhausted.
        let _ = ssd.stats(SimTime::from_micros(20_000_000));
        assert!(ssd.gc_active());
        ssd.format();
        assert!(!ssd.gc_active());
    }

    #[test]
    fn most_power_on_3v3_rail() {
        let mut ssd = drive();
        ssd.start_job(FioJob {
            pattern: IoPattern::RandRead { block_kib: 1024 },
            queue_depth: 32,
        });
        let t = SimTime::from_micros(1_000_000);
        let p33 = ssd.rail_state(RailId::Slot3V3, t).watts().value();
        let p12 = ssd.rail_state(RailId::Slot12V, t).watts().value();
        assert!(p33 > 5.0, "3.3 V carries the drive: {p33}");
        assert!(p12 < 0.1, "12 V is adapter-only: {p12}");
    }
}
