//! A hand-rolled Rust lexer, just deep enough for static analysis.
//!
//! Produces a token stream (identifiers, punctuation, literals,
//! lifetimes) plus the comments, which ordinary lexers throw away but
//! this tool lives on: `// SAFETY:` / `// ORDERING:` justifications
//! and `// ps3-lint: allow(...)` directives are all comment-borne.
//!
//! The lexer understands everything that can *hide* tokens from a
//! naive scanner: nested block comments, string and raw-string
//! literals (any number of `#`s), byte/char literals with escapes, and
//! the char-literal vs. lifetime ambiguity. It does not classify
//! keywords or numeric literal forms — rules match on identifier
//! spelling, which is all they need.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based source line the token starts on.
    pub line: u32,
    pub kind: TokKind,
}

/// Token classification; only as fine-grained as the rules require.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unsafe`, `Ordering`, ...).
    Ident(String),
    /// Single punctuation character; multi-char operators appear as
    /// consecutive tokens (`::` is `:`, `:`).
    Punct(char),
    /// String/char/number literal (contents irrelevant to every rule).
    Lit,
    /// `'lifetime`.
    Lifetime,
}

/// A comment, with own-line runs merged into one logical block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line of the first comment line in the block.
    pub line: u32,
    /// 1-based line the block ends on.
    pub end_line: u32,
    /// Raw text with `//`/`/*` delimiters stripped, lines joined by
    /// `\n`.
    pub text: String,
    /// `true` when code precedes the comment on its first line.
    pub trailing: bool,
}

/// Raw lex output, before [`crate::source::SourceFile`] adds the
/// per-line and scope views.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
    /// `lines_with_tokens[line]` (1-based) — line carries code.
    pub lines_with_tokens: Vec<bool>,
    /// Total line count.
    pub line_count: u32,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src`, returning tokens and merged comment blocks.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Lexed::default();
    // Raw per-line comments; merged into blocks at the end.
    let mut raw_comments: Vec<(u32, u32, String)> = Vec::new();
    let total_lines = src.lines().count().max(1) as u32;
    out.line_count = total_lines;
    let mut line_has_token = vec![false; total_lines as usize + 2];

    while let Some(b) = cur.peek() {
        let line = cur.line;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek_at(1) == Some(b'/') => {
                // Line comment: capture to end of line.
                let start = cur.pos + 2;
                while cur.peek().is_some_and(|c| c != b'\n') {
                    cur.bump();
                }
                let text = String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned();
                raw_comments.push((line, line, text));
            }
            b'/' if cur.peek_at(1) == Some(b'*') => {
                // Block comment, nesting per the Rust grammar.
                cur.bump();
                cur.bump();
                let start = cur.pos;
                let mut depth = 1u32;
                while depth > 0 {
                    match (cur.peek(), cur.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
                let end = cur.pos.saturating_sub(2).max(start);
                let text = String::from_utf8_lossy(&cur.src[start..end]).into_owned();
                raw_comments.push((line, cur.line, text));
            }
            b'r' | b'b' if starts_raw_string(&cur) => {
                skip_raw_string(&mut cur);
                out.tokens.push(Token {
                    line,
                    kind: TokKind::Lit,
                });
                mark(&mut line_has_token, line);
            }
            b'"' => {
                skip_string(&mut cur);
                out.tokens.push(Token {
                    line,
                    kind: TokKind::Lit,
                });
                mark(&mut line_has_token, line);
            }
            b'b' if cur.peek_at(1) == Some(b'\'') => {
                cur.bump();
                skip_char_literal(&mut cur);
                out.tokens.push(Token {
                    line,
                    kind: TokKind::Lit,
                });
                mark(&mut line_has_token, line);
            }
            b'\'' => {
                if is_char_literal(&cur) {
                    skip_char_literal(&mut cur);
                    out.tokens.push(Token {
                        line,
                        kind: TokKind::Lit,
                    });
                } else {
                    // Lifetime: consume the quote and the identifier.
                    cur.bump();
                    while cur.peek().is_some_and(is_ident_continue) {
                        cur.bump();
                    }
                    out.tokens.push(Token {
                        line,
                        kind: TokKind::Lifetime,
                    });
                }
                mark(&mut line_has_token, line);
            }
            _ if is_ident_start(b) => {
                let start = cur.pos;
                while cur.peek().is_some_and(is_ident_continue) {
                    cur.bump();
                }
                let text = String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned();
                out.tokens.push(Token {
                    line,
                    kind: TokKind::Ident(text),
                });
                mark(&mut line_has_token, line);
            }
            _ if b.is_ascii_digit() => {
                // Numbers, including underscores, suffixes, exponents
                // and hex/oct/bin prefixes — swallowed as one literal.
                while cur
                    .peek()
                    .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_' || c == b'.')
                {
                    // A `..` range operator after an integer is not
                    // part of the number.
                    if cur.peek() == Some(b'.') && cur.peek_at(1) == Some(b'.') {
                        break;
                    }
                    cur.bump();
                }
                out.tokens.push(Token {
                    line,
                    kind: TokKind::Lit,
                });
                mark(&mut line_has_token, line);
            }
            _ => {
                cur.bump();
                out.tokens.push(Token {
                    line,
                    kind: TokKind::Punct(b as char),
                });
                mark(&mut line_has_token, line);
            }
        }
    }

    out.comments = merge_comments(raw_comments, &line_has_token);
    out.lines_with_tokens = line_has_token;
    out
}

fn mark(lines: &mut [bool], line: u32) {
    if let Some(slot) = lines.get_mut(line as usize) {
        *slot = true;
    }
}

/// Merges consecutive own-line `//` comments into one block, so a
/// multi-line justification counts as a single comment whose marker
/// (`SAFETY:`, ...) may sit on any of its lines.
fn merge_comments(raw: Vec<(u32, u32, String)>, line_has_token: &[bool]) -> Vec<Comment> {
    let mut out: Vec<Comment> = Vec::new();
    for (line, end_line, text) in raw {
        let trailing = line_has_token.get(line as usize).copied().unwrap_or(false);
        if let Some(prev) = out.last_mut() {
            if !prev.trailing && !trailing && prev.end_line + 1 == line {
                prev.end_line = end_line;
                prev.text.push('\n');
                prev.text.push_str(&text);
                continue;
            }
        }
        out.push(Comment {
            line,
            end_line,
            text,
            trailing,
        });
    }
    out
}

/// `r"..."`, `r#"..."#`, `br"..."`, `rb`-style orderings excluded
/// (not valid Rust).
fn starts_raw_string(cur: &Cursor<'_>) -> bool {
    let mut off = 0;
    if cur.peek() == Some(b'b') {
        off = 1;
    }
    if cur.peek_at(off) != Some(b'r') {
        return false;
    }
    off += 1;
    while cur.peek_at(off) == Some(b'#') {
        off += 1;
    }
    cur.peek_at(off) == Some(b'"')
}

fn skip_raw_string(cur: &mut Cursor<'_>) {
    if cur.peek() == Some(b'b') {
        cur.bump();
    }
    cur.bump(); // r
    let mut hashes = 0usize;
    while cur.peek() == Some(b'#') {
        hashes += 1;
        cur.bump();
    }
    cur.bump(); // opening quote
    loop {
        match cur.bump() {
            None => return,
            Some(b'"') => {
                let mut matched = 0usize;
                while matched < hashes && cur.peek() == Some(b'#') {
                    matched += 1;
                    cur.bump();
                }
                if matched == hashes {
                    return;
                }
            }
            Some(_) => {}
        }
    }
}

fn skip_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    loop {
        match cur.bump() {
            None | Some(b'"') => return,
            Some(b'\\') => {
                cur.bump();
            }
            Some(_) => {}
        }
    }
}

/// Distinguishes `'a'` (and `'\n'`, `'\u{1F600}'`) from `'a` the
/// lifetime: a char literal's closing quote appears before any
/// non-identifier break.
fn is_char_literal(cur: &Cursor<'_>) -> bool {
    // cur is at the opening quote.
    match cur.peek_at(1) {
        Some(b'\\') => true,
        Some(c) if is_ident_start(c) => {
            // 'x' vs 'x: scan the identifier; a quote right after a
            // one-or-more-char identifier means char literal only for
            // single chars ('ab' is not valid Rust).
            let mut off = 2;
            while cur.peek_at(off).is_some_and(is_ident_continue) {
                off += 1;
            }
            cur.peek_at(off) == Some(b'\'') && off == 2
        }
        Some(_) => true, // '(' etc — punctuation chars are char literals
        None => false,
    }
}

fn skip_char_literal(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    loop {
        match cur.bump() {
            None | Some(b'\'') => return,
            Some(b'\\') => {
                cur.bump();
            }
            Some(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_tokens() {
        let src = r##"
// unsafe in a comment
/* unsafe /* nested */ still comment */
let s = "unsafe { }";
let r = r#"unsafe"#;
let c = 'u';
fn real() {}
"##;
        let ids = idents(src);
        assert!(!ids.contains(&"unsafe".to_owned()), "{ids:?}");
        assert!(ids.contains(&"real".to_owned()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let lexed = lex(src);
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 3);
    }

    #[test]
    fn char_escapes_do_not_derail() {
        let src = "let q = '\\''; let n = '\\n'; fn after() {}";
        assert!(idents(src).contains(&"after".to_owned()));
    }

    #[test]
    fn own_line_comment_runs_merge() {
        let src = "// SAFETY: part one\n// part two\nlet x = 1; // trailing\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].line, 1);
        assert_eq!(lexed.comments[0].end_line, 2);
        assert!(lexed.comments[0].text.contains("SAFETY:"));
        assert!(!lexed.comments[0].trailing);
        assert!(lexed.comments[1].trailing);
    }

    #[test]
    fn token_lines_are_tracked() {
        let src = "fn a() {}\n\nfn b() {}\n";
        let lexed = lex(src);
        assert!(lexed.lines_with_tokens[1]);
        assert!(!lexed.lines_with_tokens[2]);
        assert!(lexed.lines_with_tokens[3]);
    }
}
