//! ps3-lint: workspace-specific static analysis for PowerSensor3.
//!
//! The runtime test suite can't see a stray `Instant::now()` in
//! sim-clocked code, a reordered lock acquisition, or a weakened
//! atomic ordering — those regressions pass tier-1 green and fail
//! probabilistically at scale. This crate makes the project's
//! concurrency and determinism invariants machine-checked on every
//! PR: a hand-rolled lexer (std only, same vendoring playbook as
//! `compat/`) feeds rule classes for determinism, unsafe/atomics
//! auditing, lock-order cycles and panic-paths, with a mandatory-
//! reason allowlist and JSON output for CI.
//!
//! See DESIGN.md § "Static analysis" for the rule catalog and how to
//! add a rule.

#![forbid(unsafe_code)]

pub mod config;
pub mod findings;
pub mod fixtures;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod walk;

use std::fs;
use std::io;
use std::path::Path;

use config::Config;
use findings::Finding;
use source::SourceFile;

/// Subtrees excluded from the real check: build outputs and the
/// planted-violation fixtures (checked separately, in fixtures mode).
pub const CHECK_SKIP_PREFIXES: &[&str] = &["crates/lint/fixtures/"];

/// Runs every rule over the workspace rooted at `root` and returns
/// the findings (empty = clean).
pub fn run_check(root: &Path) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    for (rel, path) in walk::collect_rs_files(root, CHECK_SKIP_PREFIXES)? {
        let src = fs::read_to_string(&path)?;
        files.push(SourceFile::parse(&rel, &src));
    }
    Ok(rules::run_all(&files, &Config::default()))
}
