//! Rule scoping: which paths each rule class applies to.
//!
//! Scopes are path-based and project-specific (this is a workspace
//! lint, not a general-purpose one). In fixtures mode the same rules
//! run over `crates/lint/fixtures/`, scoped by filename prefix so one
//! directory can exercise in-scope and out-of-scope behaviour.

/// All rule ids, for `list-rules` and allow-directive validation.
pub const RULE_IDS: &[(&str, &str)] = &[
    (
        "determinism",
        "wall-clock (Instant::now / SystemTime::now / thread::sleep) forbidden in sim-deterministic code",
    ),
    (
        "unsafe-safety",
        "every `unsafe` block/fn/impl must be covered by a `// SAFETY:` comment",
    ),
    (
        "forbid-unsafe",
        "crates whose src tree has zero `unsafe` must declare `#![forbid(unsafe_code)]` in lib.rs",
    ),
    (
        "atomics",
        "weak atomic orderings (Relaxed/Acquire/Release/AcqRel) only in approved modules, each site with an `// ORDERING:` comment",
    ),
    (
        "lock-order",
        "nested lock acquisitions must not form a cycle across stream / fleet / compat-rayon",
    ),
    (
        "panic-path",
        "unwrap / expect / panic! forbidden in daemon, subscriber and rig-supervision hot paths",
    ),
    (
        "allow-syntax",
        "`// ps3-lint: allow(...)` directives must parse and carry a non-empty reason",
    ),
    (
        "blocking-io",
        "blocking socket calls and thread spawns forbidden in event-loop modules (readiness-driven non-blocking I/O only)",
    ),
];

#[must_use]
pub fn known_rule(id: &str) -> bool {
    RULE_IDS.iter().any(|(r, _)| *r == id)
}

/// Scoping configuration for one run.
#[derive(Debug, Clone, Copy, Default)]
pub struct Config {
    /// Scanning the planted-violation fixture tree: scope by filename
    /// prefix instead of workspace paths.
    pub fixtures_mode: bool,
}

impl Config {
    fn stem(rel: &str) -> &str {
        rel.rsplit('/').next().unwrap_or(rel)
    }

    /// Files where wall-clock calls are forbidden (sim-deterministic
    /// paths: the sim harness, archive codec/query/writer layers, the
    /// tsdb query engine and compactor, bench experiment bodies, and
    /// the modeled probe/DUT layers whose outputs must be pure
    /// functions of virtual time).
    #[must_use]
    pub fn determinism_scope(&self, rel: &str) -> bool {
        if self.fixtures_mode {
            return Self::stem(rel).starts_with("det_");
        }
        if self.determinism_exempt(rel) {
            return false;
        }
        rel.starts_with("crates/sim/src/")
            || rel.starts_with("crates/archive/src/")
            || rel.starts_with("crates/tsdb/src/")
            || rel.starts_with("crates/bench/src/")
            || rel.starts_with("crates/pmt/src/")
            || rel.starts_with("crates/duts/src/")
    }

    /// Modules exempt from the determinism rule by design:
    /// fault injection models transport stalls with real sleeps.
    fn determinism_exempt(&self, rel: &str) -> bool {
        rel == "crates/sim/src/inject.rs"
    }

    /// Long-running server code: daemon accept/subscriber loops, fleet
    /// rig supervision, and the background compactor that runs on the
    /// archive writer's maintenance thread. Panics here kill service
    /// threads.
    #[must_use]
    pub fn panic_scope(&self, rel: &str) -> bool {
        if self.fixtures_mode {
            return Self::stem(rel).starts_with("panic_");
        }
        matches!(
            rel,
            "crates/stream/src/daemon.rs"
                | "crates/stream/src/ring.rs"
                | "crates/stream/src/net.rs"
                | "crates/stream/src/event_loop.rs"
                | "crates/fleet/src/coordinator.rs"
                | "crates/fleet/src/rig.rs"
                | "crates/fleet/src/serve.rs"
                | "crates/tsdb/src/compactor.rs"
                | "crates/tsdb/src/writer.rs"
        )
    }

    /// Event-loop modules: everything here runs on the single
    /// readiness-driven thread, so blocking socket calls and
    /// per-connection thread spawns are design violations.
    #[must_use]
    pub fn blocking_io_scope(&self, rel: &str) -> bool {
        if self.fixtures_mode {
            return Self::stem(rel).starts_with("blockio_");
        }
        matches!(
            rel,
            "crates/stream/src/event_loop.rs" | "crates/fleet/src/serve.rs"
        )
    }

    /// Modules allowed to use weak atomic orderings (each site still
    /// needs an `// ORDERING:` justification).
    #[must_use]
    pub fn approved_atomics_module(&self, rel: &str) -> bool {
        if self.fixtures_mode {
            return Self::stem(rel).starts_with("atomics_ring");
        }
        matches!(
            rel,
            "crates/stream/src/ring.rs"
                | "compat/rayon/src/lib.rs"
                | "crates/archive/src/writer.rs"
        )
    }

    /// Crates whose lock graphs are analysed for ordering cycles.
    #[must_use]
    pub fn lock_order_scope(&self, rel: &str) -> bool {
        if self.fixtures_mode {
            return Self::stem(rel).starts_with("lock_");
        }
        rel.starts_with("crates/stream/src/")
            || rel.starts_with("crates/fleet/src/")
            || rel.starts_with("compat/rayon/src/")
    }

    /// `true` for a crate's lib root (`src/lib.rs`), where
    /// `#![forbid(unsafe_code)]` must live.
    #[must_use]
    pub fn is_crate_root(&self, rel: &str) -> bool {
        rel == "src/lib.rs" || rel.ends_with("/src/lib.rs")
    }

    /// Key grouping a file with the crate src tree it belongs to, or
    /// `None` when the file is not part of a lib target (tests,
    /// examples, benches, bins are separate compilation units and do
    /// not affect the lib's `forbid(unsafe_code)` obligation).
    #[must_use]
    pub fn crate_src_key<'a>(&self, rel: &'a str) -> Option<&'a str> {
        let idx = if rel.starts_with("src/") {
            0
        } else {
            rel.find("/src/").map(|i| i + 1)?
        };
        Some(&rel[..idx + "src/".len()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_scopes() {
        let c = Config::default();
        assert!(c.determinism_scope("crates/sim/src/world.rs"));
        assert!(!c.determinism_scope("crates/sim/src/inject.rs"));
        assert!(!c.determinism_scope("crates/stream/src/daemon.rs"));
        assert!(c.panic_scope("crates/stream/src/daemon.rs"));
        assert!(!c.panic_scope("crates/bench/src/driver.rs"));
        assert!(c.determinism_scope("crates/tsdb/src/query.rs"));
        assert!(c.determinism_scope("crates/pmt/src/probe/counter.rs"));
        assert!(c.determinism_scope("crates/duts/src/cpu.rs"));
        assert!(!c.determinism_scope("crates/testbed/src/lib.rs"));
        assert!(c.panic_scope("crates/tsdb/src/compactor.rs"));
        assert!(c.panic_scope("crates/tsdb/src/writer.rs"));
        assert!(!c.panic_scope("crates/tsdb/src/pyramid.rs"));
        assert!(c.approved_atomics_module("compat/rayon/src/lib.rs"));
        assert!(!c.approved_atomics_module("crates/sim/src/scenario.rs"));
        assert!(c.lock_order_scope("crates/fleet/src/coordinator.rs"));
        assert!(c.panic_scope("crates/stream/src/event_loop.rs"));
        assert!(c.blocking_io_scope("crates/stream/src/event_loop.rs"));
        assert!(c.blocking_io_scope("crates/fleet/src/serve.rs"));
        assert!(!c.blocking_io_scope("crates/stream/src/daemon.rs"));
        assert!(c.is_crate_root("crates/core/src/lib.rs"));
        assert!(c.is_crate_root("src/lib.rs"));
        assert!(!c.is_crate_root("crates/core/src/sample.rs"));
    }

    #[test]
    fn fixture_prefix_scopes() {
        let c = Config {
            fixtures_mode: true,
        };
        assert!(c.determinism_scope("det_sim_clock.rs"));
        assert!(!c.determinism_scope("panic_loop.rs"));
        assert!(c.panic_scope("panic_loop.rs"));
        assert!(c.approved_atomics_module("atomics_ring_missing_ordering.rs"));
        assert!(!c.approved_atomics_module("atomics_outside.rs"));
        assert!(c.lock_order_scope("lock_cycle_a.rs"));
        assert!(c.blocking_io_scope("blockio_event_loop.rs"));
        assert!(!c.blocking_io_scope("panic_loop.rs"));
        assert!(c.is_crate_root("forbidcrate/src/lib.rs"));
    }

    #[test]
    fn crate_grouping() {
        let c = Config::default();
        assert_eq!(
            c.crate_src_key("crates/stream/src/net.rs"),
            Some("crates/stream/src/")
        );
        assert_eq!(c.crate_src_key("src/lib.rs"), Some("src/"));
        assert_eq!(c.crate_src_key("crates/stream/tests/it.rs"), None);
        assert_eq!(c.crate_src_key("tests/roundtrip.rs"), None);
    }

    #[test]
    fn rule_ids_known() {
        assert!(known_rule("determinism"));
        assert!(known_rule("lock-order"));
        assert!(!known_rule("no-such-rule"));
    }
}
