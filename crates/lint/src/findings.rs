//! Finding type and the two output encodings (text and JSON).

use std::fmt;

/// One lint finding at a source location.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Path relative to the workspace root, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Stable rule id, e.g. `determinism`, `lock-order`.
    pub rule: String,
    pub message: String,
}

impl Finding {
    #[must_use]
    pub fn new(file: &str, line: u32, rule: &str, message: String) -> Self {
        Self {
            file: file.to_owned(),
            line,
            rule: rule.to_owned(),
            message,
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} {} {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Renders findings as a JSON array of objects, stable field order.
#[must_use]
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str("  {\"file\":");
        json_str(&mut out, &f.file);
        out.push_str(",\"line\":");
        out.push_str(&f.line.to_string());
        out.push_str(",\"rule\":");
        json_str(&mut out, &f.rule);
        out.push_str(",\"message\":");
        json_str(&mut out, &f.message);
        out.push('}');
        if i + 1 < findings.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out
}

fn json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_machine_readable() {
        let f = Finding::new(
            "crates/x/src/lib.rs",
            7,
            "determinism",
            "Instant::now in sim path".into(),
        );
        assert_eq!(
            f.to_string(),
            "crates/x/src/lib.rs:7 determinism Instant::now in sim path"
        );
    }

    #[test]
    fn json_escapes_quotes() {
        let f = Finding::new("a.rs", 1, "r", "needs reason=\"...\"".into());
        let j = to_json(&[f]);
        assert!(j.contains("\\\"...\\\""), "{j}");
        assert!(j.starts_with('[') && j.ends_with(']'));
    }

    #[test]
    fn empty_is_empty_array() {
        assert_eq!(to_json(&[]), "[\n]");
    }
}
