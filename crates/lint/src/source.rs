//! Per-file analysis model: lexed tokens plus the derived views every
//! rule needs — test-code regions, allow directives, and comment
//! look-ups for `// SAFETY:` / `// ORDERING:` justifications.

use std::collections::HashMap;

use crate::lexer::{lex, Comment, TokKind, Token};

/// How far above a site a justification comment (`SAFETY:`,
/// `ORDERING:`) may end and still cover it. Generous enough for a
/// `let x =` line between the comment and the keyword.
const JUSTIFY_REACH_LINES: u32 = 3;

/// A parsed `// ps3-lint: allow(rule-id, ...) reason="..."` directive.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// Rule ids the directive suppresses.
    pub rules: Vec<String>,
    /// The mandatory human reason.
    pub reason: String,
    /// Line the directive suppresses findings on.
    pub target_line: u32,
    /// Line the directive itself sits on.
    pub line: u32,
}

/// A malformed allow directive (reported by the `allow-syntax` rule).
#[derive(Debug, Clone)]
pub struct BadAllow {
    pub line: u32,
    pub message: String,
}

/// One source file, lexed and indexed for the rules.
pub struct SourceFile {
    /// Path relative to the scanned root, `/`-separated.
    pub rel_path: String,
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
    /// 1-based: line carries code tokens.
    pub lines_with_tokens: Vec<bool>,
    /// 1-based: line is test code (`#[cfg(test)]` module, or the whole
    /// file when under a `tests/`, `benches/` or `examples/` tree).
    pub test_lines: Vec<bool>,
    pub allows: Vec<AllowDirective>,
    pub bad_allows: Vec<BadAllow>,
    /// rule-id -> suppressed lines.
    allow_index: HashMap<String, Vec<u32>>,
}

impl SourceFile {
    /// Lexes and indexes `src` as `rel_path`.
    #[must_use]
    pub fn parse(rel_path: &str, src: &str) -> Self {
        let lexed = lex(src);
        let whole_file_test = is_test_path(rel_path);
        let mut test_lines = vec![whole_file_test; lexed.line_count as usize + 2];
        if !whole_file_test {
            mark_cfg_test_regions(&lexed.tokens, &mut test_lines);
        }
        let (allows, bad_allows) = parse_allows(&lexed.comments, &lexed.lines_with_tokens);
        let mut allow_index: HashMap<String, Vec<u32>> = HashMap::new();
        for a in &allows {
            for rule in &a.rules {
                allow_index
                    .entry(rule.clone())
                    .or_default()
                    .push(a.target_line);
            }
        }
        Self {
            rel_path: rel_path.to_owned(),
            tokens: lexed.tokens,
            comments: lexed.comments,
            lines_with_tokens: lexed.lines_with_tokens,
            test_lines,
            allows,
            bad_allows,
            allow_index,
        }
    }

    /// `true` when a finding of `rule` at `line` is suppressed by an
    /// allow directive.
    #[must_use]
    pub fn is_allowed(&self, rule: &str, line: u32) -> bool {
        self.allow_index
            .get(rule)
            .is_some_and(|lines| lines.contains(&line))
    }

    /// `true` when `line` is inside test code.
    #[must_use]
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_lines.get(line as usize).copied().unwrap_or(false)
    }

    /// `true` when a justification comment covers the site at `line`:
    /// trailing on the same line, or an own-line block ending within
    /// [`JUSTIFY_REACH_LINES`] above it. To count, a comment line must
    /// *start* with `marker` — prose that merely mentions `SAFETY:`
    /// does not justify anything.
    #[must_use]
    pub fn has_justification(&self, marker: &str, line: u32) -> bool {
        self.comments.iter().any(|c| {
            (c.line == line || (c.end_line < line && line - c.end_line <= JUSTIFY_REACH_LINES))
                && c.text
                    .split('\n')
                    .any(|l| l.trim_start().starts_with(marker))
        })
    }

    /// Convenience for rules: identifier text at token index `i`.
    #[must_use]
    pub fn ident_at(&self, i: usize) -> Option<&str> {
        match self.tokens.get(i).map(|t| &t.kind) {
            Some(TokKind::Ident(s)) => Some(s),
            _ => None,
        }
    }

    /// Convenience for rules: `true` when token `i` is punct `c`.
    #[must_use]
    pub fn punct_at(&self, i: usize, c: char) -> bool {
        matches!(self.tokens.get(i).map(|t| &t.kind), Some(TokKind::Punct(p)) if *p == c)
    }
}

/// Whole-file test scope: integration tests, benches, examples.
fn is_test_path(rel: &str) -> bool {
    rel.starts_with("tests/")
        || rel.starts_with("examples/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
}

/// Marks every line of `#[cfg(test)] mod ... { ... }` regions (and
/// `#[cfg(test)]`-gated items generally) as test code.
fn mark_cfg_test_regions(tokens: &[Token], test_lines: &mut [bool]) {
    let mut i = 0;
    while i < tokens.len() {
        if is_cfg_test_attr(tokens, i) {
            // Find the start of the gated item's body: the first `{`
            // after the attribute (skipping further attributes), then
            // mark through its matching `}`.
            let mut j = skip_attr(tokens, i);
            while is_attr_start(tokens, j) {
                j = skip_attr(tokens, j);
            }
            let Some(open) = (j..tokens.len()).find(|&k| punct(tokens, k, '{')) else {
                return;
            };
            let close = match_brace(tokens, open);
            let start_line = tokens[i].line;
            let end_line = tokens.get(close).map_or(u32::MAX, |t| t.line);
            for t in tokens {
                if t.line >= start_line && t.line <= end_line {
                    if let Some(slot) = test_lines.get_mut(t.line as usize) {
                        *slot = true;
                    }
                }
            }
            i = close;
        }
        i += 1;
    }
}

fn punct(tokens: &[Token], i: usize, c: char) -> bool {
    matches!(tokens.get(i).map(|t| &t.kind), Some(TokKind::Punct(p)) if *p == c)
}

fn ident(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s),
        _ => None,
    }
}

fn is_attr_start(tokens: &[Token], i: usize) -> bool {
    punct(tokens, i, '#') && punct(tokens, i + 1, '[')
}

/// `#[cfg(...)]` whose argument list mentions `test`.
fn is_cfg_test_attr(tokens: &[Token], i: usize) -> bool {
    if !is_attr_start(tokens, i) || ident(tokens, i + 2) != Some("cfg") {
        return false;
    }
    let end = skip_attr(tokens, i);
    tokens[i..end.min(tokens.len())]
        .iter()
        .any(|t| matches!(&t.kind, TokKind::Ident(s) if s == "test"))
}

/// Returns the index just past a `#[...]` attribute starting at `i`.
fn skip_attr(tokens: &[Token], i: usize) -> usize {
    debug_assert!(is_attr_start(tokens, i));
    let mut depth = 0usize;
    let mut j = i + 1;
    while j < tokens.len() {
        if punct(tokens, j, '[') {
            depth += 1;
        } else if punct(tokens, j, ']') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    tokens.len()
}

/// Index of the `}` matching the `{` at `open` (or the last token).
#[must_use]
pub fn match_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < tokens.len() {
        if punct(tokens, j, '{') {
            depth += 1;
        } else if punct(tokens, j, '}') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        j += 1;
    }
    tokens.len().saturating_sub(1)
}

/// Extracts allow directives (and syntax errors) from the comments.
/// A directive is a comment line that *starts* with `ps3-lint:` —
/// prose or doc examples that merely mention the marker mid-line are
/// not directives.
fn parse_allows(
    comments: &[Comment],
    lines_with_tokens: &[bool],
) -> (Vec<AllowDirective>, Vec<BadAllow>) {
    const PREFIX: &str = "ps3-lint:";
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        for (off, line_text) in c.text.split('\n').enumerate() {
            let Some(directive) = line_text.trim_start().strip_prefix(PREFIX) else {
                continue;
            };
            let line = c.line + off as u32;
            match parse_one_allow(directive.trim()) {
                Ok((rules, reason)) => {
                    let target_line = if c.trailing {
                        c.line
                    } else {
                        // Own-line directive: covers the next code line.
                        let mut l = c.end_line + 1;
                        while (l as usize) < lines_with_tokens.len()
                            && !lines_with_tokens[l as usize]
                        {
                            l += 1;
                        }
                        l
                    };
                    allows.push(AllowDirective {
                        rules,
                        reason,
                        target_line,
                        line,
                    });
                }
                Err(message) => bad.push(BadAllow { line, message }),
            }
        }
    }
    (allows, bad)
}

/// Parses `allow(rule-a, rule-b) reason="why"`.
fn parse_one_allow(s: &str) -> Result<(Vec<String>, String), String> {
    let s = s.trim();
    let Some(rest) = s.strip_prefix("allow") else {
        return Err(format!(
            "unknown ps3-lint directive: `{s}` (expected `allow(...)`)"
        ));
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Err("allow directive missing `(rule-id, ...)`".to_owned());
    };
    let Some(close) = rest.find(')') else {
        return Err("allow directive missing closing `)`".to_owned());
    };
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_owned())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return Err("allow directive lists no rule ids".to_owned());
    }
    let tail = rest[close + 1..].trim();
    let Some(tail) = tail.strip_prefix("reason=") else {
        return Err("allow directive missing mandatory `reason=\"...\"`".to_owned());
    };
    let tail = tail.trim();
    let reason = tail
        .strip_prefix('"')
        .and_then(|t| t.find('"').map(|end| t[..end].trim().to_owned()))
        .ok_or_else(|| "allow reason must be quoted: reason=\"...\"".to_owned())?;
    if reason.is_empty() {
        return Err("allow reason must not be empty".to_owned());
    }
    Ok((rules, reason))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_module_lines_are_test_scope() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(3));
        assert!(f.is_test_line(4));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn integration_test_paths_are_entirely_test_scope() {
        let f = SourceFile::parse("crates/x/tests/it.rs", "fn a() {}\n");
        assert!(f.is_test_line(1));
    }

    #[test]
    fn allow_directive_targets_next_code_line() {
        let src = "// ps3-lint: allow(determinism) reason=\"harness quiesce\"\n\nfn f() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.is_allowed("determinism", 3));
        assert!(!f.is_allowed("determinism", 1));
        assert!(f.bad_allows.is_empty());
    }

    #[test]
    fn trailing_allow_targets_its_own_line() {
        let src = "fn f() {} // ps3-lint: allow(panic-path) reason=\"test shim\"\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.is_allowed("panic-path", 1));
    }

    #[test]
    fn allow_without_reason_is_reported() {
        let src = "// ps3-lint: allow(determinism)\nfn f() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.is_allowed("determinism", 2));
        assert_eq!(f.bad_allows.len(), 1);
        assert!(f.bad_allows[0].message.contains("reason"));
    }

    #[test]
    fn multi_rule_allow() {
        let src = "// ps3-lint: allow(determinism, panic-path) reason=\"both\"\nfn f() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.is_allowed("determinism", 2));
        assert!(f.is_allowed("panic-path", 2));
    }

    #[test]
    fn justification_reaches_over_a_let_line() {
        let src = "// SAFETY: fd is valid\n// and owned here.\nlet rc =\n    unsafe { x() };\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.has_justification("SAFETY:", 4));
        assert!(!f.has_justification("ORDERING:", 4));
    }
}
