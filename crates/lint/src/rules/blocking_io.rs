//! blocking-io: event-loop modules must stay non-blocking. One
//! blocking socket call on the readiness loop stalls every connection
//! it serves, and a per-connection `thread::spawn` quietly reverts the
//! C10k design to thread-per-subscriber. Legitimate sites (spawning
//! the loop thread itself) carry an allow directive with a reason.

use crate::config::Config;
use crate::findings::Finding;
use crate::source::SourceFile;

const RULE: &str = "blocking-io";

/// Method calls that block the calling thread on socket I/O, or switch
/// a socket into timed blocking mode.
const BLOCKING_METHODS: &[&str] = &[
    "read_exact",
    "read_to_end",
    "read_to_string",
    "write_all",
    "set_read_timeout",
    "set_write_timeout",
];

pub fn check(f: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
    if !cfg.blocking_io_scope(&f.rel_path) {
        return;
    }
    for i in 0..f.tokens.len() {
        let Some(what) = blocking_site(f, i) else {
            continue;
        };
        let line = f.tokens[i].line;
        if f.is_test_line(line) || f.is_allowed(RULE, line) {
            continue;
        }
        out.push(Finding::new(
            &f.rel_path,
            line,
            RULE,
            format!(
                "`{what}` in an event-loop module (use non-blocking I/O driven by readiness, or allowlist with a reason)"
            ),
        ));
    }
}

fn blocking_site(f: &SourceFile, i: usize) -> Option<String> {
    let id = f.ident_at(i)?;
    // `thread::spawn` — per-connection threads are what the readiness
    // loop exists to avoid.
    if id == "thread" && f.punct_at(i + 1, ':') && f.punct_at(i + 2, ':') {
        if f.ident_at(i + 3) == Some("spawn") {
            return Some("thread::spawn".to_owned());
        }
        return None;
    }
    // `.spawn(...)` — the `thread::Builder` form of the same thing.
    // `.read_exact(...)` etc. — blocking socket calls.
    if i > 0 && f.punct_at(i - 1, '.') && f.punct_at(i + 1, '(') {
        if id == "spawn" {
            return Some(".spawn()".to_owned());
        }
        if BLOCKING_METHODS.contains(&id) {
            return Some(format!(".{id}()"));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rel: &str, src: &str) -> Vec<Finding> {
        let f = SourceFile::parse(rel, src);
        let mut out = Vec::new();
        check(&f, &Config::default(), &mut out);
        out
    }

    #[test]
    fn flags_spawns_and_blocking_socket_calls() {
        let src = "fn serve() {\n    std::thread::spawn(f);\n    b.spawn(f);\n    s.read_exact(&mut buf);\n    s.write_all(&buf);\n    s.set_read_timeout(None);\n}\n";
        let out = run("crates/stream/src/event_loop.rs", src);
        assert_eq!(out.len(), 5);
        assert!(out[0].message.contains("thread::spawn"));
        assert!(out[2].message.contains(".read_exact()"));
    }

    #[test]
    fn nonblocking_idioms_do_not_fire() {
        let src = "fn serve() {\n    s.read(&mut buf);\n    s.write(&buf);\n    s.set_nonblocking(true);\n    thread::sleep(d);\n    let spawn = 3;\n}\n";
        assert!(run("crates/stream/src/event_loop.rs", src).is_empty());
    }

    #[test]
    fn out_of_scope_tests_and_allows_skipped() {
        assert!(run(
            "crates/stream/src/daemon.rs",
            "fn t() { thread::spawn(f); }\n"
        )
        .is_empty());
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { s.write_all(&b); }\n}\n";
        assert!(run("crates/stream/src/event_loop.rs", src).is_empty());
        let src = "fn up() {\n    b.spawn(run); // ps3-lint: allow(blocking-io) reason=\"the one loop thread, not per-connection\"\n}\n";
        assert!(run("crates/stream/src/event_loop.rs", src).is_empty());
    }
}
