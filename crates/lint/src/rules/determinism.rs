//! determinism: wall-clock calls are forbidden in sim-deterministic
//! code. A stray `Instant::now()` or `thread::sleep()` there breaks
//! the bit-exact `(scenario, seed, plan)` replay guarantee silently —
//! tier-1 stays green and the divergence only shows up at scale.

use crate::config::Config;
use crate::findings::Finding;
use crate::source::SourceFile;

const RULE: &str = "determinism";

/// `Type::method` pairs that read the wall clock or real time.
const CLOCK_PATHS: &[(&str, &str)] = &[
    ("Instant", "now"),
    ("SystemTime", "now"),
    ("thread", "sleep"),
    // chrono-style Date/time sources, should they ever sneak in via a
    // future vendored compat crate.
    ("Local", "now"),
    ("Utc", "now"),
    ("Date", "now"),
];

pub fn check(f: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
    if !cfg.determinism_scope(&f.rel_path) {
        return;
    }
    for i in 0..f.tokens.len() {
        let Some((ty, method)) = path_pair(f, i) else {
            continue;
        };
        let line = f.tokens[i].line;
        if f.is_test_line(line) || f.is_allowed(RULE, line) {
            continue;
        }
        out.push(Finding::new(
            &f.rel_path,
            line,
            RULE,
            format!("wall-clock call `{ty}::{method}` in sim-deterministic code (route through the virtual clock or allowlist with a reason)"),
        ));
    }
}

/// Matches `Ty :: method` at token `i` against [`CLOCK_PATHS`].
fn path_pair(f: &SourceFile, i: usize) -> Option<(&'static str, &'static str)> {
    let ty = f.ident_at(i)?;
    if !(f.punct_at(i + 1, ':') && f.punct_at(i + 2, ':')) {
        return None;
    }
    let method = f.ident_at(i + 3)?;
    CLOCK_PATHS
        .iter()
        .copied()
        .find(|(t, m)| *t == ty && *m == method)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rel: &str, src: &str) -> Vec<Finding> {
        let f = SourceFile::parse(rel, src);
        let mut out = Vec::new();
        check(&f, &Config::default(), &mut out);
        out
    }

    #[test]
    fn flags_instant_now_in_sim() {
        let out = run(
            "crates/sim/src/world.rs",
            "fn t() { let x = Instant::now(); }\n",
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "determinism");
        assert_eq!(out[0].line, 1);
        assert!(out[0].message.contains("Instant::now"));
    }

    #[test]
    fn flags_thread_sleep_and_systemtime() {
        let src = "fn t() {\n    std::thread::sleep(d);\n    SystemTime::now();\n}\n";
        let out = run("crates/bench/src/driver.rs", src);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].line, 2);
        assert_eq!(out[1].line, 3);
    }

    #[test]
    fn out_of_scope_files_are_ignored() {
        assert!(run(
            "crates/stream/src/daemon.rs",
            "fn t() { Instant::now(); }\n"
        )
        .is_empty());
        assert!(run("crates/sim/src/inject.rs", "fn t() { thread::sleep(d); }\n").is_empty());
    }

    #[test]
    fn test_code_and_allows_are_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { Instant::now(); }\n}\n";
        assert!(run("crates/sim/src/world.rs", src).is_empty());
        let src = "// ps3-lint: allow(determinism) reason=\"harness quiesce\"\nfn t() { thread::sleep(d); }\n";
        assert!(run("crates/sim/src/world.rs", src).is_empty());
    }

    #[test]
    fn mentions_in_comments_and_strings_do_not_fire() {
        let src = "// Instant::now() is banned here.\nfn t() { let s = \"Instant::now\"; }\n";
        assert!(run("crates/sim/src/world.rs", src).is_empty());
    }
}
