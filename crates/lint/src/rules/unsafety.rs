//! unsafe audit, two halves:
//!
//! * `unsafe-safety` — every `unsafe` keyword (block, fn, impl) must
//!   be covered by a `// SAFETY:` comment, test code included.
//! * `forbid-unsafe` — a crate whose whole `src/` tree is unsafe-free
//!   must say so structurally with `#![forbid(unsafe_code)]`, so a
//!   future PR can't introduce unsafe there without touching lib.rs.

use std::collections::{HashMap, HashSet};

use crate::config::Config;
use crate::findings::Finding;
use crate::source::SourceFile;

/// Per-file: every `unsafe` needs a `// SAFETY:` justification.
pub fn check_safety_comments(f: &SourceFile, out: &mut Vec<Finding>) {
    for i in 0..f.tokens.len() {
        if f.ident_at(i) != Some("unsafe") {
            continue;
        }
        let line = f.tokens[i].line;
        if f.is_allowed("unsafe-safety", line) || f.has_justification("SAFETY:", line) {
            continue;
        }
        out.push(Finding::new(
            &f.rel_path,
            line,
            "unsafe-safety",
            "`unsafe` without a `// SAFETY:` comment justifying the invariants".to_owned(),
        ));
    }
}

/// Cross-file: crates with an unsafe-free `src/` tree must declare
/// `#![forbid(unsafe_code)]` in their lib root.
pub fn check_forbid_unsafe(files: &[SourceFile], cfg: &Config, out: &mut Vec<Finding>) {
    let mut unsafe_crates: HashSet<&str> = HashSet::new();
    let mut roots: HashMap<&str, &SourceFile> = HashMap::new();
    for f in files {
        let Some(key) = cfg.crate_src_key(&f.rel_path) else {
            continue;
        };
        if f.tokens
            .iter()
            .any(|t| matches!(&t.kind, crate::lexer::TokKind::Ident(s) if s == "unsafe"))
        {
            unsafe_crates.insert(key);
        }
        if cfg.is_crate_root(&f.rel_path) {
            roots.insert(key, f);
        }
    }
    for (key, root) in roots {
        if unsafe_crates.contains(key) || has_forbid_unsafe(root) {
            continue;
        }
        if root.is_allowed("forbid-unsafe", 1) {
            continue;
        }
        out.push(Finding::new(
            &root.rel_path,
            1,
            "forbid-unsafe",
            "crate src tree is unsafe-free but lib.rs does not declare `#![forbid(unsafe_code)]`"
                .to_owned(),
        ));
    }
}

/// Looks for `forbid( ... unsafe_code ... )` anywhere in the file
/// (inner attribute position is enforced by rustc itself).
fn has_forbid_unsafe(f: &SourceFile) -> bool {
    for i in 0..f.tokens.len() {
        if f.ident_at(i) == Some("forbid") && f.punct_at(i + 1, '(') {
            let mut j = i + 2;
            while j < f.tokens.len() && !f.punct_at(j, ')') {
                if f.ident_at(j) == Some("unsafe_code") {
                    return true;
                }
                j += 1;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_safety(src: &str) -> Vec<Finding> {
        let f = SourceFile::parse("crates/x/src/a.rs", src);
        let mut out = Vec::new();
        check_safety_comments(&f, &mut out);
        out
    }

    #[test]
    fn unsafe_without_safety_comment_fires() {
        let out = run_safety("fn t() { unsafe { x() } }\n");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "unsafe-safety");
    }

    #[test]
    fn safety_comment_block_covers_the_site() {
        let src = "// SAFETY: fd is open and owned by self;\n// setsockopt cannot outlive it.\nfn t() { unsafe { x() } }\n";
        assert!(run_safety(src).is_empty());
    }

    #[test]
    fn unsafe_in_string_or_comment_is_not_a_site() {
        assert!(run_safety("// an unsafe idea\nfn t() { let s = \"unsafe\"; }\n").is_empty());
    }

    fn run_forbid(files: &[(&str, &str)]) -> Vec<Finding> {
        let parsed: Vec<SourceFile> = files
            .iter()
            .map(|(rel, src)| SourceFile::parse(rel, src))
            .collect();
        let mut out = Vec::new();
        check_forbid_unsafe(&parsed, &Config::default(), &mut out);
        out
    }

    #[test]
    fn unsafe_free_crate_without_forbid_fires() {
        let out = run_forbid(&[("crates/x/src/lib.rs", "pub fn a() {}\n")]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "forbid-unsafe");
        assert_eq!(out[0].line, 1);
    }

    #[test]
    fn forbid_attribute_satisfies_the_rule() {
        let out = run_forbid(&[(
            "crates/x/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn a() {}\n",
        )]);
        assert!(out.is_empty());
    }

    #[test]
    fn unsafe_anywhere_in_src_tree_waives_the_obligation() {
        let out = run_forbid(&[
            ("crates/x/src/lib.rs", "pub mod inner;\n"),
            (
                "crates/x/src/inner.rs",
                "// SAFETY: test\npub fn a() { unsafe { b() } }\n",
            ),
        ]);
        assert!(out.is_empty());
    }

    #[test]
    fn test_targets_do_not_carry_the_obligation() {
        let out = run_forbid(&[("crates/x/tests/it.rs", "fn a() {}\n")]);
        assert!(out.is_empty());
    }
}
