//! Rule drivers. Each rule pushes [`Finding`]s; `run_all` runs every
//! rule over the file set and returns findings sorted by location.

pub mod atomics;
pub mod blocking_io;
pub mod determinism;
pub mod lock_order;
pub mod panic_path;
pub mod unsafety;

use crate::config::{known_rule, Config};
use crate::findings::Finding;
use crate::source::SourceFile;

/// Runs every rule class over `files` (plus allow-directive syntax
/// checks) and returns findings sorted by file/line/rule.
#[must_use]
pub fn run_all(files: &[SourceFile], cfg: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        determinism::check(f, cfg, &mut out);
        panic_path::check(f, cfg, &mut out);
        blocking_io::check(f, cfg, &mut out);
        atomics::check(f, cfg, &mut out);
        unsafety::check_safety_comments(f, &mut out);
        allow_syntax(f, &mut out);
    }
    unsafety::check_forbid_unsafe(files, cfg, &mut out);
    lock_order::check(files, cfg, &mut out);
    out.sort();
    out.dedup();
    out
}

/// Reports malformed allow directives and unknown rule ids. Not
/// suppressible (an allow can't vouch for itself).
fn allow_syntax(f: &SourceFile, out: &mut Vec<Finding>) {
    for bad in &f.bad_allows {
        out.push(Finding::new(
            &f.rel_path,
            bad.line,
            "allow-syntax",
            bad.message.clone(),
        ));
    }
    for a in &f.allows {
        for rule in &a.rules {
            if !known_rule(rule) {
                out.push(Finding::new(
                    &f.rel_path,
                    a.line,
                    "allow-syntax",
                    format!("unknown rule id `{rule}` in allow directive"),
                ));
            }
        }
    }
}
