//! lock-order: builds the "acquired-while-holding" graph over the
//! Mutex/RwLock declarations in the concurrency crates (stream,
//! fleet, compat/rayon) and fails on cycles — the classic static
//! deadlock-potential check.
//!
//! The analysis is deliberately conservative and purely textual:
//!
//! * a lock is any `name: ...Mutex/RwLock...` field/static/param
//!   declaration or `let name = Mutex::new(...)` binding, qualified
//!   by crate so same-named locks in different crates stay distinct;
//! * an acquisition is `name.lock()` / `name.read()` / `name.write()`
//!   (empty argument list) where `name` is a declared lock — plain
//!   `io::Read::read(buf)` calls never match;
//! * a `let`-bound guard is considered held until `drop(binding)` or
//!   the end of the function (inner-scope ends are ignored: that can
//!   add edges, never remove them); an expression-statement guard is
//!   held to the end of its statement;
//! * closures are analysed inline as part of the enclosing function
//!   (again: may add edges, never drops one).
//!
//! Over-approximate edges are fine — only *cycles* fail the build.

use std::collections::HashMap;

use crate::config::Config;
use crate::findings::Finding;
use crate::lexer::Token;
use crate::source::{match_brace, SourceFile};

const RULE: &str = "lock-order";

/// One `B acquired while holding A` observation.
struct Edge {
    file: String,
    line: u32,
    func: String,
}

pub fn check(files: &[SourceFile], cfg: &Config, out: &mut Vec<Finding>) {
    let in_scope: Vec<&SourceFile> = files
        .iter()
        .filter(|f| cfg.lock_order_scope(&f.rel_path))
        .collect();
    if in_scope.is_empty() {
        return;
    }

    // Pass 1: declared locks, per crate.
    let mut locks_by_crate: HashMap<String, Vec<String>> = HashMap::new();
    for f in &in_scope {
        let key = lock_crate_key(&f.rel_path);
        let names = locks_by_crate.entry(key).or_default();
        collect_lock_decls(&f.tokens, names);
    }

    // Pass 2: acquisition edges.
    let mut edges: HashMap<(String, String), Edge> = HashMap::new();
    for f in &in_scope {
        let key = lock_crate_key(&f.rel_path);
        let Some(names) = locks_by_crate.get(&key) else {
            continue;
        };
        collect_edges(f, &key, names, &mut edges);
    }

    // Cycle detection over the lock graph.
    let mut nodes: Vec<&String> = edges.keys().flat_map(|(a, b)| [a, b]).collect();
    nodes.sort();
    nodes.dedup();
    let index: HashMap<&String, usize> = nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    let mut adj = vec![Vec::new(); nodes.len()];
    for (a, b) in edges.keys() {
        adj[index[a]].push(index[b]);
    }
    let scc_of = tarjan_scc(&adj);
    let mut scc_size = HashMap::new();
    for &s in &scc_of {
        *scc_size.entry(s).or_insert(0usize) += 1;
    }

    let by_path: HashMap<&str, &SourceFile> =
        in_scope.iter().map(|f| (f.rel_path.as_str(), *f)).collect();
    for ((a, b), e) in &edges {
        let (ia, ib) = (index[a], index[b]);
        if scc_of[ia] != scc_of[ib] || scc_size[&scc_of[ia]] < 2 {
            continue;
        }
        if by_path
            .get(e.file.as_str())
            .is_some_and(|f| f.is_allowed(RULE, e.line))
        {
            continue;
        }
        let mut cycle: Vec<&str> = nodes
            .iter()
            .enumerate()
            .filter(|(i, _)| scc_of[*i] == scc_of[ia])
            .map(|(_, n)| n.as_str())
            .collect();
        cycle.sort_unstable();
        out.push(Finding::new(
            &e.file,
            e.line,
            RULE,
            format!(
                "in `{}`: `{b}` acquired while holding `{a}` — lock-order cycle among {{{}}} (deadlock potential)",
                e.func,
                cycle.join(", ")
            ),
        ));
    }
}

/// Crate qualifier for lock names: path up to `/src/`, or the file
/// itself for loose fixture files.
fn lock_crate_key(rel: &str) -> String {
    match rel.find("/src/") {
        Some(i) => rel[..i].to_owned(),
        None => rel.to_owned(),
    }
}

fn ident(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(crate::lexer::TokKind::Ident(s)) => Some(s),
        _ => None,
    }
}

fn punct(tokens: &[Token], i: usize, c: char) -> bool {
    matches!(tokens.get(i).map(|t| &t.kind), Some(crate::lexer::TokKind::Punct(p)) if *p == c)
}

/// Finds `name: ...Mutex/RwLock...` declarations and
/// `let name = ...Mutex::new...` bindings.
fn collect_lock_decls(tokens: &[Token], names: &mut Vec<String>) {
    const DECL_BUDGET: usize = 32;
    let mut i = 0;
    while i < tokens.len() {
        // `name : <type containing Mutex/RwLock>` — field, static or
        // parameter. A single `:` only (`::` is a path).
        if let Some(name) = ident(tokens, i) {
            let prev_colon = i > 0 && punct(tokens, i - 1, ':');
            if punct(tokens, i + 1, ':') && !punct(tokens, i + 2, ':') && !prev_colon {
                let mut j = i + 2;
                let end = (i + 2 + DECL_BUDGET).min(tokens.len());
                while j < end {
                    if punct(tokens, j, ',')
                        || punct(tokens, j, ';')
                        || punct(tokens, j, '=')
                        || punct(tokens, j, '{')
                        || punct(tokens, j, '}')
                    {
                        break;
                    }
                    if matches!(ident(tokens, j), Some("Mutex" | "RwLock")) {
                        push_unique(names, name);
                        break;
                    }
                    j += 1;
                }
            }
            // `let [mut] name = ... Mutex::new(...)`.
            if name == "let" {
                let mut b = i + 1;
                if ident(tokens, b) == Some("mut") {
                    b += 1;
                }
                if let Some(binding) = ident(tokens, b) {
                    let mut j = b + 1;
                    let end = (b + 1 + DECL_BUDGET).min(tokens.len());
                    while j < end && !punct(tokens, j, ';') {
                        if matches!(ident(tokens, j), Some("Mutex" | "RwLock"))
                            && punct(tokens, j + 1, ':')
                            && punct(tokens, j + 2, ':')
                            && ident(tokens, j + 3) == Some("new")
                        {
                            push_unique(names, binding);
                            break;
                        }
                        j += 1;
                    }
                }
            }
        }
        i += 1;
    }
}

fn push_unique(names: &mut Vec<String>, name: &str) {
    if !names.iter().any(|n| n == name) {
        names.push(name.to_owned());
    }
}

/// Function spans `(name, body_open, body_close)` in token indices.
fn fn_spans(tokens: &[Token]) -> Vec<(String, usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if ident(tokens, i) == Some("fn") {
            if let Some(name) = ident(tokens, i + 1) {
                // First `{` or `;` after the signature decides whether
                // there is a body (trait methods may have none).
                let mut j = i + 2;
                while j < tokens.len() && !punct(tokens, j, '{') && !punct(tokens, j, ';') {
                    j += 1;
                }
                if punct(tokens, j, '{') {
                    spans.push((name.to_owned(), j, match_brace(tokens, j)));
                }
            }
        }
        i += 1;
    }
    spans
}

/// Walks each function body tracking held guards and records
/// acquired-while-holding edges.
fn collect_edges(
    f: &SourceFile,
    crate_key: &str,
    lock_names: &[String],
    edges: &mut HashMap<(String, String), Edge>,
) {
    let tokens = &f.tokens;
    let spans = fn_spans(tokens);
    for (si, (func, open, close)) in spans.iter().enumerate() {
        // Token ranges of functions nested inside this one — analysed
        // on their own iteration, skipped here.
        let nested: Vec<(usize, usize)> = spans
            .iter()
            .enumerate()
            .filter(|(sj, (_, o, c))| *sj != si && *o > *open && *c < *close)
            .map(|(_, (_, o, c))| (*o, *c))
            .collect();

        // (lock, binding): binding is Some for `let`-bound guards.
        let mut held: Vec<(String, Option<String>)> = Vec::new();
        let mut stmt_temps: Vec<String> = Vec::new();
        let mut stmt_is_let = false;
        let mut stmt_binding: Option<String> = None;
        let mut at_stmt_start = true;

        let mut i = *open + 1;
        while i < *close {
            if let Some(&(_, nc)) = nested.iter().find(|(no, _)| *no == i) {
                i = nc + 1;
                continue;
            }
            if punct(tokens, i, ';') || punct(tokens, i, '{') || punct(tokens, i, '}') {
                stmt_temps.clear();
                stmt_is_let = false;
                stmt_binding = None;
                at_stmt_start = true;
                i += 1;
                continue;
            }
            if at_stmt_start {
                at_stmt_start = false;
                if ident(tokens, i) == Some("let") {
                    stmt_is_let = true;
                    let mut b = i + 1;
                    if ident(tokens, b) == Some("mut") {
                        b += 1;
                    }
                    stmt_binding = ident(tokens, b).map(str::to_owned);
                }
            }
            // `drop(binding)` releases that guard.
            if ident(tokens, i) == Some("drop") && punct(tokens, i + 1, '(') {
                if let Some(arg) = ident(tokens, i + 2) {
                    if punct(tokens, i + 3, ')') {
                        held.retain(|(_, b)| b.as_deref() != Some(arg));
                    }
                }
            }
            // `name.lock()` / `name.read()` / `name.write()`.
            if let Some(lock) = acquisition(tokens, i, lock_names) {
                let qualified = format!("{crate_key}::{lock}");
                let line = tokens[i].line;
                if !f.is_test_line(line) {
                    let holders = held
                        .iter()
                        .map(|(h, _)| h.as_str())
                        .chain(stmt_temps.iter().map(String::as_str));
                    for h in holders {
                        if h != qualified {
                            edges
                                .entry((h.to_owned(), qualified.clone()))
                                .or_insert_with(|| Edge {
                                    file: f.rel_path.clone(),
                                    line,
                                    func: func.clone(),
                                });
                        }
                    }
                    if stmt_is_let {
                        held.push((qualified, stmt_binding.clone()));
                    } else {
                        stmt_temps.push(qualified);
                    }
                }
            }
            i += 1;
        }
    }
}

/// Matches `recv . lock ( )` (or `read`/`write`) with the receiver
/// at token `i`, returning the receiver name when it is a declared
/// lock. The empty argument list plus the declared-name requirement
/// keep `io::Read::read(buf)`-style calls from matching.
fn acquisition<'t>(tokens: &'t [Token], i: usize, lock_names: &[String]) -> Option<&'t str> {
    let recv = ident(tokens, i)?;
    if !punct(tokens, i + 1, '.') {
        return None;
    }
    let method = ident(tokens, i + 2)?;
    if !matches!(method, "lock" | "read" | "write") {
        return None;
    }
    if !(punct(tokens, i + 3, '(') && punct(tokens, i + 4, ')')) {
        return None;
    }
    lock_names.iter().any(|n| n == recv).then_some(recv)
}

/// Iterative Tarjan strongly-connected components; returns the SCC
/// id of each node.
fn tarjan_scc(adj: &[Vec<usize>]) -> Vec<usize> {
    let n = adj.len();
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut scc = vec![UNSET; n];
    let mut stack = Vec::new();
    let mut next_index = 0usize;
    let mut next_scc = 0usize;

    // Explicit call stack: (node, next child position).
    let mut call: Vec<(usize, usize)> = Vec::new();
    for start in 0..n {
        if index[start] != UNSET {
            continue;
        }
        call.push((start, 0));
        index[start] = next_index;
        lowlink[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;
        while let Some(&mut (v, ref mut child)) = call.last_mut() {
            if *child < adj[v].len() {
                let w = adj[v][*child];
                *child += 1;
                if index[w] == UNSET {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        scc[w] = next_scc;
                        if w == v {
                            break;
                        }
                    }
                    next_scc += 1;
                }
            }
        }
    }
    scc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let parsed: Vec<SourceFile> = files
            .iter()
            .map(|(rel, src)| SourceFile::parse(rel, src))
            .collect();
        let mut out = Vec::new();
        check(
            &parsed,
            &Config {
                fixtures_mode: true,
            },
            &mut out,
        );
        out
    }

    #[test]
    fn opposite_order_in_two_fns_is_a_cycle() {
        let src = "struct S { a: Mutex<u8>, b: Mutex<u8> }\n\
                   fn one(s: &S) {\n    let ga = s.a.lock();\n    let gb = s.b.lock();\n}\n\
                   fn two(s: &S) {\n    let gb = s.b.lock();\n    let ga = s.a.lock();\n}\n";
        let out = run(&[("lock_cycle.rs", src)]);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().all(|f| f.rule == "lock-order"));
        assert!(out[0].message.contains("deadlock potential"));
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "struct S { a: Mutex<u8>, b: Mutex<u8> }\n\
                   fn one(s: &S) {\n    let ga = s.a.lock();\n    let gb = s.b.lock();\n}\n\
                   fn two(s: &S) {\n    let ga = s.a.lock();\n    s.b.lock().unwrap();\n}\n";
        assert!(run(&[("lock_ok.rs", src)]).is_empty());
    }

    #[test]
    fn drop_releases_the_guard() {
        let src = "struct S { a: Mutex<u8>, b: Mutex<u8> }\n\
                   fn one(s: &S) {\n    let ga = s.a.lock();\n    drop(ga);\n    let gb = s.b.lock();\n}\n\
                   fn two(s: &S) {\n    let gb = s.b.lock();\n    drop(gb);\n    let ga = s.a.lock();\n}\n";
        assert!(run(&[("lock_drop.rs", src)]).is_empty());
    }

    #[test]
    fn io_read_write_calls_do_not_match() {
        let src = "struct S { a: Mutex<u8> }\n\
                   fn one(s: &S, f: &mut File, buf: &mut [u8]) {\n    let ga = s.a.lock();\n    f.read(buf);\n    f.write(buf);\n}\n";
        assert!(run(&[("lock_io.rs", src)]).is_empty());
    }

    #[test]
    fn rwlock_read_write_count_as_acquisitions() {
        let src = "struct S { a: RwLock<u8>, b: Mutex<u8> }\n\
                   fn one(s: &S) {\n    let ga = s.a.read();\n    let gb = s.b.lock();\n}\n\
                   fn two(s: &S) {\n    let gb = s.b.lock();\n    let ga = s.a.write();\n}\n";
        let out = run(&[("lock_rw.rs", src)]);
        assert_eq!(out.len(), 2, "{out:?}");
    }

    #[test]
    fn same_names_in_different_crates_stay_distinct() {
        let a = "struct S { a: Mutex<u8>, b: Mutex<u8> }\nfn one(s: &S) {\n    let ga = s.a.lock();\n    let gb = s.b.lock();\n}\n";
        let b = "struct S { a: Mutex<u8>, b: Mutex<u8> }\nfn two(s: &S) {\n    let gb = s.b.lock();\n    let ga = s.a.lock();\n}\n";
        assert!(run(&[("lock_x.rs", a), ("lock_y.rs", b)]).is_empty());
    }
}
