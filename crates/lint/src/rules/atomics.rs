//! atomics: weak atomic orderings (`Relaxed` / `Acquire` / `Release`
//! / `AcqRel`) are only allowed in the approved lock-free modules
//! (seqlock ring, rayon pool, archive writer counters), and every
//! such site needs an `// ORDERING:` comment explaining why the
//! weaker ordering is sound. `SeqCst` is always fine.

use crate::config::Config;
use crate::findings::Finding;
use crate::source::SourceFile;

const RULE: &str = "atomics";

const WEAK_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel"];

pub fn check(f: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
    let approved = cfg.approved_atomics_module(&f.rel_path);
    for i in 0..f.tokens.len() {
        let Some(ord) = weak_ordering(f, i) else {
            continue;
        };
        let line = f.tokens[i].line;
        if f.is_test_line(line) || f.is_allowed(RULE, line) {
            continue;
        }
        if !approved {
            out.push(Finding::new(
                &f.rel_path,
                line,
                RULE,
                format!("weak atomic ordering `Ordering::{ord}` outside the approved lock-free modules (use SeqCst or move the code into an approved module)"),
            ));
        } else if !f.has_justification("ORDERING:", line) {
            out.push(Finding::new(
                &f.rel_path,
                line,
                RULE,
                format!("`Ordering::{ord}` without an `// ORDERING:` justification comment"),
            ));
        }
    }
}

/// Matches `Ordering :: <weak>` with the finding anchored at the
/// `Ordering` token.
fn weak_ordering(f: &SourceFile, i: usize) -> Option<&str> {
    if f.ident_at(i)? != "Ordering" || !(f.punct_at(i + 1, ':') && f.punct_at(i + 2, ':')) {
        return None;
    }
    let ord = f.ident_at(i + 3)?;
    WEAK_ORDERINGS.contains(&ord).then_some(ord)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rel: &str, src: &str) -> Vec<Finding> {
        let f = SourceFile::parse(rel, src);
        let mut out = Vec::new();
        check(&f, &Config::default(), &mut out);
        out
    }

    #[test]
    fn weak_ordering_outside_approved_module_fires() {
        let out = run(
            "crates/sim/src/scenario.rs",
            "fn t() { x.load(Ordering::Relaxed); }\n",
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("outside the approved"));
    }

    #[test]
    fn seqcst_is_always_fine() {
        assert!(run(
            "crates/sim/src/scenario.rs",
            "fn t() { x.load(Ordering::SeqCst); }\n"
        )
        .is_empty());
    }

    #[test]
    fn approved_module_requires_ordering_comment() {
        let bare = "fn t() { x.load(Ordering::Acquire); }\n";
        let out = run("crates/stream/src/ring.rs", bare);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("ORDERING:"));

        let justified = "fn t() {\n    // ORDERING: pairs with the Release store in publish().\n    x.load(Ordering::Acquire);\n}\n";
        assert!(run("crates/stream/src/ring.rs", justified).is_empty());
    }

    #[test]
    fn trailing_ordering_comment_counts() {
        let src = "fn t() { x.load(Ordering::Acquire); } // ORDERING: pairs with store\n";
        assert!(run("compat/rayon/src/lib.rs", src).is_empty());
    }

    #[test]
    fn test_code_is_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { x.load(Ordering::Relaxed); }\n}\n";
        assert!(run("crates/sim/src/scenario.rs", src).is_empty());
    }
}
