//! panic-path: long-running server code (daemon accept/subscriber
//! loops, fleet rig supervision) must degrade gracefully, not die.
//! A panicking `.unwrap()` in a subscriber thread silently kills that
//! client forever; in the accept loop it takes the whole service down.

use crate::config::Config;
use crate::findings::Finding;
use crate::source::SourceFile;

const RULE: &str = "panic-path";

/// Macros that abort the thread.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

pub fn check(f: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
    if !cfg.panic_scope(&f.rel_path) {
        return;
    }
    for i in 0..f.tokens.len() {
        let Some(what) = panic_site(f, i) else {
            continue;
        };
        let line = f.tokens[i].line;
        if f.is_test_line(line) || f.is_allowed(RULE, line) {
            continue;
        }
        out.push(Finding::new(
            &f.rel_path,
            line,
            RULE,
            format!(
                "`{what}` on a server hot path (log and degrade instead of panicking the thread)"
            ),
        ));
    }
}

fn panic_site(f: &SourceFile, i: usize) -> Option<String> {
    let id = f.ident_at(i)?;
    // `.unwrap()` / `.expect(...)` method calls — require the leading
    // `.` so local fns or enum variants named `expect` don't fire.
    if (id == "unwrap" || id == "expect")
        && i > 0
        && f.punct_at(i - 1, '.')
        && f.punct_at(i + 1, '(')
    {
        return Some(format!(".{id}()"));
    }
    if PANIC_MACROS.contains(&id) && f.punct_at(i + 1, '!') {
        return Some(format!("{id}!"));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rel: &str, src: &str) -> Vec<Finding> {
        let f = SourceFile::parse(rel, src);
        let mut out = Vec::new();
        check(&f, &Config::default(), &mut out);
        out
    }

    #[test]
    fn flags_unwrap_expect_and_panic_macros() {
        let src = "fn serve() {\n    x.unwrap();\n    y.expect(\"m\");\n    panic!(\"boom\");\n    unreachable!();\n}\n";
        let out = run("crates/stream/src/daemon.rs", src);
        assert_eq!(out.len(), 4);
        assert_eq!(out[0].line, 2);
        assert!(out[0].message.contains(".unwrap()"));
        assert!(out[3].message.contains("unreachable!"));
    }

    #[test]
    fn unwrap_or_and_bare_names_do_not_fire() {
        let src = "fn serve() {\n    x.unwrap_or(0);\n    x.unwrap_or_else(f);\n    let expect = 3;\n    f(expect);\n}\n";
        assert!(run("crates/stream/src/daemon.rs", src).is_empty());
    }

    #[test]
    fn out_of_scope_and_tests_skipped() {
        assert!(run("crates/bench/src/driver.rs", "fn t() { x.unwrap(); }\n").is_empty());
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        assert!(run("crates/stream/src/daemon.rs", src).is_empty());
    }

    #[test]
    fn allow_with_reason_suppresses() {
        let src = "fn serve() {\n    x.unwrap(); // ps3-lint: allow(panic-path) reason=\"poisoned lock is unrecoverable\"\n}\n";
        assert!(run("crates/stream/src/daemon.rs", src).is_empty());
    }
}
