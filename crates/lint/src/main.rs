//! ps3-lint CLI.
//!
//! ```text
//! ps3-lint check [--json] [--root DIR]     lint the workspace; exit 1 on findings
//! ps3-lint check --fixtures [--json]       prove every rule fires on the planted fixtures
//! ps3-lint list-rules [--json]             print the rule catalog
//! ```

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use ps3_lint::config::RULE_IDS;
use ps3_lint::findings::to_json;
use ps3_lint::fixtures::check_fixtures;
use ps3_lint::run_check;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut json = false;
    let mut fixtures = false;
    let mut root = PathBuf::from(".");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--fixtures" => fixtures = true,
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root needs a directory"),
            },
            "check" | "list-rules" if cmd.is_none() => cmd = Some(a.as_str()),
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    match cmd {
        Some("list-rules") => {
            if json {
                let mut out = String::from("[\n");
                for (i, (id, desc)) in RULE_IDS.iter().enumerate() {
                    out.push_str(&format!(
                        "  {{\"rule\":\"{id}\",\"description\":\"{}\"}}{}",
                        desc.replace('"', "\\\""),
                        if i + 1 < RULE_IDS.len() { ",\n" } else { "\n" }
                    ));
                }
                out.push(']');
                println!("{out}");
            } else {
                for (id, desc) in RULE_IDS {
                    println!("{id:<14} {desc}");
                }
            }
            ExitCode::SUCCESS
        }
        Some("check") if fixtures => {
            let dir = root.join("crates/lint/fixtures");
            let dir = if dir.is_dir() {
                dir
            } else {
                // Running from inside crates/lint.
                root.join("fixtures")
            };
            match check_fixtures(&dir) {
                Ok(report) => {
                    if json {
                        println!(
                            "{{\"matched\":{},\"missing\":{},\"unexpected\":{}}}",
                            report.matched.len(),
                            report.missing.len(),
                            report.unexpected.len()
                        );
                    } else {
                        println!("fixtures: {} expectations matched", report.matched.len());
                        for m in &report.missing {
                            println!("MISSING   {m} (planted violation did not fire)");
                        }
                        for u in &report.unexpected {
                            println!("UNEXPECTED {u} (finding with no //~ marker)");
                        }
                    }
                    if report.ok() {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("ps3-lint: fixtures: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("check") => match run_check(&root) {
            Ok(findings) => {
                if json {
                    println!("{}", to_json(&findings));
                } else if findings.is_empty() {
                    println!("ps3-lint: clean");
                } else {
                    for f in &findings {
                        println!("{f}");
                    }
                    eprintln!("ps3-lint: {} finding(s)", findings.len());
                }
                if findings.is_empty() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("ps3-lint: {e}");
                ExitCode::FAILURE
            }
        },
        _ => usage("expected a command: check | list-rules"),
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("ps3-lint: {err}");
    }
    eprintln!(
        "usage: ps3-lint check [--json] [--root DIR]\n       ps3-lint check --fixtures [--json]\n       ps3-lint list-rules [--json]"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
