//! Planted-violation fixture checking, rustc-UI style.
//!
//! Each file under `crates/lint/fixtures/` plants violations and
//! marks every expected finding with a `//~ rule-id` comment on the
//! same line. The checker runs the full rule set in fixtures mode
//! (filename-prefix scoping, see [`crate::config::Config`]) and
//! demands an exact match both ways: every marker fires, and nothing
//! unmarked fires. This is what proves in CI that each rule actually
//! detects its violation class.

use std::fs;
use std::io;
use std::path::Path;

use crate::config::Config;
use crate::rules::run_all;
use crate::source::SourceFile;
use crate::walk::collect_rs_files;

/// Outcome of a fixture run.
#[derive(Debug, Default)]
pub struct FixtureReport {
    /// Expectations that matched a finding (`file:line rule`).
    pub matched: Vec<String>,
    /// Expectations with no finding.
    pub missing: Vec<String>,
    /// Findings with no expectation.
    pub unexpected: Vec<String>,
}

impl FixtureReport {
    #[must_use]
    pub fn ok(&self) -> bool {
        self.missing.is_empty() && self.unexpected.is_empty() && !self.matched.is_empty()
    }
}

/// Runs the rules over the fixture tree and reconciles findings
/// against the `//~ rule-id` markers.
pub fn check_fixtures(dir: &Path) -> io::Result<FixtureReport> {
    let mut files = Vec::new();
    let mut expectations: Vec<(String, u32, String)> = Vec::new();
    for (rel, path) in collect_rs_files(dir, &[])? {
        let src = fs::read_to_string(&path)?;
        let parsed = SourceFile::parse(&rel, &src);
        collect_expectations(&parsed, &mut expectations);
        files.push(parsed);
    }
    let findings = run_all(
        &files,
        &Config {
            fixtures_mode: true,
        },
    );

    let mut report = FixtureReport::default();
    let mut unmatched = findings.clone();
    for (file, line, rule) in expectations {
        let label = format!("{file}:{line} {rule}");
        match unmatched
            .iter()
            .position(|f| f.file == file && f.line == line && f.rule == rule)
        {
            Some(i) => {
                unmatched.remove(i);
                report.matched.push(label);
            }
            None => report.missing.push(label),
        }
    }
    report.unexpected = unmatched.iter().map(ToString::to_string).collect();
    report.matched.sort();
    report.missing.sort();
    report.unexpected.sort();
    Ok(report)
}

/// Extracts `//~ rule-id` (this line) and `//~^ rule-id` (previous
/// line) markers. Merged own-line comment blocks are split back into
/// lines so each marker keeps its own line number.
fn collect_expectations(f: &SourceFile, out: &mut Vec<(String, u32, String)>) {
    for c in &f.comments {
        for (off, text) in c.text.split('\n').enumerate() {
            let Some(mut rest) = text.trim_start().strip_prefix('~') else {
                continue;
            };
            let mut line = c.line + off as u32;
            while let Some(up) = rest.strip_prefix('^') {
                rest = up;
                line = line.saturating_sub(1);
            }
            let rule = rest.split_whitespace().next().unwrap_or("");
            if rule.is_empty() {
                continue;
            }
            out.push((f.rel_path.clone(), line, rule.to_owned()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markers_are_extracted_with_lines() {
        let src = "fn t() {\n    x.unwrap(); //~ panic-path\n}\n";
        let f = SourceFile::parse("panic_t.rs", src);
        let mut out = Vec::new();
        collect_expectations(&f, &mut out);
        assert_eq!(
            out,
            vec![("panic_t.rs".to_owned(), 2, "panic-path".to_owned())]
        );
    }

    #[test]
    fn own_line_marker_keeps_its_line() {
        let src = "//~ forbid-unsafe\npub fn a() {}\n";
        let f = SourceFile::parse("forbidcrate/src/lib.rs", src);
        let mut out = Vec::new();
        collect_expectations(&f, &mut out);
        assert_eq!(out[0].1, 1);
    }

    #[test]
    fn shipped_fixture_tree_reconciles_exactly() {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
        let report = check_fixtures(&dir).unwrap();
        assert!(
            report.ok(),
            "missing: {:?}\nunexpected: {:?}",
            report.missing,
            report.unexpected
        );
    }
}
