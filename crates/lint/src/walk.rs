//! Workspace walker: collects `.rs` files in deterministic order.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "node_modules"];

/// Collects every `.rs` file under `root`, sorted by relative path.
/// `skip_rel_prefixes` drops subtrees by relative-path prefix (used to
/// keep planted fixtures out of the real check).
pub fn collect_rs_files(
    root: &Path,
    skip_rel_prefixes: &[&str],
) -> io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let ty = entry.file_type()?;
            if ty.is_dir() {
                if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                    continue;
                }
                let rel = rel_of(root, &path);
                if skip_rel_prefixes.iter().any(|p| rel.starts_with(p)) {
                    continue;
                }
                stack.push(path);
            } else if ty.is_file() && name.ends_with(".rs") {
                let rel = rel_of(root, &path);
                if skip_rel_prefixes.iter().any(|p| rel.starts_with(p)) {
                    continue;
                }
                out.push((rel, path));
            }
        }
    }
    out.sort();
    Ok(out)
}

/// `/`-separated path of `path` relative to `root`.
fn rel_of(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let mut s = String::new();
    for comp in rel.components() {
        if !s.is_empty() {
            s.push('/');
        }
        s.push_str(&comp.as_os_str().to_string_lossy());
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walks_own_crate_sorted() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"));
        let files = collect_rs_files(root, &["fixtures/"]).unwrap();
        let rels: Vec<&str> = files.iter().map(|(r, _)| r.as_str()).collect();
        assert!(rels.contains(&"src/lexer.rs"));
        assert!(rels.contains(&"src/walk.rs"));
        assert!(rels.iter().all(|r| !r.starts_with("fixtures/")));
        let mut sorted = rels.clone();
        sorted.sort_unstable();
        assert_eq!(rels, sorted);
    }
}
