// Planted unsafe-safety violation: `unsafe` with no `// SAFETY:`
// comment. The rule applies to every file, fixtures prefix or not.

fn read_reg(addr: *const u32) -> u32 {
    unsafe { core::ptr::read_volatile(addr) } //~ unsafe-safety
}

fn documented_read(addr: *const u32) -> u32 {
    // SAFETY: addr is a valid, aligned MMIO register mapped for the
    // whole program lifetime; the volatile read has no aliasing
    // requirements beyond validity.
    unsafe { core::ptr::read_volatile(addr) }
}

// SAFETY: the type owns no thread-affine state; the marker impl only
// asserts what the fields already guarantee.
unsafe impl Send for Wrapper {}
