// Planted atomics violations: weak orderings outside the approved
// lock-free modules. (`atomics_outside` does not carry the
// `atomics_ring` fixture prefix, so this file is unapproved.)

fn counter_bump(count: &AtomicU64, flag: &AtomicBool) {
    count.fetch_add(1, Ordering::Relaxed); //~ atomics
    flag.store(true, Ordering::Release); //~ atomics
    while !flag.load(Ordering::Acquire) {} //~ atomics
}

fn seqcst_is_always_fine(count: &AtomicU64) {
    count.fetch_add(1, Ordering::SeqCst);
}

fn allowed_relaxed(count: &AtomicU64) {
    // ps3-lint: allow(atomics) reason="fixture: monotonic stat counter, no ordering required"
    count.fetch_add(1, Ordering::Relaxed);
}
