// Planted lock-order cycle: two functions acquire the same pair of
// mutexes in opposite orders. In fixtures mode, `lock_`-prefixed
// files stand in for the stream/fleet/rayon lock-order scope.

struct Shared {
    clients: Mutex<Vec<u8>>,
    rigs: Mutex<Vec<Rig>>,
}

fn shutdown(s: &Shared) {
    let clients = s.clients.lock().unwrap();
    let rigs = s.rigs.lock().unwrap(); //~ lock-order
    stop_all(clients, rigs);
}

fn supervise(s: &Shared) {
    let rigs = s.rigs.lock().unwrap();
    let clients = s.clients.lock().unwrap(); //~ lock-order
    restart_crashed(rigs, clients);
}

fn consistent_order_is_fine(s: &Shared) {
    let clients = s.clients.lock().unwrap();
    drop(clients);
    let rigs = s.rigs.lock().unwrap();
    drop(rigs);
}
