// Planted allow-syntax violations: directives must parse and carry a
// non-empty quoted reason, and may only name known rule ids.

fn missing_reason() {}
// ps3-lint: allow(determinism)
//~^ allow-syntax

fn unknown_rule() {} // ps3-lint: allow(no-such-rule) reason="valid reason, bogus rule id"
//~^ allow-syntax

fn unquoted_reason() {}
// ps3-lint: allow(determinism) reason=unquoted
//~^ allow-syntax

fn well_formed(d: Duration) {
    // ps3-lint: allow(panic-path) reason="fixture: a well-formed directive is not a finding"
    takes(d);
}
