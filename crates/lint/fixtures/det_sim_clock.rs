// Planted determinism violations. In fixtures mode, `det_`-prefixed
// files stand in for the sim-deterministic scope (crates/sim,
// crates/archive, crates/bench). Not compiled — lexed only.

fn sample_time() {
    let t = Instant::now(); //~ determinism
    let w = SystemTime::now(); //~ determinism
    use_both(t, w);
}

fn wait_for_device(d: Duration) {
    std::thread::sleep(d); //~ determinism
}

fn allowed_wait(d: Duration) {
    // ps3-lint: allow(determinism) reason="fixture: allowlisted waits must not fire"
    thread::sleep(d);
}

fn virtual_clock_is_fine(clock: &VirtualClock) -> u64 {
    clock.now_micros()
}

#[cfg(test)]
mod tests {
    fn wall_clock_in_test_scope_is_fine() {
        let _ = Instant::now();
    }
}
