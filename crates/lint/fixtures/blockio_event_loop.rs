// Planted blocking-io violations. In fixtures mode, `blockio_`-prefixed
// files stand in for the event-loop module scope (the stream reactor
// and the fleet merge handler).

fn accept_loop(listener: &TcpListener) {
    for conn in listener.incoming() {
        let mut sock = conn.expect("accept");
        std::thread::spawn(move || { //~ blocking-io
            let mut len = [0u8; 4];
            sock.read_exact(&mut len).ok(); //~ blocking-io
            sock.write_all(&len).ok(); //~ blocking-io
        });
    }
}

fn timed_blocking_mode(sock: &TcpStream) {
    sock.set_read_timeout(Some(TIMEOUT)).ok(); //~ blocking-io
    sock.set_write_timeout(Some(TIMEOUT)).ok(); //~ blocking-io
}

fn builder_variant(work: impl FnOnce() + Send + 'static) {
    std::thread::Builder::new()
        .name("per-conn".into())
        .spawn(work) //~ blocking-io
        .ok();
}

fn readiness_variant(sock: &mut TcpStream, out: &mut OutQueue) {
    sock.set_nonblocking(true).ok();
    let mut chunk = [0u8; 4096];
    let _ = sock.read(&mut chunk);
    let _ = out.write_some(sock);
}

fn allowed_loop_thread(reactor: Reactor) {
    std::thread::spawn(move || reactor.run()); // ps3-lint: allow(blocking-io) reason="fixture: the one event-loop thread itself, not per-connection"
}

#[cfg(test)]
mod tests {
    fn blocking_in_test_scope_is_fine(sock: &mut TcpStream) {
        sock.write_all(b"x").unwrap();
    }
}
