//~ forbid-unsafe
// Planted forbid-unsafe violation: this fixture crate root has an
// unsafe-free src tree but no `#![forbid(unsafe_code)]` declaration.

pub fn safe_helper() -> u32 {
    7
}
