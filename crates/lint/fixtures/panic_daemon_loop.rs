// Planted panic-path violations. In fixtures mode, `panic_`-prefixed
// files stand in for the daemon/coordinator hot-path scope.

fn subscriber_loop(rx: &Receiver, sock: &mut TcpStream, buf: &[u8]) {
    let frame = rx.recv().unwrap(); //~ panic-path
    sock.write_all(buf).expect("socket write"); //~ panic-path
    if frame.stale() {
        panic!("stale frame in subscriber"); //~ panic-path
    }
    match frame.kind() {
        Kind::Data => forward(frame),
        Kind::Control => unreachable!("control frames are filtered"), //~ panic-path
    }
}

fn graceful_variant(rx: &Receiver) {
    let Ok(frame) = rx.recv() else {
        return;
    };
    forward(frame);
}

fn allowed_unwrap(lock: &Mutex<u8>) {
    let g = lock.lock().unwrap(); // ps3-lint: allow(panic-path) reason="fixture: poisoned lock is unrecoverable by design"
    drop(g);
}

#[cfg(test)]
mod tests {
    fn unwrap_in_test_scope_is_fine(rx: &Receiver) {
        rx.recv().unwrap();
    }
}
