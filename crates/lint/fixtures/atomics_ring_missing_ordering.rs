// Planted atomics violation inside an approved module: weak
// orderings are allowed here (`atomics_ring` fixture prefix), but
// every site still needs an `// ORDERING:` justification.

fn publish(seq: &AtomicU64) {
    seq.store(1, Ordering::Release); //~ atomics

    // ORDERING: Release pairs with the Acquire load in read_frame();
    // the odd/even sequence word publishes the payload bytes written
    // before it (seqlock protocol).
    seq.store(2, Ordering::Release);
}

fn read_frame(seq: &AtomicU64) -> u64 {
    seq.load(Ordering::Acquire) // ORDERING: pairs with the Release store in publish()
}
