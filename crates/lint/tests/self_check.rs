//! The lint gate applied to the tree it ships in.
//!
//! Two promises back the CI stage: the workspace itself is clean
//! (every real finding has been fixed or carries a reasoned allow),
//! and every rule demonstrably fires on its planted fixture. Both are
//! asserted here so `cargo test` alone catches a regression even
//! before `ci.sh`'s lint-smoke stage runs.

use std::path::{Path, PathBuf};

use ps3_lint::config::RULE_IDS;
use ps3_lint::fixtures::check_fixtures;
use ps3_lint::run_check;

fn workspace_root() -> PathBuf {
    // crates/lint -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("lint crate sits two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn workspace_is_lint_clean() {
    let findings = run_check(&workspace_root()).expect("walk workspace");
    assert!(
        findings.is_empty(),
        "ps3-lint found {} issue(s) in the workspace:\n{}",
        findings.len(),
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn every_rule_fires_on_its_fixture() {
    let dir = workspace_root().join("crates/lint/fixtures");
    let report = check_fixtures(&dir).expect("walk fixtures");
    assert!(
        report.missing.is_empty(),
        "planted violations not detected: {:?}",
        report.missing
    );
    assert!(
        report.unexpected.is_empty(),
        "findings without a //~ marker: {:?}",
        report.unexpected
    );
    // Coverage: every rule in the catalog must be exercised by at
    // least one planted violation, so a rule can't silently rot.
    for (rule, _) in RULE_IDS {
        assert!(
            report
                .matched
                .iter()
                .any(|m| m.ends_with(&format!(" {rule}"))),
            "no fixture exercises rule `{rule}` (matched: {:?})",
            report.matched
        );
    }
}

#[test]
fn fixture_findings_carry_exact_locations() {
    // Spot-check exact `file:line rule` triples so a lexer or
    // line-accounting regression can't shift findings around while
    // the both-ways reconciliation still happens to balance.
    let dir = workspace_root().join("crates/lint/fixtures");
    let report = check_fixtures(&dir).expect("walk fixtures");
    for expected in [
        "det_sim_clock.rs:6 determinism",
        "panic_daemon_loop.rs:5 panic-path",
        "forbidcrate/src/lib.rs:1 forbid-unsafe",
    ] {
        assert!(
            report.matched.iter().any(|m| m == expected),
            "expected matched fixture `{expected}`, got: {:?}",
            report.matched
        );
    }
}
