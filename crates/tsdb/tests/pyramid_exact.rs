//! Property tests pinning the pyramid exactness contract: for
//! arbitrary captures, markers, and query ranges — including empty and
//! single-frame ones — the pyramid-served `stats`, `energy`,
//! `energy_between`, and `downsample` answers are bit-identical to the
//! `*_ref` reference paths (same decomposition, tiers recomputed from
//! decoded frames), counts/extremes are bit-identical to the flat
//! archive paths, and sums/energies agree with the flat paths to
//! float-regrouping precision.
//!
//! A shrunken fan-out (2 blocks per tier-1 node, 2 tier-1 nodes per
//! tier-2 node) keeps all three tiers in play at test-size captures.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use ps3_archive::{Archive, ArchiveError, ArchiveFrame, SegmentWriter};
use ps3_firmware::{SensorConfig, SENSOR_SLOTS};
use ps3_tsdb::{PyramidConfig, Tsdb};
use ps3_units::SimTime;

const SMALL: PyramidConfig = PyramidConfig {
    tier1_blocks: 2,
    tier2_nodes: 2,
};

fn temp_path(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("ps3-tsdb-px-{}-{tag}-{n}.ps3a", std::process::id()))
}

fn cleanup(path: &Path) {
    for ext in ["", ".ps3x", ".ps3p", ".ps3s"] {
        let mut p = path.as_os_str().to_os_string();
        p.push(ext);
        std::fs::remove_file(PathBuf::from(p)).ok();
    }
}

fn test_configs() -> [SensorConfig; SENSOR_SLOTS] {
    let mut configs: [SensorConfig; SENSOR_SLOTS] =
        core::array::from_fn(|_| SensorConfig::unpopulated());
    configs[0] = SensorConfig::new("I0", 3.3, 0.105, true);
    configs[1] = SensorConfig::new("U0", 3.3, 0.2171, true);
    configs[2] = SensorConfig::new("I1", 3.3, 0.063, true);
    configs[3] = SensorConfig::new("U1", 3.3, 1.0, true);
    configs
}

fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic capture expanded from a seed: mostly 50 µs cadence
/// with occasional jitter and long gaps, noisy values, a marker
/// (`a`..`d` cycling) every 97th frame.
fn build_frames(seed: u64, n: usize) -> Vec<ArchiveFrame> {
    let mut time_us = 25u64;
    (0..n)
        .map(|i| {
            let r = mix(seed ^ i as u64);
            if i > 0 {
                time_us += match r % 100 {
                    0..=89 => 50,
                    90..=97 => 1 + r / 100 % 1000,
                    _ => 500_000 + r / 100 % 500_000,
                };
            }
            let present = 0b1111u8 | (r >> 17) as u8 & 0xF0;
            let mut raw = [0u16; SENSOR_SLOTS];
            for (slot, out) in raw.iter_mut().enumerate() {
                if present & (1 << slot) != 0 {
                    *out = (mix(r ^ slot as u64) % 1024) as u16;
                }
            }
            let marker = (i % 97 == 0).then(|| char::from(b'a' + (i / 97 % 4) as u8));
            ArchiveFrame {
                time: SimTime::from_micros(time_us),
                raw,
                present,
                marker,
            }
        })
        .collect()
}

fn write_capture(path: &Path, frames: &[ArchiveFrame], segment_frames: usize) {
    let mut writer = SegmentWriter::create_with(path, test_configs(), segment_frames).unwrap();
    for &frame in frames {
        writer.push(frame).unwrap();
    }
    writer.finish().unwrap();
}

/// Relative agreement to float-regrouping precision.
fn approx(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

proptest! {
    #[test]
    fn pyramid_answers_are_exact(
        seed in 0u64..1 << 48,
        n in 1usize..6000,
        segment_frames in 100usize..4500,
        cut_lo in 0u64..=100,
        cut_hi in 0u64..=100,
        divisor_sel in 0u64..4,
    ) {
        let frames = build_frames(seed, n);
        let path = temp_path("exact");
        write_capture(&path, &frames, segment_frames);

        let tsdb = Tsdb::open_with(&path, SMALL).unwrap();
        let archive = Archive::open(&path).unwrap();

        let t0 = frames[0].time.as_micros();
        let t1 = frames[n - 1].time.as_micros();
        let span = t1 - t0 + 1;
        let mut lo = t0 + span * cut_lo / 100;
        let mut hi = t0 + span * cut_hi / 100;
        if lo > hi {
            std::mem::swap(&mut lo, &mut hi);
        }
        // Exercise empty, partial, and full ranges (+1 pushes past the
        // last sample when cut_hi == 100).
        let (start, end) = (SimTime::from_micros(lo), SimTime::from_micros(hi));

        // stats: bit-equal to the reference path, count/extremes
        // bit-equal to the flat path, sum to regrouping precision.
        let fast = tsdb.stats(start, end).unwrap();
        let reference = tsdb.stats_ref(start, end).unwrap();
        prop_assert_eq!(fast.count, reference.count);
        prop_assert_eq!(fast.sum_w.to_bits(), reference.sum_w.to_bits());
        prop_assert_eq!(fast.min_w.to_bits(), reference.min_w.to_bits());
        prop_assert_eq!(fast.max_w.to_bits(), reference.max_w.to_bits());
        let flat = archive.stats(start, end).unwrap();
        prop_assert_eq!(fast.count, flat.count);
        prop_assert_eq!(fast.min_w.to_bits(), flat.min_w.to_bits());
        prop_assert_eq!(fast.max_w.to_bits(), flat.max_w.to_bits());
        prop_assert!(approx(fast.sum_w, flat.sum_w), "{} vs {}", fast.sum_w, flat.sum_w);

        // energy: bit-equal to reference, regrouping-close to flat.
        let fast_e = tsdb.energy(start, end).unwrap().value();
        let ref_e = tsdb.energy_ref(start, end).unwrap().value();
        prop_assert_eq!(fast_e.to_bits(), ref_e.to_bits());
        let flat_e = archive.energy(start, end).unwrap().value();
        prop_assert!(approx(fast_e, flat_e), "{fast_e} vs {flat_e}");

        // downsample: identical to reference; identical times/counts
        // and regrouping-close means vs flat; identical markers.
        let divisor = [1, 7, 100, 2048][divisor_sel as usize];
        let fast_d = tsdb.downsample(start, end, divisor).unwrap();
        let ref_d = tsdb.downsample_ref(start, end, divisor).unwrap();
        prop_assert_eq!(&fast_d, &ref_d);
        let flat_d = archive.downsample(start, end, divisor).unwrap();
        prop_assert_eq!(fast_d.len(), flat_d.len());
        for (a, b) in fast_d.samples().iter().zip(flat_d.samples()) {
            prop_assert_eq!(a.time, b.time);
            prop_assert!(approx(a.power.value(), b.power.value()));
        }
        prop_assert_eq!(fast_d.markers(), flat_d.markers());

        cleanup(&path);
    }

    #[test]
    fn marker_delimited_energy_matches(
        seed in 0u64..1 << 48,
        n in 98usize..3000,
        segment_frames in 50usize..2500,
    ) {
        let frames = build_frames(seed, n);
        let path = temp_path("marker");
        write_capture(&path, &frames, segment_frames);
        let tsdb = Tsdb::open_with(&path, SMALL).unwrap();
        let archive = Archive::open(&path).unwrap();

        for (lo, hi) in [('a', 'b'), ('a', 'a'), ('b', 'd'), ('c', 'a')] {
            let fast = tsdb.energy_between(lo, hi);
            let reference = tsdb.energy_between_ref(lo, hi);
            let flat = archive.energy_between(lo, hi);
            match (fast, reference, flat) {
                (Ok(f), Ok(r), Ok(a)) => {
                    prop_assert_eq!(f.value().to_bits(), r.value().to_bits());
                    prop_assert!(approx(f.value(), a.value()));
                }
                (
                    Err(ArchiveError::MarkerNotFound(x)),
                    Err(ArchiveError::MarkerNotFound(y)),
                    Err(ArchiveError::MarkerNotFound(z)),
                ) => {
                    prop_assert_eq!(x, y);
                    prop_assert_eq!(x, z);
                }
                (f, r, a) => prop_assert!(false, "diverged: {f:?} {r:?} {a:?}"),
            }
        }

        cleanup(&path);
    }
}

#[test]
fn single_frame_capture_queries() {
    let frames = build_frames(7, 1);
    let path = temp_path("single");
    write_capture(&path, &frames, 10);
    let tsdb = Tsdb::open(&path).unwrap();
    let archive = Archive::open(&path).unwrap();

    let t = frames[0].time;
    let after = SimTime::from_micros(t.as_micros() + 1);
    let stats = tsdb.stats(t, after).unwrap();
    let flat = archive.stats(t, after).unwrap();
    assert_eq!(stats.count, 1);
    assert_eq!(stats.sum_w.to_bits(), flat.sum_w.to_bits());
    assert_eq!(tsdb.energy(t, after).unwrap().value(), 0.0);
    assert_eq!(tsdb.downsample(t, after, 1).unwrap().len(), 1);

    // Empty range on the same capture.
    let empty = tsdb.stats(t, t).unwrap();
    assert_eq!(empty.count, 0);
    assert_eq!(tsdb.energy(t, t).unwrap().value(), 0.0);
    assert!(tsdb.downsample(t, t, 5).unwrap().is_empty());

    cleanup(&path);
}

#[test]
fn sidecar_is_written_and_reused() {
    let frames = build_frames(11, 5000);
    let path = temp_path("sidecar");
    write_capture(&path, &frames, 1200);

    let first = Tsdb::open_with(&path, SMALL).unwrap();
    assert!(!first.from_sidecar(), "no sidecar existed yet");
    drop(first);
    let second = Tsdb::open_with(&path, SMALL).unwrap();
    assert!(second.from_sidecar(), "the rebuilt sidecar should be fresh");
    let counts = second.pyramid().counts();
    assert!(counts.blocks > 0 && counts.tier1 > 0 && counts.tier2 > 0);

    // A different fan-out invalidates the sidecar.
    let other = Tsdb::open_with(&path, PyramidConfig::default()).unwrap();
    assert!(!other.from_sidecar());

    cleanup(&path);
}
