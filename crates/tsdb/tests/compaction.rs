//! Compaction and retention end-to-end: answers survive compaction
//! bit-for-bit, an in-flight compaction can crash at any structural
//! byte without damaging the original capture, stale staging files are
//! harmless, and retention drops exactly the expired prefix.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use ps3_archive::format::{FILE_HEADER_SIZE, SEGMENT_HEADER_SIZE};
use ps3_archive::{frame_total, Archive, ArchiveFrame, SegmentWriter};
use ps3_firmware::{SensorConfig, SENSOR_SLOTS};
use ps3_sensors::AdcSpec;
use ps3_tsdb::{
    compact_archive, compact_tmp_path_for, retain_archive, retained_prefix_drop, stage_compacted,
    CompactOptions, PyramidConfig, Retention, Tsdb, TsdbWriter, TsdbWriterOptions,
};
use ps3_units::SimTime;

const SMALL: PyramidConfig = PyramidConfig {
    tier1_blocks: 2,
    tier2_nodes: 2,
};

fn temp_path(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("ps3-tsdb-cp-{}-{tag}-{n}.ps3a", std::process::id()))
}

fn cleanup(path: &Path) {
    for ext in ["", ".ps3x", ".ps3p", ".ps3s", ".compact-tmp"] {
        let mut p = path.as_os_str().to_os_string();
        p.push(ext);
        std::fs::remove_file(PathBuf::from(p)).ok();
    }
}

fn test_configs() -> [SensorConfig; SENSOR_SLOTS] {
    let mut configs: [SensorConfig; SENSOR_SLOTS] =
        core::array::from_fn(|_| SensorConfig::unpopulated());
    configs[0] = SensorConfig::new("I0", 3.3, 0.105, true);
    configs[1] = SensorConfig::new("U0", 3.3, 0.2171, true);
    configs
}

fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn build_frames(seed: u64, n: usize) -> Vec<ArchiveFrame> {
    (0..n)
        .map(|i| {
            let r = mix(seed ^ i as u64);
            let mut raw = [0u16; SENSOR_SLOTS];
            raw[0] = (r % 1024) as u16;
            raw[1] = (r >> 10 & 1023) as u16;
            ArchiveFrame {
                time: SimTime::from_micros(25 + 50 * i as u64),
                raw,
                present: 0b0011,
                marker: (i % 127 == 0).then_some('m'),
            }
        })
        .collect()
}

fn far_future() -> SimTime {
    SimTime::from_micros(u64::MAX / 1_000)
}

fn write_capture(path: &Path, frames: &[ArchiveFrame], segment_frames: usize) {
    let mut writer = SegmentWriter::create_with(path, test_configs(), segment_frames).unwrap();
    for &frame in frames {
        writer.push(frame).unwrap();
    }
    writer.finish().unwrap();
}

fn reference_trace(frames: &[ArchiveFrame]) -> ps3_analysis::Trace {
    let configs = test_configs();
    let adc = AdcSpec::POWERSENSOR3;
    let mut trace = ps3_analysis::Trace::with_capacity(frames.len());
    for f in frames {
        trace.push(f.time, frame_total(&configs, &adc, f));
        if let Some(label) = f.marker {
            trace.mark(f.time, label);
        }
    }
    trace
}

#[test]
fn compaction_preserves_every_answer() {
    let frames = build_frames(3, 2000);
    let path = temp_path("roundtrip");
    write_capture(&path, &frames, 150);

    let before = Archive::open(&path).unwrap();
    let segments_before = before.segments().len();
    let trace_before = before.read_all().unwrap();
    drop(before);

    let report = compact_archive(
        &path,
        CompactOptions {
            target_frames: 900,
            config: SMALL,
        },
    )
    .unwrap();
    assert_eq!(report.segments_before, segments_before);
    assert!(report.segments_after < segments_before);
    assert!(report.bytes_after <= report.bytes_before);

    let after = Archive::open(&path).unwrap();
    assert!(after.recovery().used_index, "index sidecar was rewritten");
    assert!(after.verify().unwrap().is_clean());
    assert_eq!(after.read_all().unwrap(), trace_before);
    let seqs: Vec<u32> = after.segments().iter().map(|s| s.header.seq).collect();
    assert_eq!(seqs, (0..report.segments_after as u32).collect::<Vec<_>>());

    // The rewritten pyramid sidecar is fresh and still exact.
    let tsdb = Tsdb::open_with(&path, SMALL).unwrap();
    assert!(tsdb.from_sidecar());
    let (t0, t1) = (SimTime::from_micros(0), far_future());
    let stats = tsdb.stats(t0, t1).unwrap();
    assert_eq!(stats.count, frames.len() as u64);
    assert_eq!(
        tsdb.energy(t0, t1).unwrap().value().to_bits(),
        tsdb.energy_ref(t0, t1).unwrap().value().to_bits()
    );

    cleanup(&path);
}

#[test]
fn crash_at_every_structural_byte_leaves_the_capture_intact() {
    let frames = build_frames(17, 1200);
    let path = temp_path("crash");
    write_capture(&path, &frames, 100);

    let archive = Archive::open(&path).unwrap();
    let trace_before = archive.read_all().unwrap();
    let tmp = compact_tmp_path_for(&path);
    let index = stage_compacted(&archive, 600, &tmp).unwrap();
    let staged = std::fs::read(&tmp).unwrap();
    std::fs::remove_file(&tmp).unwrap();
    drop(archive);

    // Every structural boundary of the staged file, ±1, plus interior
    // samples: a crash that tears the staging write at that byte.
    let mut cuts = vec![0, 1, FILE_HEADER_SIZE - 1, FILE_HEADER_SIZE];
    for rec in &index.segments {
        let at = usize::try_from(rec.offset).unwrap();
        cuts.extend([at - 1, at, at + 1, at + SEGMENT_HEADER_SIZE]);
    }
    let len = staged.len();
    cuts.extend([len - 9, len - 8, len - 4, len - 1]);
    cuts.extend((0..8).map(|i| len * (i + 1) / 9));

    for cut in cuts {
        std::fs::write(&tmp, &staged[..cut]).unwrap();
        // The original archive never saw the crash: fully verifiable,
        // serving the pre-compaction view.
        let archive = Archive::open(&path).unwrap();
        assert!(archive.verify().unwrap().is_clean(), "cut at {cut}");
        assert_eq!(archive.read_all().unwrap(), trace_before, "cut at {cut}");
        let tsdb = Tsdb::open_with(&path, SMALL).unwrap();
        assert_eq!(
            tsdb.stats(SimTime::from_micros(0), far_future())
                .unwrap()
                .count,
            frames.len() as u64,
            "cut at {cut}"
        );
    }

    // A stale torn staging file is simply overwritten by the next
    // attempt, which completes.
    let report = compact_archive(
        &path,
        CompactOptions {
            target_frames: 600,
            config: SMALL,
        },
    )
    .unwrap();
    assert_eq!(report.segments_after, 2);
    let after = Archive::open(&path).unwrap();
    assert!(after.verify().unwrap().is_clean());
    assert_eq!(after.read_all().unwrap(), trace_before);

    cleanup(&path);
}

#[test]
fn retention_drops_exactly_the_expired_prefix() {
    let frames = build_frames(29, 1500);
    let path = temp_path("retain");
    write_capture(&path, &frames, 100);

    // 1500 frames at 50 µs end at 25 + 50·1499 µs; a 30 ms window
    // keeps segments ending within 30 000 µs of that.
    let archive = Archive::open(&path).unwrap();
    let retention = Retention::Duration(30_000);
    let expect_drop = retained_prefix_drop(&archive, retention);
    assert!(expect_drop > 0 && expect_drop < archive.segments().len());
    drop(archive);

    let report = retain_archive(&path, retention, SMALL).unwrap();
    assert_eq!(report.segments_before - report.segments_after, expect_drop);

    let after = Archive::open(&path).unwrap();
    assert!(after.verify().unwrap().is_clean());
    // Surviving segments are byte-identical: same seqs, same frames as
    // the tail of the original capture.
    let first_kept_us = after.segments()[0].header.start_us;
    let kept: Vec<ArchiveFrame> = frames
        .iter()
        .copied()
        .filter(|f| f.time.as_micros() >= first_kept_us)
        .collect();
    assert_eq!(after.read_all().unwrap(), reference_trace(&kept));
    assert_eq!(
        after.segments()[0].header.seq,
        expect_drop as u32,
        "surviving segments keep their original sequence numbers"
    );

    // A byte window so small only the newest segment fits never drops
    // everything.
    let drop_all = retained_prefix_drop(&after, Retention::Bytes(1));
    assert_eq!(drop_all, after.segments().len() - 1);

    // Everything already inside the window: a no-op sweep.
    let noop = retain_archive(&path, Retention::Duration(u64::MAX), SMALL).unwrap();
    assert_eq!(noop.segments_before, noop.segments_after);

    cleanup(&path);
}

#[test]
fn live_writer_compacts_and_retains_between_seals() {
    let frames = build_frames(41, 1000);
    let path = temp_path("live");
    let writer = TsdbWriter::spawn(
        &path,
        test_configs(),
        TsdbWriterOptions {
            segment_frames: 60,
            config: SMALL,
            compact_after_segments: Some(4),
            compact_target_frames: 240,
            ..TsdbWriterOptions::default()
        },
    )
    .unwrap();
    for &frame in &frames {
        assert!(writer.push(frame));
    }
    let stats = writer.finish().unwrap();
    assert_eq!(stats.frames, 1000);
    assert_eq!(stats.dropped, 0);

    // Compaction ran between seals: far fewer than the 17 naive
    // segments, and the capture is bit-complete.
    let archive = Archive::open(&path).unwrap();
    assert!(archive.segments().len() < 17);
    assert!(archive.verify().unwrap().is_clean());
    assert_eq!(archive.read_all().unwrap(), reference_trace(&frames));
    drop(archive);

    // The maintained sidecar is fresh: no rebuild on open.
    let tsdb = Tsdb::open_with(&path, SMALL).unwrap();
    assert!(tsdb.from_sidecar());
    let total = tsdb.stats(SimTime::from_micros(0), far_future()).unwrap();
    assert_eq!(total.count, 1000);

    cleanup(&path);
}

#[test]
fn live_writer_enforces_the_retention_window() {
    let frames = build_frames(43, 1200);
    let path = temp_path("live-retain");
    let writer = TsdbWriter::spawn(
        &path,
        test_configs(),
        TsdbWriterOptions {
            segment_frames: 100,
            config: SMALL,
            retention: Some(Retention::Duration(20_000)),
            ..TsdbWriterOptions::default()
        },
    )
    .unwrap();
    for &frame in &frames {
        assert!(writer.push(frame));
    }
    writer.finish().unwrap();

    let archive = Archive::open(&path).unwrap();
    assert!(archive.verify().unwrap().is_clean());
    // 20 ms at 50 µs cadence spans 400 frames: old segments are gone,
    // the surviving tail is bit-identical to the source.
    assert!(archive.segments().len() <= 5);
    let first_kept_us = archive.segments()[0].header.start_us;
    assert!(first_kept_us > 25, "the oldest segment was dropped");
    let kept: Vec<ArchiveFrame> = frames
        .iter()
        .copied()
        .filter(|f| f.time.as_micros() >= first_kept_us)
        .collect();
    assert_eq!(archive.read_all().unwrap(), reference_trace(&kept));

    let tsdb = Tsdb::open_with(&path, SMALL).unwrap();
    assert!(tsdb.from_sidecar());
    assert_eq!(
        tsdb.stats(SimTime::from_micros(0), far_future())
            .unwrap()
            .count,
        kept.len() as u64
    );

    cleanup(&path);
}
