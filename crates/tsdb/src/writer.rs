//! The maintained writer: an [`ArchiveWriter`] whose seal-time
//! maintenance hook keeps the pyramid sidecar current, compacts small
//! segments in the background, and enforces the retention window.
//!
//! All maintenance runs on the writer's worker thread, between seals —
//! acquisition never blocks on it (frames keep landing in the bounded
//! queue while a compaction rewrite is in flight). Because the hook
//! fires once per sealed segment and every trigger is a pure function
//! of the sealed-segment count, the on-disk archive evolution is a
//! deterministic function of the frame sequence — which is what lets
//! the simulator replay compaction and retention under crash plans.

use std::path::Path;

use ps3_archive::{
    Archive, ArchiveError, ArchiveWriter, ArchiveWriterOptions, SegmentWriter, WriterStats,
};
use ps3_core::{FrameRecord, PowerSensor};
use ps3_firmware::{SensorConfig, SENSOR_SLOTS};

use crate::compactor::{
    compact_tmp_path_for, retained_prefix_drop, stage_compacted, stage_retained, Retention,
    DEFAULT_COMPACT_TARGET_FRAMES,
};
use crate::pyramid::{Pyramid, PyramidConfig};

/// Tuning for a [`TsdbWriter`].
#[derive(Debug, Clone, Copy)]
pub struct TsdbWriterOptions {
    /// Frames per sealed segment (see [`ArchiveWriterOptions`]).
    pub segment_frames: usize,
    /// Bounded queue depth in frames (see [`ArchiveWriterOptions`]).
    pub queue_capacity: usize,
    /// Pyramid fan-out maintained at seal time.
    pub config: PyramidConfig,
    /// Compact once this many sealed segments accumulate; `None`
    /// disables background compaction.
    pub compact_after_segments: Option<usize>,
    /// Frames per merged segment when compaction runs.
    pub compact_target_frames: usize,
    /// Drop expired history at seal time; `None` keeps everything.
    pub retention: Option<Retention>,
}

impl Default for TsdbWriterOptions {
    fn default() -> Self {
        let archive = ArchiveWriterOptions::default();
        Self {
            segment_frames: archive.segment_frames,
            queue_capacity: archive.queue_capacity,
            config: PyramidConfig::default(),
            compact_after_segments: None,
            compact_target_frames: DEFAULT_COMPACT_TARGET_FRAMES,
            retention: None,
        }
    }
}

/// An [`ArchiveWriter`] with seal-time pyramid maintenance, background
/// compaction, and retention. Drop-in: same `sink`/`attach`/`push`/
/// `finish` surface.
#[derive(Debug)]
pub struct TsdbWriter {
    inner: ArchiveWriter,
}

fn maintain(
    writer: &mut SegmentWriter,
    pyramid: &mut Pyramid,
    options: &TsdbWriterOptions,
) -> Result<(), ArchiveError> {
    let path = writer.path().to_path_buf();
    // 1. Extend the pyramid over segments sealed since the last pass —
    //    normally exactly one — straight from the fresh index records.
    let new: Vec<_> = writer.index().segments[pyramid.segments.len()..].to_vec();
    for rec in &new {
        pyramid.append_from_index(&path, rec)?;
    }
    // 2. Compact when enough small segments have piled up.
    if let Some(threshold) = options.compact_after_segments {
        if writer.index().segments.len() >= threshold.max(2) {
            let archive = Archive::open(&path)?;
            let tmp = compact_tmp_path_for(&path);
            let index = stage_compacted(&archive, options.compact_target_frames, &tmp)?;
            drop(archive);
            writer.adopt_rewritten(&tmp, index)?;
            *pyramid = Pyramid::build(&Archive::open(&path)?, options.config);
        }
    }
    // 3. Enforce the retention window: drop whole expired segments and
    //    their pyramid subtrees.
    if let Some(retention) = options.retention {
        let archive = Archive::open(&path)?;
        let drop_count = retained_prefix_drop(&archive, retention);
        if drop_count > 0 {
            let tmp = compact_tmp_path_for(&path);
            let index = stage_retained(&archive, drop_count, &tmp)?;
            drop(archive);
            let data_len = index.data_len;
            writer.adopt_rewritten(&tmp, index)?;
            pyramid.segments.drain(..drop_count);
            pyramid.data_len = data_len;
        }
    }
    // 4. Refresh the sidecar (advisory — rebuilt by scan if this never
    //    lands).
    let _ = pyramid.save_for(&path);
    Ok(())
}

impl TsdbWriter {
    /// Spawns the background writer for `path` with maintenance wired
    /// in.
    ///
    /// # Errors
    ///
    /// Archive creation errors.
    pub fn spawn(
        path: impl AsRef<Path>,
        configs: [SensorConfig; SENSOR_SLOTS],
        options: TsdbWriterOptions,
    ) -> Result<Self, ArchiveError> {
        let mut pyramid = Pyramid::new(options.config);
        let inner = ArchiveWriter::spawn_with_maintenance(
            path,
            configs,
            ArchiveWriterOptions {
                segment_frames: options.segment_frames,
                queue_capacity: options.queue_capacity,
            },
            Box::new(move |writer| maintain(writer, &mut pyramid, &options)),
        )?;
        Ok(Self { inner })
    }

    /// A frame sink for [`PowerSensor::add_frame_sink`].
    pub fn sink(&self) -> impl FnMut(&FrameRecord) -> bool + Send + 'static {
        self.inner.sink()
    }

    /// Attaches this writer to a live sensor.
    pub fn attach(&self, sensor: &PowerSensor) {
        self.inner.attach(sensor);
    }

    /// Enqueues one frame; `false` when the queue was full (the frame
    /// is dropped and counted).
    pub fn push(&self, frame: ps3_archive::ArchiveFrame) -> bool {
        self.inner.push(frame)
    }

    /// Frames dropped so far. Live and lock-free.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.inner.dropped()
    }

    /// Frames accepted so far. Live and lock-free.
    #[must_use]
    pub fn frames_written(&self) -> u64 {
        self.inner.frames_written()
    }

    /// Segments currently sealed on disk. Live and lock-free.
    #[must_use]
    pub fn segments_sealed(&self) -> u64 {
        self.inner.segments_sealed()
    }

    /// Drains the queue, seals the tail, runs a final maintenance
    /// pass, and returns the final counters.
    ///
    /// # Errors
    ///
    /// Surfaces any filesystem error the worker hit.
    pub fn finish(self) -> Result<WriterStats, ArchiveError> {
        self.inner.finish()
    }
}
