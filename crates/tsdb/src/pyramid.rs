//! The multi-resolution aggregation pyramid and its `.ps3p` sidecar.
//!
//! Every sealed segment of a `.ps3a` archive already carries tier-0
//! aggregates: one [`SummaryBlock`] per [`SUMMARY_FRAMES`] frames. The
//! pyramid stacks two more tiers on top, per segment:
//!
//! * **tier 1** — one node per [`PyramidConfig::tier1_blocks`] summary
//!   blocks (100 blocks = 100 k frames at the default fan-out);
//! * **tier 2** — one node per [`PyramidConfig::tier2_nodes`] tier-1
//!   nodes (10 M frames at the default fan-out).
//!
//! A [`PyramidNode`] folds count/sum/min/max exactly (integer adds and
//! associative min/max) and carries first/last sample endpoints so the
//! trapezoid energy of a junction between adjacent nodes can be
//! reconstructed with the same arithmetic the flat query path uses.
//! Folding is strictly sequential in block order, so a node's `sum_w`
//! and `energy_j` are bit-reproducible from its children — the query
//! engine's `*_ref` reference paths rely on exactly that.
//!
//! The pyramid is pure derived data, persisted in a CRC'd `.ps3p`
//! sidecar keyed to the archive's sealed length. Like the `.ps3x`
//! index it is trusted only when the CRC checks out *and* it describes
//! the archive on disk segment-for-segment; anything else (stale after
//! a crash or compaction, damaged, missing) is silently rebuilt by a
//! scan of the in-memory segment summaries — no payload decode needed.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

use ps3_archive::format::{
    read_f64, read_u32, read_u64, FILE_HEADER_SIZE, SEGMENT_HEADER_SIZE, SUMMARY_WIRE_SIZE,
};
use ps3_archive::{
    crc32, parse_summaries, Archive, ArchiveError, IndexSegment, SegmentHeader, SummaryBlock,
};

/// Sidecar magic, first 8 bytes of every `.ps3p` file.
pub const PYRAMID_MAGIC: [u8; 8] = *b"PS3PYRM1";

/// One pyramid node on disk: `count`, `first_us`, `last_us`, six f64s.
pub const NODE_WIRE_SIZE: usize = 3 * 8 + 6 * 8;

const PYRAMID_HEADER_SIZE: usize = 8 + 8 + 4 + 4 + 4;
const SEGMENT_RECORD_HEADER_SIZE: usize = 4 + 4 + 4 + 4;

/// The sidecar path for an archive: `capture.ps3a` → `capture.ps3p`;
/// any other name gets `.ps3p` appended (mirroring `index_path_for`).
#[must_use]
pub fn pyramid_path_for(archive: &Path) -> PathBuf {
    if archive.extension().is_some_and(|e| e == "ps3a") {
        archive.with_extension("ps3p")
    } else {
        let mut name = archive.as_os_str().to_os_string();
        name.push(".ps3p");
        PathBuf::from(name)
    }
}

/// Tier fan-out of a pyramid. Persisted in the sidecar, so readers
/// always interpret stored nodes with the fan-out they were built
/// with; tests shrink it to exercise tier 2 with small captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PyramidConfig {
    /// Summary blocks folded into one tier-1 node.
    pub tier1_blocks: u32,
    /// Tier-1 nodes folded into one tier-2 node.
    pub tier2_nodes: u32,
}

impl Default for PyramidConfig {
    fn default() -> Self {
        Self {
            tier1_blocks: 100,
            tier2_nodes: 100,
        }
    }
}

impl PyramidConfig {
    /// Summary blocks covered by one tier-2 node.
    #[must_use]
    pub fn tier2_blocks(&self) -> usize {
        self.tier1_blocks as usize * self.tier2_nodes as usize
    }
}

/// One pre-aggregated node covering a whole number of summary blocks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PyramidNode {
    /// Frames under the node.
    pub count: u64,
    /// Timestamp of the first frame (µs).
    pub first_us: u64,
    /// Timestamp of the last frame (µs).
    pub last_us: u64,
    /// Sequential sum of total power (W).
    pub sum_w: f64,
    /// Minimum total power (W).
    pub min_w: f64,
    /// Maximum total power (W).
    pub max_w: f64,
    /// Trapezoid energy over the node's interior sample pairs (J),
    /// junctions between children included; the junction to the
    /// *previous* node is the reader's job, exactly as with
    /// [`SummaryBlock::energy_j`].
    pub energy_j: f64,
    /// Total power of the first frame (W).
    pub first_w: f64,
    /// Total power of the last frame (W).
    pub last_w: f64,
}

impl PyramidNode {
    /// A tier-0 node: one summary block, verbatim.
    #[must_use]
    pub fn from_block(block: &SummaryBlock) -> Self {
        Self {
            count: u64::from(block.count),
            first_us: block.first_us,
            last_us: block.last_us,
            sum_w: block.sum_w,
            min_w: block.min_w,
            max_w: block.max_w,
            energy_j: block.energy_j,
            first_w: block.first_w,
            last_w: block.last_w,
        }
    }

    /// Folds consecutive children into one parent, strictly left to
    /// right: counts and sums add sequentially, min/max fold, and the
    /// energy accumulates each child's interior energy plus the
    /// trapezoid junction between adjacent children — the same
    /// `(pw + w) / 2 · Δt` arithmetic, in the same order, as the flat
    /// query path walking those children one by one.
    ///
    /// # Panics
    ///
    /// Panics if `children` is empty.
    #[must_use]
    pub fn fold(children: &[PyramidNode]) -> Self {
        assert!(!children.is_empty(), "a pyramid node has children");
        let mut acc = children[0];
        for child in &children[1..] {
            acc.count += child.count;
            acc.sum_w += child.sum_w;
            acc.min_w = acc.min_w.min(child.min_w);
            acc.max_w = acc.max_w.max(child.max_w);
            let dt = (child.first_us - acc.last_us) as f64 * 1e-6;
            acc.energy_j += (acc.last_w + child.first_w) / 2.0 * dt;
            acc.energy_j += child.energy_j;
            acc.last_us = child.last_us;
            acc.last_w = child.last_w;
        }
        acc
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.count.to_le_bytes());
        out.extend_from_slice(&self.first_us.to_le_bytes());
        out.extend_from_slice(&self.last_us.to_le_bytes());
        for v in [
            self.sum_w,
            self.min_w,
            self.max_w,
            self.energy_j,
            self.first_w,
            self.last_w,
        ] {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }

    fn decode(bytes: &[u8]) -> Self {
        Self {
            count: read_u64(bytes, 0),
            first_us: read_u64(bytes, 8),
            last_us: read_u64(bytes, 16),
            sum_w: read_f64(bytes, 24),
            min_w: read_f64(bytes, 32),
            max_w: read_f64(bytes, 40),
            energy_j: read_f64(bytes, 48),
            first_w: read_f64(bytes, 56),
            last_w: read_f64(bytes, 64),
        }
    }
}

/// The pyramid of one sealed segment: tier-1 and tier-2 nodes over its
/// summary blocks (the blocks themselves are tier 0 and live in the
/// archive, not here).
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentPyramid {
    /// Segment sequence number, for staleness checks against the
    /// archive.
    pub seq: u32,
    /// Summary blocks the segment holds (ditto).
    pub block_count: u32,
    /// One node per [`PyramidConfig::tier1_blocks`] blocks; the tail
    /// node covers whatever blocks remain.
    pub tier1: Vec<PyramidNode>,
    /// One node per [`PyramidConfig::tier2_nodes`] tier-1 nodes.
    pub tier2: Vec<PyramidNode>,
}

impl SegmentPyramid {
    /// Builds both tiers from a segment's summary blocks.
    #[must_use]
    pub fn build(seq: u32, summaries: &[SummaryBlock], config: PyramidConfig) -> Self {
        let tier0: Vec<PyramidNode> = summaries.iter().map(PyramidNode::from_block).collect();
        let tier1: Vec<PyramidNode> = tier0
            .chunks(config.tier1_blocks as usize)
            .map(PyramidNode::fold)
            .collect();
        let tier2: Vec<PyramidNode> = tier1
            .chunks(config.tier2_nodes as usize)
            .map(PyramidNode::fold)
            .collect();
        Self {
            seq,
            block_count: summaries.len() as u32,
            tier1,
            tier2,
        }
    }
}

/// A whole archive's pyramid plus the staleness key that ties it to
/// the archive bytes it was derived from.
#[derive(Debug, Clone, PartialEq)]
pub struct Pyramid {
    /// Tier fan-out the nodes were folded with.
    pub config: PyramidConfig,
    /// Sealed length of the archive the pyramid describes (see
    /// [`Archive::sealed_len`]).
    pub data_len: u64,
    /// Per-segment pyramids, in file order.
    pub segments: Vec<SegmentPyramid>,
}

/// Node totals per tier, for `ps3-arc info`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PyramidCounts {
    /// Tier-0 nodes (= summary blocks, stored in the archive).
    pub blocks: u64,
    /// Tier-1 nodes.
    pub tier1: u64,
    /// Tier-2 nodes.
    pub tier2: u64,
}

impl Pyramid {
    /// An empty pyramid over a freshly created (header-only) archive.
    #[must_use]
    pub fn new(config: PyramidConfig) -> Self {
        Self {
            config,
            data_len: FILE_HEADER_SIZE as u64,
            segments: Vec::new(),
        }
    }

    /// Builds the pyramid for every sealed segment of `archive` from
    /// its in-memory summary tables — no payload decode.
    #[must_use]
    pub fn build(archive: &Archive, config: PyramidConfig) -> Self {
        Self {
            config,
            data_len: archive.sealed_len(),
            segments: archive
                .segments()
                .iter()
                .map(|meta| SegmentPyramid::build(meta.header.seq, &meta.summaries, config))
                .collect(),
        }
    }

    /// `true` when this pyramid describes exactly `archive`'s sealed
    /// segments: same sealed length, same segment sequence numbers,
    /// same per-segment block counts.
    #[must_use]
    pub fn matches(&self, archive: &Archive) -> bool {
        self.data_len == archive.sealed_len()
            && self.segments.len() == archive.segments().len()
            && self
                .segments
                .iter()
                .zip(archive.segments())
                .all(|(sp, meta)| {
                    sp.seq == meta.header.seq && sp.block_count as usize == meta.summaries.len()
                })
    }

    /// Loads the `.ps3p` sidecar next to `archive` when it is valid,
    /// matches the archive on disk, and was built with `config`;
    /// otherwise rebuilds by scan. Returns the pyramid and whether the
    /// sidecar was usable (`false` = rebuilt, i.e. the sidecar was
    /// missing, damaged, or stale).
    #[must_use]
    pub fn load_or_build(archive: &Archive, config: PyramidConfig) -> (Self, bool) {
        if let Ok(bytes) = std::fs::read(pyramid_path_for(archive.path())) {
            if let Ok(pyramid) = Self::decode(&bytes) {
                if pyramid.config == config && pyramid.matches(archive) {
                    return (pyramid, true);
                }
            }
        }
        (Self::build(archive, config), false)
    }

    /// Writes the sidecar next to `archive_path`. Callers treat this
    /// as best effort — the pyramid is derived data and a torn or
    /// missing sidecar only costs a rebuild on the next open.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_for(&self, archive_path: &Path) -> std::io::Result<()> {
        std::fs::write(pyramid_path_for(archive_path), self.encode())
    }

    /// Extends the pyramid with one newly sealed segment by reading
    /// its header and summary table straight from the archive file —
    /// the incremental per-seal maintenance path, which never decodes
    /// payload bytes.
    ///
    /// # Errors
    ///
    /// I/O errors, or [`ArchiveError::Corrupt`] when the bytes at
    /// `rec.offset` do not parse as the segment `rec` describes.
    pub fn append_from_index(
        &mut self,
        archive_path: &Path,
        rec: &IndexSegment,
    ) -> Result<(), ArchiveError> {
        let mut file = File::open(archive_path)?;
        file.seek(SeekFrom::Start(rec.offset))?;
        let mut hdr = vec![0u8; SEGMENT_HEADER_SIZE];
        file.read_exact(&mut hdr)?;
        let header = SegmentHeader::parse(&hdr, rec.offset)?;
        if header.seq != rec.seq || header.frame_count != rec.frame_count {
            return Err(ArchiveError::Corrupt {
                offset: rec.offset,
                what: "segment disagrees with its index record".into(),
            });
        }
        let mut table = vec![0u8; header.summary_count as usize * SUMMARY_WIRE_SIZE];
        file.read_exact(&mut table)?;
        let summaries = parse_summaries(&table, header.summary_count as usize);
        self.segments
            .push(SegmentPyramid::build(header.seq, &summaries, self.config));
        self.data_len = rec.offset + header.disk_size();
        Ok(())
    }

    /// Total nodes per tier.
    #[must_use]
    pub fn counts(&self) -> PyramidCounts {
        let mut counts = PyramidCounts::default();
        for seg in &self.segments {
            counts.blocks += u64::from(seg.block_count);
            counts.tier1 += seg.tier1.len() as u64;
            counts.tier2 += seg.tier2.len() as u64;
        }
        counts
    }

    /// Serialises the pyramid to its sidecar byte form.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let nodes: usize = self
            .segments
            .iter()
            .map(|s| s.tier1.len() + s.tier2.len())
            .sum();
        let mut out = Vec::with_capacity(
            PYRAMID_HEADER_SIZE
                + self.segments.len() * SEGMENT_RECORD_HEADER_SIZE
                + nodes * NODE_WIRE_SIZE
                + 4,
        );
        out.extend_from_slice(&PYRAMID_MAGIC);
        out.extend_from_slice(&self.data_len.to_le_bytes());
        out.extend_from_slice(&self.config.tier1_blocks.to_le_bytes());
        out.extend_from_slice(&self.config.tier2_nodes.to_le_bytes());
        out.extend_from_slice(&(self.segments.len() as u32).to_le_bytes());
        for seg in &self.segments {
            out.extend_from_slice(&seg.seq.to_le_bytes());
            out.extend_from_slice(&seg.block_count.to_le_bytes());
            out.extend_from_slice(&(seg.tier1.len() as u32).to_le_bytes());
            out.extend_from_slice(&(seg.tier2.len() as u32).to_le_bytes());
            for node in seg.tier1.iter().chain(&seg.tier2) {
                node.encode_into(&mut out);
            }
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes a sidecar file.
    ///
    /// # Errors
    ///
    /// [`ArchiveError::Corrupt`] on wrong magic, truncation, CRC
    /// mismatch, or internally inconsistent tier counts. Callers treat
    /// any error as "no usable pyramid" and rebuild from the archive.
    pub fn decode(bytes: &[u8]) -> Result<Self, ArchiveError> {
        let corrupt = |what: &str| ArchiveError::Corrupt {
            offset: 0,
            what: format!("pyramid {what}"),
        };
        if bytes.len() < PYRAMID_HEADER_SIZE + 4 {
            return Err(corrupt("truncated"));
        }
        if bytes[..8] != PYRAMID_MAGIC {
            return Err(corrupt("magic mismatch"));
        }
        let body_len = bytes.len() - 4;
        if crc32(&bytes[..body_len]) != read_u32(bytes, body_len) {
            return Err(corrupt("CRC mismatch"));
        }
        let data_len = read_u64(bytes, 8);
        let config = PyramidConfig {
            tier1_blocks: read_u32(bytes, 16),
            tier2_nodes: read_u32(bytes, 20),
        };
        if config.tier1_blocks == 0 || config.tier2_nodes == 0 {
            return Err(corrupt("zero tier fan-out"));
        }
        let seg_count = read_u32(bytes, 24) as usize;
        let mut segments = Vec::with_capacity(seg_count.min(1 << 20));
        let mut at = PYRAMID_HEADER_SIZE;
        for _ in 0..seg_count {
            if at + SEGMENT_RECORD_HEADER_SIZE > body_len {
                return Err(corrupt("truncated segment record"));
            }
            let seq = read_u32(bytes, at);
            let block_count = read_u32(bytes, at + 4);
            let tier1_count = read_u32(bytes, at + 8) as usize;
            let tier2_count = read_u32(bytes, at + 12) as usize;
            at += SEGMENT_RECORD_HEADER_SIZE;
            let expect1 = (block_count as usize).div_ceil(config.tier1_blocks as usize);
            let expect2 = tier1_count.div_ceil(config.tier2_nodes as usize);
            if tier1_count != expect1 || tier2_count != expect2 {
                return Err(corrupt("tier counts inconsistent with fan-out"));
            }
            let need = (tier1_count + tier2_count) * NODE_WIRE_SIZE;
            if at + need > body_len {
                return Err(corrupt("truncated nodes"));
            }
            let read_nodes = |count: usize, at: &mut usize| {
                (0..count)
                    .map(|_| {
                        let node = PyramidNode::decode(&bytes[*at..]);
                        *at += NODE_WIRE_SIZE;
                        node
                    })
                    .collect::<Vec<_>>()
            };
            let tier1 = read_nodes(tier1_count, &mut at);
            let tier2 = read_nodes(tier2_count, &mut at);
            segments.push(SegmentPyramid {
                seq,
                block_count,
                tier1,
                tier2,
            });
        }
        if at != body_len {
            return Err(corrupt("length inconsistent with counts"));
        }
        Ok(Self {
            config,
            data_len,
            segments,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(i: u64) -> SummaryBlock {
        SummaryBlock {
            count: 1000,
            first_us: i * 50_000 + 25,
            last_us: i * 50_000 + 49_975,
            sum_w: 10_000.0 + i as f64,
            min_w: 9.0,
            max_w: 11.0 + i as f64,
            energy_j: 0.5,
            first_w: 10.0,
            last_w: 10.5,
        }
    }

    fn sample() -> Pyramid {
        let config = PyramidConfig {
            tier1_blocks: 2,
            tier2_nodes: 2,
        };
        let summaries: Vec<SummaryBlock> = (0..7).map(block).collect();
        Pyramid {
            config,
            data_len: 4096,
            segments: vec![
                SegmentPyramid::build(0, &summaries, config),
                SegmentPyramid::build(1, &summaries[..3], config),
            ],
        }
    }

    #[test]
    fn tier_shapes_follow_fanout() {
        let pyr = sample();
        // 7 blocks → ceil(7/2)=4 tier-1 → ceil(4/2)=2 tier-2.
        assert_eq!(pyr.segments[0].tier1.len(), 4);
        assert_eq!(pyr.segments[0].tier2.len(), 2);
        // 3 blocks → 2 tier-1 → 1 tier-2.
        assert_eq!(pyr.segments[1].tier1.len(), 2);
        assert_eq!(pyr.segments[1].tier2.len(), 1);
        assert_eq!(
            pyr.counts(),
            PyramidCounts {
                blocks: 10,
                tier1: 6,
                tier2: 3,
            }
        );
    }

    #[test]
    fn fold_preserves_counts_and_extremes() {
        let summaries: Vec<SummaryBlock> = (0..5).map(block).collect();
        let nodes: Vec<PyramidNode> = summaries.iter().map(PyramidNode::from_block).collect();
        let folded = PyramidNode::fold(&nodes);
        assert_eq!(folded.count, 5000);
        assert_eq!(folded.first_us, summaries[0].first_us);
        assert_eq!(folded.last_us, summaries[4].last_us);
        assert_eq!(folded.min_w, 9.0);
        assert_eq!(folded.max_w, 15.0);
        assert_eq!(folded.first_w, 10.0);
        assert_eq!(folded.last_w, 10.5);
        // Junction energy: 4 junctions of (10.5 + 10.0)/2 W over 50 µs
        // plus the 5 interior energies.
        let expect = 5.0 * 0.5 + 4.0 * (10.25 * 50e-6);
        assert!((folded.energy_j - expect).abs() < 1e-12);
    }

    #[test]
    fn sidecar_round_trips() {
        let pyr = sample();
        assert_eq!(Pyramid::decode(&pyr.encode()).unwrap(), pyr);
        let empty = Pyramid::new(PyramidConfig::default());
        assert_eq!(Pyramid::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn any_single_bit_flip_is_rejected() {
        let bytes = sample().encode();
        for byte in 0..bytes.len() {
            let mut dam = bytes.clone();
            dam[byte] ^= 1;
            assert!(
                Pyramid::decode(&dam).is_err(),
                "flip at byte {byte} accepted"
            );
        }
    }

    #[test]
    fn truncation_is_rejected() {
        let bytes = sample().encode();
        for len in 0..bytes.len() {
            assert!(Pyramid::decode(&bytes[..len]).is_err(), "len {len}");
        }
    }

    #[test]
    fn pyramid_path_swaps_or_appends_extension() {
        assert_eq!(
            pyramid_path_for(Path::new("/tmp/cap.ps3a")),
            PathBuf::from("/tmp/cap.ps3p")
        );
        assert_eq!(
            pyramid_path_for(Path::new("/tmp/capture")),
            PathBuf::from("/tmp/capture.ps3p")
        );
    }
}
