//! Background compaction and retention for `.ps3a` archives.
//!
//! Both operations follow the same crash-safe protocol: build a
//! complete replacement archive in a `.compact-tmp` staging file,
//! `fsync` it, then atomically rename it over the original. A crash at
//! any byte of the staging write leaves the original archive untouched
//! and readable; a stale staging file from a previous crash is simply
//! overwritten on the next attempt. Sidecars (`.ps3x` index, `.ps3p`
//! pyramid) are rewritten best-effort after the rename — both are
//! advisory and rebuilt by scan when stale.
//!
//! Compaction ([`stage_compacted`]) merges sealed small segments into
//! large ones: frames are decoded, re-chunked at the target size, and
//! re-encoded through the same [`build_segment`] codec, which re-tunes
//! the Rice parameters for each merged segment. The frame sequence —
//! and therefore every query answer — is bit-identical before and
//! after.
//!
//! Retention ([`stage_retained`]) drops whole expired segments from
//! the front of the archive by verbatim byte copy: surviving segments
//! keep their encoded bytes, sequence numbers, and CRCs.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use ps3_archive::format::{encode_file_header, FILE_HEADER_SIZE};
use ps3_archive::{
    build_segment, frame_total, index_path_for, Archive, ArchiveError, ArchiveIndex, IndexSegment,
};

use crate::pyramid::{Pyramid, PyramidConfig};

/// Frames per merged segment when compaction options don't say
/// otherwise: ten default-size write segments.
pub const DEFAULT_COMPACT_TARGET_FRAMES: usize = 200_000;

/// Tuning for an offline [`compact_archive`] run.
#[derive(Debug, Clone, Copy)]
pub struct CompactOptions {
    /// Frames per merged segment.
    pub target_frames: usize,
    /// Fan-out of the pyramid rebuilt after the rename.
    pub config: PyramidConfig,
}

impl Default for CompactOptions {
    fn default() -> Self {
        Self {
            target_frames: DEFAULT_COMPACT_TARGET_FRAMES,
            config: PyramidConfig::default(),
        }
    }
}

/// What a compaction or retention rewrite changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactReport {
    /// Sealed segments before the rewrite.
    pub segments_before: usize,
    /// Sealed segments after.
    pub segments_after: usize,
    /// Archive bytes (header included) before.
    pub bytes_before: u64,
    /// Archive bytes after.
    pub bytes_after: u64,
}

/// The staging path for a crash-safe rewrite of `path`:
/// `<path>.compact-tmp`, always beside the archive.
#[must_use]
pub fn compact_tmp_path_for(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".compact-tmp");
    PathBuf::from(name)
}

/// Builds the compacted replacement for `archive` at `tmp` — every
/// frame decoded, re-chunked at `target_frames`, and re-encoded — and
/// returns the index describing it. The staging file is fsynced; the
/// caller owns the rename.
///
/// # Errors
///
/// Decode errors from the source archive, or I/O errors writing the
/// staging file.
///
/// # Panics
///
/// Panics if `target_frames` is zero.
pub fn stage_compacted(
    archive: &Archive,
    target_frames: usize,
    tmp: &Path,
) -> Result<ArchiveIndex, ArchiveError> {
    assert!(target_frames > 0, "target_frames must be at least 1");
    let mut frames = Vec::new();
    for meta in archive.segments() {
        frames.extend(archive.decode_segment_frames(meta)?);
    }
    let watts: Vec<f64> = frames
        .iter()
        .map(|f| frame_total(archive.configs(), archive.adc(), f).value())
        .collect();

    let mut bytes = encode_file_header(archive.configs());
    let mut index = ArchiveIndex {
        data_len: 0,
        segments: Vec::new(),
        markers: Vec::new(),
    };
    for (seq, (chunk, watts_chunk)) in frames
        .chunks(target_frames)
        .zip(watts.chunks(target_frames))
        .enumerate()
    {
        let seq = u32::try_from(seq).map_err(|_| ArchiveError::Corrupt {
            offset: bytes.len() as u64,
            what: "compaction would produce more than u32::MAX segments".into(),
        })?;
        let offset = bytes.len() as u64;
        bytes.extend_from_slice(&build_segment(seq, chunk, watts_chunk));
        index.segments.push(IndexSegment {
            offset,
            seq,
            frame_count: chunk.len() as u32,
            start_us: chunk[0].time.as_micros(),
            end_us: chunk[chunk.len() - 1].time.as_micros(),
        });
        for frame in chunk {
            if let Some(label) = frame.marker {
                index.markers.push((frame.time.as_micros(), label));
            }
        }
    }
    index.data_len = bytes.len() as u64;

    let mut file = File::create(tmp)?;
    file.write_all(&bytes)?;
    file.sync_all()?;
    Ok(index)
}

/// Offline compaction of the archive at `path`: stage, rename, rewrite
/// the `.ps3x` index and `.ps3p` pyramid sidecars (best effort).
///
/// # Errors
///
/// Open/decode errors, or I/O errors staging or renaming.
///
/// # Panics
///
/// Panics if `options.target_frames` is zero.
pub fn compact_archive(
    path: impl AsRef<Path>,
    options: CompactOptions,
) -> Result<CompactReport, ArchiveError> {
    let path = path.as_ref();
    let archive = Archive::open(path)?;
    let before = (archive.segments().len(), archive.sealed_len());
    let tmp = compact_tmp_path_for(path);
    let index = stage_compacted(&archive, options.target_frames, &tmp)?;
    drop(archive);
    std::fs::rename(&tmp, path)?;
    let _ = std::fs::write(index_path_for(path), index.encode());
    let archive = Archive::open(path)?;
    let _ = Pyramid::build(&archive, options.config).save_for(path);
    Ok(CompactReport {
        segments_before: before.0,
        segments_after: archive.segments().len(),
        bytes_before: before.1,
        bytes_after: archive.sealed_len(),
    })
}

/// A retention window: how much history a capture keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Retention {
    /// Keep segments ending within this many microseconds of the
    /// newest sealed sample.
    Duration(u64),
    /// Keep the newest segments fitting (roughly) this many bytes;
    /// the newest segment always survives.
    Bytes(u64),
}

impl Retention {
    /// Parses a human retention spec: a non-negative integer with a
    /// duration suffix (`us`, `ms`, `s`, `m`, `h`) or a size suffix
    /// (`b`, `kb`, `mb`, `gb`), e.g. `90s`, `250ms`, `64mb`.
    ///
    /// # Errors
    ///
    /// A description of the malformed spec.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let spec = spec.trim().to_ascii_lowercase();
        let split = spec
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(spec.len());
        let (digits, suffix) = spec.split_at(split);
        let value: u64 = digits
            .parse()
            .map_err(|_| format!("retention `{spec}`: expected <number><unit>"))?;
        let scaled = |mul: u64| {
            value
                .checked_mul(mul)
                .ok_or_else(|| format!("retention `{spec}` overflows"))
        };
        match suffix {
            "us" => Ok(Self::Duration(value)),
            "ms" => Ok(Self::Duration(scaled(1_000)?)),
            "s" => Ok(Self::Duration(scaled(1_000_000)?)),
            "m" => Ok(Self::Duration(scaled(60_000_000)?)),
            "h" => Ok(Self::Duration(scaled(3_600_000_000)?)),
            "b" => Ok(Self::Bytes(value)),
            "kb" => Ok(Self::Bytes(scaled(1 << 10)?)),
            "mb" => Ok(Self::Bytes(scaled(1 << 20)?)),
            "gb" => Ok(Self::Bytes(scaled(1 << 30)?)),
            _ => Err(format!(
                "retention `{spec}`: unit must be us/ms/s/m/h or b/kb/mb/gb"
            )),
        }
    }

    /// Human description of the window, e.g. `last 90000000 µs` or
    /// `newest 67108864 bytes`.
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            Self::Duration(us) => format!("last {us} µs"),
            Self::Bytes(bytes) => format!("newest {bytes} bytes"),
        }
    }
}

/// How many leading (oldest) segments `retention` expires right now.
/// The newest sealed segment is never expired.
#[must_use]
pub fn retained_prefix_drop(archive: &Archive, retention: Retention) -> usize {
    let segments = archive.segments();
    let Some(last) = segments.last() else {
        return 0;
    };
    match retention {
        Retention::Duration(window) => {
            let cutoff = last.header.end_us.saturating_sub(window);
            segments
                .iter()
                .take(segments.len() - 1)
                .take_while(|s| s.header.end_us < cutoff)
                .count()
        }
        Retention::Bytes(limit) => {
            let mut total: u64 = FILE_HEADER_SIZE as u64
                + segments.iter().map(|s| s.header.disk_size()).sum::<u64>();
            let mut drop = 0;
            while drop + 1 < segments.len() && total > limit {
                total -= segments[drop].header.disk_size();
                drop += 1;
            }
            drop
        }
    }
}

/// Builds the replacement archive at `tmp` with the oldest `drop`
/// segments removed — surviving segment bytes are copied verbatim
/// (same encoding, same sequence numbers, same CRCs) — and returns the
/// index describing it. The staging file is fsynced; the caller owns
/// the rename.
///
/// # Errors
///
/// I/O errors reading the source or writing the staging file.
///
/// # Panics
///
/// Panics if `drop` exceeds the segment count.
pub fn stage_retained(
    archive: &Archive,
    drop: usize,
    tmp: &Path,
) -> Result<ArchiveIndex, ArchiveError> {
    let segments = archive.segments();
    assert!(
        drop <= segments.len(),
        "cannot drop more segments than exist"
    );
    let mut src = File::open(archive.path())?;
    let mut bytes = vec![0u8; FILE_HEADER_SIZE];
    src.read_exact(&mut bytes)?;

    let mut index = ArchiveIndex {
        data_len: 0,
        segments: Vec::new(),
        markers: Vec::new(),
    };
    for meta in &segments[drop..] {
        let offset = bytes.len() as u64;
        let size = usize::try_from(meta.header.disk_size()).map_err(|_| ArchiveError::Corrupt {
            offset: meta.offset,
            what: "segment larger than the address space".into(),
        })?;
        let mut raw = vec![0u8; size];
        src.seek(SeekFrom::Start(meta.offset))?;
        src.read_exact(&mut raw)?;
        bytes.extend_from_slice(&raw);
        index.segments.push(IndexSegment {
            offset,
            seq: meta.header.seq,
            frame_count: meta.header.frame_count,
            start_us: meta.header.start_us,
            end_us: meta.header.end_us,
        });
        index.markers.extend_from_slice(&meta.markers);
    }
    index.data_len = bytes.len() as u64;

    let mut file = File::create(tmp)?;
    file.write_all(&bytes)?;
    file.sync_all()?;
    Ok(index)
}

/// Offline retention sweep of the archive at `path`: drop expired
/// segments (if any), rename, rewrite sidecars (best effort). A no-op
/// report when nothing has expired.
///
/// # Errors
///
/// Open errors, or I/O errors staging or renaming.
pub fn retain_archive(
    path: impl AsRef<Path>,
    retention: Retention,
    config: PyramidConfig,
) -> Result<CompactReport, ArchiveError> {
    let path = path.as_ref();
    let archive = Archive::open(path)?;
    let before = (archive.segments().len(), archive.sealed_len());
    let drop_count = retained_prefix_drop(&archive, retention);
    if drop_count == 0 {
        return Ok(CompactReport {
            segments_before: before.0,
            segments_after: before.0,
            bytes_before: before.1,
            bytes_after: before.1,
        });
    }
    let tmp = compact_tmp_path_for(path);
    let index = stage_retained(&archive, drop_count, &tmp)?;
    drop(archive);
    std::fs::rename(&tmp, path)?;
    let _ = std::fs::write(index_path_for(path), index.encode());
    let archive = Archive::open(path)?;
    let _ = Pyramid::build(&archive, config).save_for(path);
    Ok(CompactReport {
        segments_before: before.0,
        segments_after: archive.segments().len(),
        bytes_before: before.1,
        bytes_after: archive.sealed_len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retention_specs_parse() {
        assert_eq!(Retention::parse("90s"), Ok(Retention::Duration(90_000_000)));
        assert_eq!(Retention::parse("250ms"), Ok(Retention::Duration(250_000)));
        assert_eq!(Retention::parse("7us"), Ok(Retention::Duration(7)));
        assert_eq!(Retention::parse("2m"), Ok(Retention::Duration(120_000_000)));
        assert_eq!(
            Retention::parse("1h"),
            Ok(Retention::Duration(3_600_000_000))
        );
        assert_eq!(Retention::parse("512b"), Ok(Retention::Bytes(512)));
        assert_eq!(Retention::parse("64kb"), Ok(Retention::Bytes(64 << 10)));
        assert_eq!(Retention::parse(" 3MB "), Ok(Retention::Bytes(3 << 20)));
        assert_eq!(Retention::parse("1gb"), Ok(Retention::Bytes(1 << 30)));
    }

    #[test]
    fn malformed_retention_specs_are_rejected() {
        for bad in ["", "12", "s", "-5s", "12q", "9999999999999999999gb"] {
            assert!(Retention::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn describe_names_the_window() {
        assert_eq!(Retention::Duration(90).describe(), "last 90 µs");
        assert_eq!(Retention::Bytes(64).describe(), "newest 64 bytes");
    }

    #[test]
    fn tmp_path_sits_beside_the_archive() {
        let tmp = compact_tmp_path_for(Path::new("/data/run.ps3a"));
        assert_eq!(tmp, Path::new("/data/run.ps3a.compact-tmp"));
    }
}
