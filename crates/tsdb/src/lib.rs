//! # ps3-tsdb — the time-series query engine
//!
//! [`ps3_archive`] gives captures a durable, crash-safe on-disk form;
//! this crate makes them *queryable at scale*. Three pieces:
//!
//! * **[`pyramid`]** — a multi-resolution aggregation pyramid over the
//!   archive's summary blocks: tier-1 nodes fold 100 blocks (100 k
//!   frames), tier-2 nodes fold 100 tier-1 nodes (10 M frames), each
//!   node carrying count/sum/min/max/first/last and trapezoid energy.
//!   Persisted in a CRC-guarded `.ps3p` sidecar; rebuilt by scan when
//!   stale or corrupt.
//! * **[`query`]** — [`Tsdb`], which answers `stats`, `energy`,
//!   `energy_between`, and `downsample` by greedy tier decomposition:
//!   whole tier nodes for the covered core of a range, raw decode only
//!   at its edges. Counts and extremes are bit-identical to the flat
//!   [`ps3_archive::Archive`] paths; sums and energies are
//!   bit-identical to the in-crate `*_ref` reference paths and agree
//!   with the flat paths to float-regrouping precision.
//! * **[`compactor`] / [`writer`]** — seal-time maintenance:
//!   incremental pyramid upkeep, background compaction of small
//!   segments into large ones (write-new-then-atomic-rename, so a
//!   crash at any byte leaves the original archive intact), and
//!   retention windows ([`Retention::parse`]: `90s`, `64mb`, …) that
//!   drop whole expired segments without blocking acquisition.

#![forbid(unsafe_code)]

pub mod compactor;
pub mod pyramid;
pub mod query;
pub mod writer;

pub use compactor::{
    compact_archive, compact_tmp_path_for, retain_archive, retained_prefix_drop, stage_compacted,
    stage_retained, CompactOptions, CompactReport, Retention, DEFAULT_COMPACT_TARGET_FRAMES,
};
pub use pyramid::{
    pyramid_path_for, Pyramid, PyramidConfig, PyramidCounts, PyramidNode, SegmentPyramid,
};
pub use query::Tsdb;
pub use writer::{TsdbWriter, TsdbWriterOptions};
