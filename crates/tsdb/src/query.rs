//! The tiered query engine: O(log n)-ish range queries over an
//! archive through its aggregation pyramid.
//!
//! Every query decomposes its range the same way, per overlapping
//! segment: binary-search the summary blocks for the overlap and the
//! fully-covered core, then walk the core greedily — consume a tier-2
//! node when the cursor is aligned on one and the node ends inside the
//! core, else a tier-1 node under the same rule, else a single summary
//! block; only the partial blocks at the range edges decode payload
//! bytes, with the per-frame arithmetic copied from the flat
//! `Archive` query paths. A query over a capture of any size touches
//! O(range-edges + pyramid nodes) data.
//!
//! # Exactness contract
//!
//! * `count`, `min_w`, `max_w` are **bit-identical** to
//!   [`Archive::stats`] always: counts add exactly and min/max folding
//!   is associative.
//! * `sum_w`, energies, and downsampled means are bit-identical to the
//!   `*_ref` reference paths, which run this same decomposition with
//!   every tier recomputed from freshly decoded frames (the proptests
//!   pin this). Against the flat archive paths they agree to ~1e-9
//!   relative — same terms, different float grouping.
//! * [`Tsdb::downsample`] produces buckets with **identical times and
//!   counts** to [`Archive::downsample`] (bucketing is count-driven
//!   and counts are exact); only the mean's low bits may differ when a
//!   tier node is consumed whole.
//!
//! Per-segment work for `stats` and `energy` fans out over the
//! `compat/rayon` pool; the fold across segments is sequential in
//! segment order, so results never depend on thread count.

use ps3_analysis::Trace;
use ps3_archive::format::SUMMARY_FRAMES;
use ps3_archive::{
    build_summaries, frame_total, Archive, ArchiveError, ArchiveFrame, RangeStats, SegmentMeta,
    SummaryBlock,
};
use ps3_units::{Joules, SimTime, Watts};

use crate::pyramid::{Pyramid, PyramidConfig, PyramidNode, SegmentPyramid};

/// A read-only archive handle with its aggregation pyramid: the query
/// side of the time-series engine.
#[derive(Debug)]
pub struct Tsdb {
    archive: Archive,
    config: PyramidConfig,
    pyramid: Pyramid,
    from_sidecar: bool,
}

/// Block-index bounds of a query range within one segment:
/// `[o_lo, o_hi)` overlap the range at all, `[f_lo, f_hi)` are fully
/// covered by it.
struct BlockBounds {
    o_lo: usize,
    o_hi: usize,
    f_lo: usize,
    f_hi: usize,
}

fn block_bounds(summaries: &[SummaryBlock], start_us: u64, end_us: u64) -> BlockBounds {
    BlockBounds {
        o_lo: summaries.partition_point(|b| b.last_us < start_us),
        o_hi: summaries.partition_point(|b| b.first_us < end_us),
        f_lo: summaries.partition_point(|b| b.first_us < start_us),
        f_hi: summaries.partition_point(|b| b.last_us < end_us),
    }
}

/// The largest aligned pyramid node starting at block `bi` whose span
/// ends inside the fully-covered core `[.., f_hi)` and whose frame
/// count fits `remaining` (pass `u64::MAX` for plain coverage walks).
/// Falls through tier 2 → tier 1 → the single block. Returns the node
/// and the block index just past it.
fn pick_node(
    summaries: &[SummaryBlock],
    pyr: &SegmentPyramid,
    config: PyramidConfig,
    bi: usize,
    f_hi: usize,
    remaining: u64,
) -> Option<(PyramidNode, usize)> {
    let t1b = config.tier1_blocks as usize;
    let t2b = config.tier2_blocks();
    let block_count = summaries.len();
    if bi.is_multiple_of(t2b) {
        let end = (bi / t2b + 1) * t2b;
        let end = end.min(block_count);
        if end <= f_hi {
            let node = pyr.tier2[bi / t2b];
            if node.count <= remaining {
                return Some((node, end));
            }
        }
    }
    if bi.is_multiple_of(t1b) {
        let end = (bi / t1b + 1) * t1b;
        let end = end.min(block_count);
        if end <= f_hi {
            let node = pyr.tier1[bi / t1b];
            if node.count <= remaining {
                return Some((node, end));
            }
        }
    }
    let node = PyramidNode::from_block(&summaries[bi]);
    (node.count <= remaining).then_some((node, bi + 1))
}

/// Frame index range `[lo, hi)` of summary block `bi` (mirror of the
/// archive's private `SegmentMeta::block_frames`).
fn block_frames(meta: &SegmentMeta, bi: usize) -> (usize, usize) {
    let lo = bi * SUMMARY_FRAMES;
    let hi = (lo + SUMMARY_FRAMES).min(meta.header.frame_count as usize);
    (lo, hi)
}

/// A segment's tier view for one query: stored pyramid + stored
/// summaries (fast path), or everything recomputed from decoded frames
/// (the `*_ref` reference path).
struct SegView {
    summaries_owned: Option<Vec<SummaryBlock>>,
    pyramid_owned: Option<SegmentPyramid>,
    decoded: Option<Vec<ArchiveFrame>>,
}

/// Per-segment energy partial: junction endpoints plus interior sum.
struct SegEnergy {
    first: Option<(u64, f64)>,
    last: Option<(u64, f64)>,
    energy: f64,
}

fn add_block(stats: &mut RangeStats, count: u64, sum_w: f64, min_w: f64, max_w: f64) {
    if count == 0 {
        return;
    }
    stats.count += count;
    stats.sum_w += sum_w;
    stats.min_w = stats.min_w.min(min_w);
    stats.max_w = stats.max_w.max(max_w);
}

fn empty_stats() -> RangeStats {
    RangeStats {
        count: 0,
        sum_w: 0.0,
        min_w: f64::INFINITY,
        max_w: f64::NEG_INFINITY,
    }
}

fn junction(energy: &mut f64, prev: &Option<(u64, f64)>, t_us: u64, w: f64) {
    if let Some((pt, pw)) = *prev {
        let dt = (t_us - pt) as f64 * 1e-6;
        *energy += (pw + w) / 2.0 * dt;
    }
}

impl Tsdb {
    /// Opens the archive at `path` with the default pyramid fan-out,
    /// loading the `.ps3p` sidecar when fresh and rebuilding (and
    /// best-effort re-saving) it otherwise.
    ///
    /// # Errors
    ///
    /// Archive open errors; a bad *sidecar* is never an error.
    pub fn open(path: impl AsRef<std::path::Path>) -> Result<Self, ArchiveError> {
        Self::open_with(path, PyramidConfig::default())
    }

    /// [`Tsdb::open`] with an explicit pyramid fan-out.
    ///
    /// # Errors
    ///
    /// Archive open errors.
    pub fn open_with(
        path: impl AsRef<std::path::Path>,
        config: PyramidConfig,
    ) -> Result<Self, ArchiveError> {
        let archive = Archive::open(path)?;
        let (pyramid, from_sidecar) = Pyramid::load_or_build(&archive, config);
        if !from_sidecar {
            let _ = pyramid.save_for(archive.path());
        }
        Ok(Self {
            archive,
            config,
            pyramid,
            from_sidecar,
        })
    }

    /// Wraps an already-open archive, building the pyramid in memory
    /// without touching any sidecar.
    #[must_use]
    pub fn from_archive(archive: Archive, config: PyramidConfig) -> Self {
        let pyramid = Pyramid::build(&archive, config);
        Self {
            archive,
            config,
            pyramid,
            from_sidecar: false,
        }
    }

    /// The underlying archive (exact reads, verification, metadata).
    #[must_use]
    pub fn archive(&self) -> &Archive {
        &self.archive
    }

    /// The pyramid fan-out in use.
    #[must_use]
    pub fn config(&self) -> PyramidConfig {
        self.config
    }

    /// The aggregation pyramid.
    #[must_use]
    pub fn pyramid(&self) -> &Pyramid {
        &self.pyramid
    }

    /// `true` when the `.ps3p` sidecar was fresh and loaded as-is;
    /// `false` when the pyramid was rebuilt by scan.
    #[must_use]
    pub fn from_sidecar(&self) -> bool {
        self.from_sidecar
    }

    /// Takes the archive back out, dropping the pyramid.
    #[must_use]
    pub fn into_archive(self) -> Archive {
        self.archive
    }

    /// Indices of segments overlapping `[start, end)`, mirroring the
    /// archive's own overlap predicate.
    fn overlap_indices(&self, start: SimTime, end: SimTime) -> Vec<usize> {
        let (start_us, end_excl) = (start.as_micros(), end.as_micros().saturating_add(1));
        self.archive
            .segments()
            .iter()
            .enumerate()
            .filter(|(_, s)| s.header.start_us < end_excl && s.header.end_us >= start_us)
            .map(|(i, _)| i)
            .collect()
    }

    /// Tier view of segment `i`: stored tiers, or tiers recomputed
    /// from decoded frames for the reference path.
    fn seg_view(&self, i: usize, stored: bool) -> Result<SegView, ArchiveError> {
        if stored {
            return Ok(SegView {
                summaries_owned: None,
                pyramid_owned: None,
                decoded: None,
            });
        }
        let meta = &self.archive.segments()[i];
        let frames = self.archive.decode_segment_frames(meta)?;
        let watts: Vec<f64> = frames
            .iter()
            .map(|f| frame_total(self.archive.configs(), self.archive.adc(), f).value())
            .collect();
        let summaries = build_summaries(&frames, &watts);
        let pyramid = SegmentPyramid::build(meta.header.seq, &summaries, self.config);
        Ok(SegView {
            summaries_owned: Some(summaries),
            pyramid_owned: Some(pyramid),
            decoded: Some(frames),
        })
    }

    fn view_parts<'a>(
        &'a self,
        i: usize,
        view: &'a SegView,
    ) -> (&'a [SummaryBlock], &'a SegmentPyramid) {
        match (&view.summaries_owned, &view.pyramid_owned) {
            (Some(s), Some(p)) => (s, p),
            _ => (
                &self.archive.segments()[i].summaries,
                &self.pyramid.segments[i],
            ),
        }
    }

    fn ensure_decoded<'a>(
        &self,
        meta: &SegmentMeta,
        decoded: &'a mut Option<Vec<ArchiveFrame>>,
    ) -> Result<&'a Vec<ArchiveFrame>, ArchiveError> {
        match decoded {
            Some(frames) => Ok(frames),
            None => {
                *decoded = Some(self.archive.decode_segment_frames(meta)?);
                Ok(decoded.as_ref().expect("just inserted"))
            }
        }
    }

    /// Statistics over `[start, end)` served from the pyramid. See the
    /// module docs for the exactness contract.
    ///
    /// # Errors
    ///
    /// I/O or corruption errors from decoding partial blocks.
    pub fn stats(&self, start: SimTime, end: SimTime) -> Result<RangeStats, ArchiveError> {
        self.stats_impl(start, end, true)
    }

    /// The reference path: the same decomposition with every tier
    /// recomputed from decoded frames. Bit-identical to
    /// [`Tsdb::stats`] by construction.
    ///
    /// # Errors
    ///
    /// I/O or corruption errors from decoding.
    pub fn stats_ref(&self, start: SimTime, end: SimTime) -> Result<RangeStats, ArchiveError> {
        self.stats_impl(start, end, false)
    }

    fn stats_impl(
        &self,
        start: SimTime,
        end: SimTime,
        stored: bool,
    ) -> Result<RangeStats, ArchiveError> {
        let partials = rayon::global().par_map(self.overlap_indices(start, end), |i| {
            self.segment_stats(i, start, end, stored)
        });
        let mut stats = empty_stats();
        for partial in partials {
            let s = partial?;
            add_block(&mut stats, s.count, s.sum_w, s.min_w, s.max_w);
        }
        Ok(stats)
    }

    fn segment_stats(
        &self,
        i: usize,
        start: SimTime,
        end: SimTime,
        stored: bool,
    ) -> Result<RangeStats, ArchiveError> {
        let meta = &self.archive.segments()[i];
        let mut view = self.seg_view(i, stored)?;
        let mut decoded = view.decoded.take();
        let (summaries, pyr) = self.view_parts(i, &view);
        let (start_us, end_us) = (start.as_micros(), end.as_micros());
        let bounds = block_bounds(summaries, start_us, end_us);
        let mut stats = empty_stats();
        let mut bi = bounds.o_lo;
        while bi < bounds.o_hi {
            if bi >= bounds.f_lo && bi < bounds.f_hi {
                let (node, next) =
                    pick_node(summaries, pyr, self.config, bi, bounds.f_hi, u64::MAX)
                        .expect("an unbounded pick always yields a node");
                add_block(&mut stats, node.count, node.sum_w, node.min_w, node.max_w);
                bi = next;
                continue;
            }
            // Range edge: per-block sequential accumulation over the
            // decoded frames, mirroring `Archive::stats`.
            let frames = self.ensure_decoded(meta, &mut decoded)?;
            let (lo, hi) = block_frames(meta, bi);
            let (mut count, mut sum) = (0u64, 0.0f64);
            let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
            for frame in &frames[lo..hi] {
                if frame.time < start || frame.time >= end {
                    continue;
                }
                let w = frame_total(self.archive.configs(), self.archive.adc(), frame).value();
                count += 1;
                sum += w;
                min = min.min(w);
                max = max.max(w);
            }
            add_block(&mut stats, count, sum, min, max);
            bi += 1;
        }
        Ok(stats)
    }

    /// Trapezoid energy over the samples in `[start, end)`, served
    /// from the pyramid. See the module docs for the exactness
    /// contract.
    ///
    /// # Errors
    ///
    /// I/O or corruption errors from decoding partial blocks.
    pub fn energy(&self, start: SimTime, end: SimTime) -> Result<Joules, ArchiveError> {
        self.energy_impl(start, end, true)
    }

    /// The reference path for [`Tsdb::energy`] (tiers recomputed from
    /// decoded frames).
    ///
    /// # Errors
    ///
    /// I/O or corruption errors from decoding.
    pub fn energy_ref(&self, start: SimTime, end: SimTime) -> Result<Joules, ArchiveError> {
        self.energy_impl(start, end, false)
    }

    fn energy_impl(
        &self,
        start: SimTime,
        end: SimTime,
        stored: bool,
    ) -> Result<Joules, ArchiveError> {
        let partials = rayon::global().par_map(self.overlap_indices(start, end), |i| {
            self.segment_energy(i, start, end, stored)
        });
        let mut energy = 0.0f64;
        let mut prev: Option<(u64, f64)> = None;
        for partial in partials {
            let seg = partial?;
            let Some(first) = seg.first else { continue };
            junction(&mut energy, &prev, first.0, first.1);
            energy += seg.energy;
            prev = seg.last;
        }
        Ok(Joules::new(energy))
    }

    fn segment_energy(
        &self,
        i: usize,
        start: SimTime,
        end: SimTime,
        stored: bool,
    ) -> Result<SegEnergy, ArchiveError> {
        let meta = &self.archive.segments()[i];
        let mut view = self.seg_view(i, stored)?;
        let mut decoded = view.decoded.take();
        let (summaries, pyr) = self.view_parts(i, &view);
        let (start_us, end_us) = (start.as_micros(), end.as_micros());
        let bounds = block_bounds(summaries, start_us, end_us);
        let mut out = SegEnergy {
            first: None,
            last: None,
            energy: 0.0,
        };
        let mut bi = bounds.o_lo;
        while bi < bounds.o_hi {
            if bi >= bounds.f_lo && bi < bounds.f_hi {
                let (node, next) =
                    pick_node(summaries, pyr, self.config, bi, bounds.f_hi, u64::MAX)
                        .expect("an unbounded pick always yields a node");
                junction(&mut out.energy, &out.last, node.first_us, node.first_w);
                out.energy += node.energy_j;
                if out.first.is_none() {
                    out.first = Some((node.first_us, node.first_w));
                }
                out.last = Some((node.last_us, node.last_w));
                bi = next;
                continue;
            }
            let frames = self.ensure_decoded(meta, &mut decoded)?;
            let (lo, hi) = block_frames(meta, bi);
            for frame in &frames[lo..hi] {
                if frame.time < start || frame.time >= end {
                    continue;
                }
                let w = frame_total(self.archive.configs(), self.archive.adc(), frame).value();
                let t_us = frame.time.as_micros();
                junction(&mut out.energy, &out.last, t_us, w);
                if out.first.is_none() {
                    out.first = Some((t_us, w));
                }
                out.last = Some((t_us, w));
            }
            bi += 1;
        }
        Ok(out)
    }

    /// Energy between the first marker labelled `start` and the first
    /// marker labelled `end` at or after it — [`Archive::energy_between`]
    /// served through the pyramid.
    ///
    /// # Errors
    ///
    /// [`ArchiveError::MarkerNotFound`] when a label is missing or out
    /// of order; I/O or corruption errors from decoding.
    pub fn energy_between(&self, start: char, end: char) -> Result<Joules, ArchiveError> {
        let t0 = self
            .archive
            .marker_time(start)
            .ok_or(ArchiveError::MarkerNotFound(start))?;
        let t0_us = t0.as_micros();
        let t1 = self
            .archive
            .markers()
            .iter()
            .find(|&&(t, l)| l == end && t >= t0_us)
            .map(|&(t, _)| SimTime::from_micros(t))
            .ok_or(ArchiveError::MarkerNotFound(end))?;
        self.energy(t0, t1)
    }

    /// The reference path for [`Tsdb::energy_between`].
    ///
    /// # Errors
    ///
    /// As [`Tsdb::energy_between`].
    pub fn energy_between_ref(&self, start: char, end: char) -> Result<Joules, ArchiveError> {
        let t0 = self
            .archive
            .marker_time(start)
            .ok_or(ArchiveError::MarkerNotFound(start))?;
        let t0_us = t0.as_micros();
        let t1 = self
            .archive
            .markers()
            .iter()
            .find(|&&(t, l)| l == end && t >= t0_us)
            .map(|&(t, _)| SimTime::from_micros(t))
            .ok_or(ArchiveError::MarkerNotFound(end))?;
        self.energy_ref(t0, t1)
    }

    /// Downsampled read of `[start, end)` with [`Archive::downsample`]
    /// semantics — identical bucket boundaries, times, and counts —
    /// but buckets covered by whole pyramid nodes consume the node
    /// instead of its blocks or frames. Markers in range are carried
    /// over at their original times.
    ///
    /// # Errors
    ///
    /// I/O or corruption errors from decoding.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn downsample(
        &self,
        start: SimTime,
        end: SimTime,
        divisor: u64,
    ) -> Result<Trace, ArchiveError> {
        let mut trace = Trace::new();
        self.downsample_into(start, end, divisor, &mut trace)?;
        Ok(trace)
    }

    /// [`Tsdb::downsample`] into a caller-owned trace, which is
    /// cleared first; repeated queries reuse its allocations.
    ///
    /// # Errors
    ///
    /// I/O or corruption errors from decoding.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn downsample_into(
        &self,
        start: SimTime,
        end: SimTime,
        divisor: u64,
        out: &mut Trace,
    ) -> Result<(), ArchiveError> {
        self.downsample_impl(start, end, divisor, out, true)
    }

    /// The reference path for [`Tsdb::downsample`] (tiers recomputed
    /// from decoded frames; same node-fit decisions, since fits depend
    /// only on exact counts).
    ///
    /// # Errors
    ///
    /// I/O or corruption errors from decoding.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn downsample_ref(
        &self,
        start: SimTime,
        end: SimTime,
        divisor: u64,
    ) -> Result<Trace, ArchiveError> {
        let mut trace = Trace::new();
        self.downsample_impl(start, end, divisor, &mut trace, false)?;
        Ok(trace)
    }

    fn downsample_impl(
        &self,
        start: SimTime,
        end: SimTime,
        divisor: u64,
        out: &mut Trace,
        stored: bool,
    ) -> Result<(), ArchiveError> {
        assert!(divisor > 0, "divisor must be at least 1");
        if divisor == 1 {
            return self.archive.read_range_into(start, end, out);
        }
        out.clear();
        let (start_us, end_us) = (start.as_micros(), end.as_micros());
        let (mut count, mut sum) = (0u64, 0.0f64);
        // Bucket state carries across segments, so this walk is
        // inherently sequential in segment order.
        for i in self.overlap_indices(start, end) {
            let meta = &self.archive.segments()[i];
            let mut view = self.seg_view(i, stored)?;
            let mut decoded = view.decoded.take();
            let (summaries, pyr) = self.view_parts(i, &view);
            let bounds = block_bounds(summaries, start_us, end_us);
            let mut bi = bounds.o_lo;
            while bi < bounds.o_hi {
                if bi >= bounds.f_lo && bi < bounds.f_hi {
                    if let Some((node, next)) = pick_node(
                        summaries,
                        pyr,
                        self.config,
                        bi,
                        bounds.f_hi,
                        divisor - count,
                    ) {
                        count += node.count;
                        sum += node.sum_w;
                        if count == divisor {
                            out.push(
                                SimTime::from_micros(node.last_us),
                                Watts::new(sum / divisor as f64),
                            );
                            (count, sum) = (0, 0.0);
                        }
                        bi = next;
                        continue;
                    }
                }
                // Edge block, or a block too large for the open
                // bucket: per-frame, mirroring `Archive::downsample`.
                let frames = self.ensure_decoded(meta, &mut decoded)?;
                let (lo, hi) = block_frames(meta, bi);
                for frame in &frames[lo..hi] {
                    if frame.time < start || frame.time >= end {
                        continue;
                    }
                    count += 1;
                    sum += frame_total(self.archive.configs(), self.archive.adc(), frame).value();
                    if count == divisor {
                        out.push(frame.time, Watts::new(sum / divisor as f64));
                        (count, sum) = (0, 0.0);
                    }
                }
                bi += 1;
            }
        }
        for &(t_us, label) in self.archive.markers() {
            if t_us >= start_us && t_us < end_us {
                out.mark(SimTime::from_micros(t_us), label);
            }
        }
        Ok(())
    }
}
