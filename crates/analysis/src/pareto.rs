//! Pareto-front extraction for the auto-tuning experiments (Fig 8/10).
//!
//! Each tuned kernel configuration yields a (performance, efficiency)
//! point; the paper highlights the Pareto-optimal set where neither
//! metric can improve without degrading the other. Both objectives are
//! maximised here.

/// A point in a two-objective maximisation problem.
///
/// For the paper's figures, `x` is compute performance (TFLOP/s) and
/// `y` is energy efficiency (TFLOP/J).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoPoint {
    /// First objective (maximised).
    pub x: f64,
    /// Second objective (maximised).
    pub y: f64,
}

impl ParetoPoint {
    /// Creates a point.
    #[must_use]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// `true` if `self` dominates `other`: at least as good in both
    /// objectives and strictly better in one.
    #[must_use]
    pub fn dominates(&self, other: &Self) -> bool {
        self.x >= other.x && self.y >= other.y && (self.x > other.x || self.y > other.y)
    }
}

/// Indices of the Pareto-optimal (non-dominated) points, sorted by
/// descending `x`.
///
/// Duplicate points all appear in the front. Runs in `O(n log n)`.
#[must_use]
pub fn pareto_front_indices(points: &[ParetoPoint]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    // Sort by x desc, then y desc so the scan below is a single pass.
    order.sort_by(|&a, &b| {
        points[b]
            .x
            .partial_cmp(&points[a].x)
            .unwrap_or(core::cmp::Ordering::Equal)
            .then(
                points[b]
                    .y
                    .partial_cmp(&points[a].y)
                    .unwrap_or(core::cmp::Ordering::Equal),
            )
    });
    let mut front = Vec::new();
    let mut best_y = f64::NEG_INFINITY;
    let mut front_x = f64::NAN;
    for &i in &order {
        let p = points[i];
        if p.y > best_y || (p.y == best_y && p.x == front_x) {
            front.push(i);
            if p.y > best_y {
                best_y = p.y;
                front_x = p.x;
            }
        }
    }
    front
}

/// The Pareto-optimal points themselves, sorted by descending `x`.
#[must_use]
pub fn pareto_front(points: &[ParetoPoint]) -> Vec<ParetoPoint> {
    pareto_front_indices(points)
        .into_iter()
        .map(|i| points[i])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_relation() {
        let a = ParetoPoint::new(2.0, 2.0);
        let b = ParetoPoint::new(1.0, 1.0);
        let c = ParetoPoint::new(3.0, 0.5);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&c));
        assert!(!c.dominates(&a));
        assert!(!a.dominates(&a), "point does not dominate itself");
    }

    #[test]
    fn front_of_tradeoff_curve() {
        let pts = vec![
            ParetoPoint::new(1.0, 4.0),
            ParetoPoint::new(2.0, 3.0),
            ParetoPoint::new(3.0, 2.0),
            ParetoPoint::new(4.0, 1.0),
            ParetoPoint::new(1.5, 1.5), // dominated by (2,3)
            ParetoPoint::new(2.5, 0.5), // dominated by (3,2)
        ];
        let front = pareto_front(&pts);
        assert_eq!(front.len(), 4);
        assert_eq!(front[0], ParetoPoint::new(4.0, 1.0));
        assert_eq!(front[3], ParetoPoint::new(1.0, 4.0));
    }

    #[test]
    fn single_dominant_point() {
        let pts = vec![
            ParetoPoint::new(5.0, 5.0),
            ParetoPoint::new(1.0, 1.0),
            ParetoPoint::new(4.0, 4.0),
        ];
        assert_eq!(pareto_front(&pts), vec![ParetoPoint::new(5.0, 5.0)]);
    }

    #[test]
    fn empty_input() {
        assert!(pareto_front(&[]).is_empty());
    }

    #[test]
    fn front_never_contains_dominated_point() {
        // Brute-force cross-check on a pseudo-random cloud.
        let pts: Vec<ParetoPoint> = (0..200u32)
            .map(|i| {
                let x = f64::from((i.wrapping_mul(2_654_435_761)) % 1000) / 100.0;
                let y = f64::from((i.wrapping_mul(40_503)) % 1000) / 100.0;
                ParetoPoint::new(x, y)
            })
            .collect();
        let front = pareto_front_indices(&pts);
        for &i in &front {
            for (j, q) in pts.iter().enumerate() {
                if i != j {
                    assert!(!q.dominates(&pts[i]), "front point {i} is dominated by {j}");
                }
            }
        }
        // And every non-front point is dominated by someone.
        for (j, q) in pts.iter().enumerate() {
            if !front.contains(&j) {
                assert!(
                    pts.iter()
                        .enumerate()
                        .any(|(i, p)| i != j && p.dominates(q)),
                    "non-front point {j} is not dominated"
                );
            }
        }
    }
}
