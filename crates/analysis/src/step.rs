//! Step-response analysis (paper Fig 5).
//!
//! The step-response experiment drives the electronic load with a 100 Hz
//! square wave and inspects how quickly the measured power follows. The
//! helpers here locate edges, extract the low/high plateau levels and
//! compute 10–90 % rise times.

use ps3_units::{SimDuration, SimTime};

use crate::trace::Trace;

/// A detected step edge in a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepEdge {
    /// Time of the sample where the signal first crosses 50 % of the
    /// step amplitude.
    pub time: SimTime,
    /// `true` for a rising edge, `false` for falling.
    pub rising: bool,
}

/// Estimates the low and high plateau levels of a square-wave trace.
///
/// Levels are taken as the means of the lower and upper halves of the
/// samples, split at the global midpoint — robust to noise as long as
/// the duty cycle is not extreme.
///
/// Returns `None` if the trace has fewer than two samples or no
/// amplitude (all samples equal).
#[must_use]
pub fn step_levels(trace: &Trace) -> Option<(f64, f64)> {
    if trace.len() < 2 {
        return None;
    }
    let powers = trace.powers();
    let min = powers.iter().copied().fold(f64::INFINITY, f64::min);
    let max = powers.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if max <= min {
        return None;
    }
    let mid = (min + max) / 2.0;
    let (mut lo_sum, mut lo_n, mut hi_sum, mut hi_n) = (0.0, 0usize, 0.0, 0usize);
    for p in &powers {
        if *p < mid {
            lo_sum += p;
            lo_n += 1;
        } else {
            hi_sum += p;
            hi_n += 1;
        }
    }
    if lo_n == 0 || hi_n == 0 {
        return None;
    }
    Some((lo_sum / lo_n as f64, hi_sum / hi_n as f64))
}

/// Finds all 50 %-crossing edges of a square-wave trace.
///
/// `low`/`high` are the plateau levels (see [`step_levels`]). Edges
/// closer together than `min_separation` are merged (noise-induced
/// double crossings).
#[must_use]
pub fn find_edges(
    trace: &Trace,
    low: f64,
    high: f64,
    min_separation: SimDuration,
) -> Vec<StepEdge> {
    let mid = (low + high) / 2.0;
    let mut edges = Vec::new();
    let mut above = None::<bool>;
    for s in trace.iter() {
        let now_above = s.power.value() >= mid;
        if let Some(prev) = above {
            if prev != now_above {
                let keep = edges
                    .last()
                    .map(|e: &StepEdge| s.time - e.time >= min_separation)
                    .unwrap_or(true);
                if keep {
                    edges.push(StepEdge {
                        time: s.time,
                        rising: now_above,
                    });
                } else {
                    // Merge: drop the bounce pair entirely.
                    edges.pop();
                }
            }
        }
        above = Some(now_above);
    }
    edges
}

/// 10–90 % rise time of the first rising edge after `from`.
///
/// Scans forward for the first sample above `low + 10 %` of the
/// amplitude that is followed (monotonicity not required) by a crossing
/// of the 90 % threshold, and reports the time between those two
/// crossings. Returns `None` when no complete rising edge exists.
#[must_use]
pub fn rise_time(trace: &Trace, low: f64, high: f64, from: SimTime) -> Option<SimDuration> {
    let amp = high - low;
    if amp <= 0.0 {
        return None;
    }
    let t10 = low + 0.1 * amp;
    let t90 = low + 0.9 * amp;
    let mut start = None;
    let mut below_since_start = true;
    for s in trace.iter().filter(|s| s.time >= from) {
        let p = s.power.value();
        if start.is_none() {
            if p <= t10 {
                below_since_start = false;
            } else if !below_since_start && p > t10 {
                start = Some(s.time);
            }
        } else if p >= t90 {
            return Some(s.time - start.unwrap());
        } else if p <= t10 {
            // Fell back below 10%: restart edge detection.
            start = None;
        }
    }
    None
}

/// Time for the signal to stay within `tolerance` of `target` after the
/// edge at `edge_time`.
#[must_use]
pub fn settle_time(
    trace: &Trace,
    target: f64,
    tolerance: f64,
    edge_time: SimTime,
) -> Option<SimDuration> {
    let mut settled_at = None;
    for s in trace.iter().filter(|s| s.time >= edge_time) {
        if (s.power.value() - target).abs() <= tolerance {
            settled_at.get_or_insert(s.time);
        } else {
            settled_at = None;
        }
    }
    settled_at.map(|t| t - edge_time)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps3_units::Watts;

    /// Builds a clean 100 Hz square wave between 40 W and 96 W sampled
    /// at 20 kHz, with a 3-sample linear edge.
    fn square_trace() -> Trace {
        let mut t = Trace::new();
        let period_samples = 200; // 10 ms at 50 µs
        for i in 0..1000u64 {
            let phase = i % period_samples;
            let p = match phase {
                0..=2 => 40.0 + 56.0 * (phase as f64 / 3.0),
                3..=99 => 96.0,
                100..=102 => 96.0 - 56.0 * ((phase - 100) as f64 / 3.0),
                _ => 40.0,
            };
            t.push(SimTime::from_micros(i * 50), Watts::new(p));
        }
        t
    }

    #[test]
    fn levels_of_square_wave() {
        let (lo, hi) = step_levels(&square_trace()).unwrap();
        assert!((lo - 40.0).abs() < 2.0, "lo={lo}");
        assert!((hi - 96.0).abs() < 2.0, "hi={hi}");
    }

    #[test]
    fn edges_alternate() {
        let trace = square_trace();
        let edges = find_edges(&trace, 40.0, 96.0, SimDuration::from_micros(500));
        assert!(edges.len() >= 8, "found {} edges", edges.len());
        for pair in edges.windows(2) {
            assert_ne!(pair[0].rising, pair[1].rising);
        }
    }

    #[test]
    fn rise_time_of_three_sample_edge() {
        let trace = square_trace();
        let rt = rise_time(&trace, 40.0, 96.0, SimTime::ZERO).unwrap();
        // Edge spans 3 samples of 50 µs; 10–90 % is within ~100–150 µs.
        assert!(
            rt <= SimDuration::from_micros(150),
            "rise time {rt} too slow"
        );
    }

    #[test]
    fn rise_time_none_for_flat_signal() {
        let mut t = Trace::new();
        for i in 0..100u64 {
            t.push(SimTime::from_micros(i * 50), Watts::new(50.0));
        }
        assert!(rise_time(&t, 50.0, 50.0, SimTime::ZERO).is_none());
    }

    #[test]
    fn settle_time_finds_stability() {
        let mut t = Trace::new();
        // Overshoot then settle at 100 W.
        let profile = [0.0, 50.0, 120.0, 110.0, 103.0, 100.5, 100.2, 100.0, 100.1];
        for (i, p) in profile.iter().enumerate() {
            t.push(SimTime::from_micros(i as u64 * 50), Watts::new(*p));
        }
        let st = settle_time(&t, 100.0, 1.0, SimTime::ZERO).unwrap();
        assert_eq!(st, SimDuration::from_micros(5 * 50));
    }

    #[test]
    fn step_levels_rejects_flat_or_tiny() {
        let mut t = Trace::new();
        t.push(SimTime::ZERO, Watts::new(5.0));
        t.push(SimTime::from_micros(50), Watts::new(5.0));
        assert!(step_levels(&t).is_none());
        assert!(step_levels(&Trace::new()).is_none());
    }
}
