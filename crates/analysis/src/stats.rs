//! Summary statistics and rate-reduction helpers.

use core::fmt;

/// Summary statistics over a set of scalar samples.
///
/// Mirrors the columns of the paper's Table II: minimum, maximum,
/// peak-to-peak range, and standard deviation, plus mean and RMS which
/// the error analysis in §III-A uses.
///
/// # Examples
///
/// ```
/// use ps3_analysis::SampleStats;
///
/// let s = SampleStats::from_samples([4.0, 6.0]).unwrap();
/// assert_eq!(s.min, 4.0);
/// assert_eq!(s.max, 6.0);
/// assert_eq!(s.mean, 5.0);
/// assert_eq!(s.peak_to_peak(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleStats {
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Root-mean-square of the samples.
    pub rms: f64,
    /// Number of samples summarised.
    pub count: usize,
}

impl SampleStats {
    /// Computes statistics over an iterator of samples.
    ///
    /// Returns `None` for an empty iterator.
    pub fn from_samples<I>(samples: I) -> Option<Self>
    where
        I: IntoIterator<Item = f64>,
    {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        let mut count = 0usize;
        for s in samples {
            min = min.min(s);
            max = max.max(s);
            sum += s;
            sum_sq += s * s;
            count += 1;
        }
        if count == 0 {
            return None;
        }
        let n = count as f64;
        let mean = sum / n;
        let var = (sum_sq / n - mean * mean).max(0.0);
        Some(Self {
            min,
            max,
            mean,
            std: var.sqrt(),
            rms: (sum_sq / n).sqrt(),
            count,
        })
    }

    /// Peak-to-peak range (`max − min`), the `W_pp` column of Table II.
    #[must_use]
    pub fn peak_to_peak(&self) -> f64 {
        self.max - self.min
    }
}

impl fmt::Display for SampleStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} min={:.4} max={:.4} p-p={:.4} mean={:.4} std={:.4}",
            self.count,
            self.min,
            self.max,
            self.peak_to_peak(),
            self.mean,
            self.std
        )
    }
}

/// Averages consecutive blocks of `block` samples, reducing the
/// effective sampling rate by that factor.
///
/// This is the operation behind Table II: a 20 kHz stream block-averaged
/// with `block = 20` yields a 1 kHz stream whose noise standard
/// deviation shrinks by ≈ √20. A trailing partial block is dropped so
/// that every output value averages exactly `block` inputs.
///
/// # Panics
///
/// Panics if `block` is zero.
///
/// # Examples
///
/// ```
/// let avg = ps3_analysis::block_average(&[1.0, 3.0, 5.0, 7.0, 9.0], 2);
/// assert_eq!(avg, vec![2.0, 6.0]);
/// ```
#[must_use]
pub fn block_average(samples: &[f64], block: usize) -> Vec<f64> {
    assert!(block > 0, "block size must be non-zero");
    samples
        .chunks_exact(block)
        .map(|c| c.iter().sum::<f64>() / block as f64)
        .collect()
}

/// Keeps every `stride`-th sample (no averaging).
///
/// Useful for plotting long traces at reduced resolution without the
/// noise-reduction effect of [`block_average`].
///
/// # Panics
///
/// Panics if `stride` is zero.
#[must_use]
pub fn decimate(samples: &[f64], stride: usize) -> Vec<f64> {
    assert!(stride > 0, "stride must be non-zero");
    samples.iter().step_by(stride).copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_none() {
        assert!(SampleStats::from_samples(std::iter::empty()).is_none());
    }

    #[test]
    fn single_sample() {
        let s = SampleStats::from_samples([2.5]).unwrap();
        assert_eq!(s.min, 2.5);
        assert_eq!(s.max, 2.5);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.rms, 2.5);
        assert_eq!(s.count, 1);
    }

    #[test]
    fn known_std() {
        // Population std of [2, 4, 4, 4, 5, 5, 7, 9] is exactly 2.
        let s = SampleStats::from_samples([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.std - 2.0).abs() < 1e-12);
        assert_eq!(s.mean, 5.0);
    }

    #[test]
    fn rms_of_symmetric_signal() {
        let s = SampleStats::from_samples([-1.0, 1.0, -1.0, 1.0]).unwrap();
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.rms, 1.0);
    }

    #[test]
    fn block_average_drops_partial_tail() {
        let avg = block_average(&[1.0, 1.0, 1.0, 5.0], 3);
        assert_eq!(avg, vec![1.0]);
    }

    #[test]
    fn block_average_identity_for_block_one() {
        let data = [3.0, 1.0, 4.0];
        assert_eq!(block_average(&data, 1), data.to_vec());
    }

    #[test]
    fn block_average_reduces_std_by_sqrt_n() {
        use rand::prelude::*;
        let mut rng = rand_pcg(42);
        let samples: Vec<f64> = (0..40_000).map(|_| gaussian(&mut rng)).collect();
        let raw = SampleStats::from_samples(samples.iter().copied()).unwrap();
        let avg = block_average(&samples, 16);
        let red = SampleStats::from_samples(avg.iter().copied()).unwrap();
        let ratio = raw.std / red.std;
        assert!(
            (ratio - 4.0).abs() < 0.5,
            "expected ≈4x std reduction, got {ratio}"
        );

        fn rand_pcg(seed: u64) -> StdRng {
            StdRng::seed_from_u64(seed)
        }
        fn gaussian(rng: &mut StdRng) -> f64 {
            // Box-Muller transform; good enough for a test.
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen();
            (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
        }
    }

    #[test]
    fn decimate_strides() {
        assert_eq!(decimate(&[0.0, 1.0, 2.0, 3.0, 4.0], 2), vec![0.0, 2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn zero_block_panics() {
        let _ = block_average(&[1.0], 0);
    }
}
