//! Parser for PowerSensor3 continuous-mode dump files.
//!
//! The host library's `dump_to` writer produces a line-oriented text
//! format:
//!
//! ```text
//! # PowerSensor3 dump (times in device µs)
//! 1025 38.4000 2.1000 40.5000        <- t_us, per-pair W…, total W
//! M 1075 k                           <- marker at t_us with label 'k'
//! ```
//!
//! [`parse_dump`] reads it back into a [`Trace`] (total power) plus the
//! per-pair series, closing the capture-to-analysis loop without the
//! device being attached.

use core::fmt;
use std::error::Error;

use ps3_units::{SimTime, Watts};

use crate::trace::Trace;

/// A parsed dump: the total-power trace plus per-pair power series.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParsedDump {
    /// Total power over time, with markers attached.
    pub total: Trace,
    /// Per-pair power series, one trace per enabled pair, in pair
    /// order.
    pub pairs: Vec<Trace>,
}

/// Errors from [`parse_dump`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ParseDumpError {
    /// A data line had an unparseable field.
    BadNumber {
        /// 1-based line number.
        line: usize,
    },
    /// A marker line was malformed.
    BadMarker {
        /// 1-based line number.
        line: usize,
    },
    /// Data lines disagreed about the number of columns.
    InconsistentColumns {
        /// 1-based line number.
        line: usize,
    },
}

impl fmt::Display for ParseDumpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseDumpError::BadNumber { line } => {
                write!(f, "unparseable number on line {line}")
            }
            ParseDumpError::BadMarker { line } => {
                write!(f, "malformed marker on line {line}")
            }
            ParseDumpError::InconsistentColumns { line } => {
                write!(f, "inconsistent column count on line {line}")
            }
        }
    }
}

impl Error for ParseDumpError {}

/// Parses a dump file's text.
///
/// Comment lines (`#`) are skipped; marker lines attach to the total
/// trace; blank lines are ignored.
///
/// # Errors
///
/// Returns a [`ParseDumpError`] naming the offending line.
pub fn parse_dump(text: &str) -> Result<ParsedDump, ParseDumpError> {
    let mut out = ParsedDump::default();
    let mut columns: Option<usize> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix("M ") {
            let mut parts = rest.split_whitespace();
            let t: u64 = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or(ParseDumpError::BadMarker { line })?;
            let label = parts
                .next()
                .and_then(|s| s.chars().next())
                .ok_or(ParseDumpError::BadMarker { line })?;
            out.total.mark(SimTime::from_micros(t), label);
            continue;
        }
        let fields: Vec<&str> = trimmed.split_whitespace().collect();
        if fields.len() < 2 {
            return Err(ParseDumpError::BadNumber { line });
        }
        match columns {
            None => columns = Some(fields.len()),
            Some(n) if n != fields.len() => {
                return Err(ParseDumpError::InconsistentColumns { line })
            }
            _ => {}
        }
        let t: u64 = fields[0]
            .parse()
            .map_err(|_| ParseDumpError::BadNumber { line })?;
        let time = SimTime::from_micros(t);
        let mut values = Vec::with_capacity(fields.len() - 1);
        for f in &fields[1..] {
            let v: f64 = f.parse().map_err(|_| ParseDumpError::BadNumber { line })?;
            values.push(v);
        }
        // Last column is the total; the rest are per-pair.
        let total = *values.last().expect("len >= 1");
        out.total.push(time, Watts::new(total));
        let pair_count = values.len() - 1;
        while out.pairs.len() < pair_count {
            out.pairs.push(Trace::new());
        }
        for (pair, v) in values[..pair_count].iter().enumerate() {
            out.pairs[pair].push(time, Watts::new(*v));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# PowerSensor3 dump (times in device µs)
25 10.5000 2.0000 12.5000
75 10.6000 2.1000 12.7000
M 75 k
125 10.7000 2.2000 12.9000
";

    #[test]
    fn parses_data_pairs_and_markers() {
        let dump = parse_dump(SAMPLE).unwrap();
        assert_eq!(dump.total.len(), 3);
        assert_eq!(dump.pairs.len(), 2);
        assert_eq!(dump.total.samples()[1].power, Watts::new(12.7));
        assert_eq!(dump.pairs[0].samples()[0].power, Watts::new(10.5));
        assert_eq!(dump.pairs[1].samples()[2].power, Watts::new(2.2));
        assert_eq!(dump.total.markers().len(), 1);
        assert_eq!(dump.total.markers()[0].label, 'k');
        assert_eq!(dump.total.markers()[0].time, SimTime::from_micros(75));
    }

    #[test]
    fn empty_and_comment_only_input() {
        let dump = parse_dump("# nothing\n\n# else\n").unwrap();
        assert!(dump.total.is_empty());
        assert!(dump.pairs.is_empty());
    }

    #[test]
    fn bad_number_is_reported_with_line() {
        let err = parse_dump("25 1.0 2.0\n99 oops 3.0\n").unwrap_err();
        assert_eq!(err, ParseDumpError::BadNumber { line: 2 });
    }

    #[test]
    fn inconsistent_columns_rejected() {
        let err = parse_dump("25 1.0 2.0\n75 1.0 2.0 3.0\n").unwrap_err();
        assert_eq!(err, ParseDumpError::InconsistentColumns { line: 2 });
    }

    #[test]
    fn malformed_marker_rejected() {
        let err = parse_dump("M nope\n").unwrap_err();
        assert_eq!(err, ParseDumpError::BadMarker { line: 1 });
    }

    #[test]
    fn single_column_total_only() {
        // A one-pair dump has two columns: pair0 and total.
        let dump = parse_dump("25 5.0 5.0\n").unwrap();
        assert_eq!(dump.pairs.len(), 1);
        assert_eq!(dump.total.len(), 1);
    }
}
