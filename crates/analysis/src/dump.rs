//! Parser for PowerSensor3 continuous-mode dump files.
//!
//! The host library's `dump_to` writer produces a line-oriented text
//! format:
//!
//! ```text
//! # PowerSensor3 dump (times in device µs)
//! 1025 38.4000 2.1000 40.5000        <- t_us, per-pair W…, total W
//! M 1075 k                           <- marker at t_us with label 'k'
//! ```
//!
//! [`parse_dump`] reads it back into a [`Trace`] (total power) plus the
//! per-pair series, closing the capture-to-analysis loop without the
//! device being attached.

use core::fmt;
use std::error::Error;

use ps3_units::{SimTime, Watts};

use crate::trace::Trace;

/// A parsed dump: the total-power trace plus per-pair power series.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParsedDump {
    /// Total power over time, with markers attached.
    pub total: Trace,
    /// Per-pair power series, one trace per enabled pair, in pair
    /// order.
    pub pairs: Vec<Trace>,
}

/// Errors from [`parse_dump`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ParseDumpError {
    /// A data line had an unparseable field.
    BadNumber {
        /// 1-based line number.
        line: usize,
    },
    /// A marker line was malformed.
    BadMarker {
        /// 1-based line number.
        line: usize,
    },
    /// Data lines disagreed about the number of columns.
    InconsistentColumns {
        /// 1-based line number.
        line: usize,
    },
}

impl fmt::Display for ParseDumpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseDumpError::BadNumber { line } => {
                write!(f, "unparseable number on line {line}")
            }
            ParseDumpError::BadMarker { line } => {
                write!(f, "malformed marker on line {line}")
            }
            ParseDumpError::InconsistentColumns { line } => {
                write!(f, "inconsistent column count on line {line}")
            }
        }
    }
}

impl Error for ParseDumpError {}

/// One successfully parsed dump line.
enum DumpLine {
    /// Blank line or `#` comment.
    Skip,
    /// `M t_us <label>` marker line.
    Marker(u64, char),
    /// Data line: timestamp plus per-pair and total power columns.
    Data(u64, Vec<f64>),
}

fn parse_line(trimmed: &str, line: usize) -> Result<DumpLine, ParseDumpError> {
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(DumpLine::Skip);
    }
    if let Some(rest) = trimmed.strip_prefix("M ") {
        let mut parts = rest.split_whitespace();
        let t: u64 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or(ParseDumpError::BadMarker { line })?;
        let label = parts
            .next()
            .and_then(|s| s.chars().next())
            .ok_or(ParseDumpError::BadMarker { line })?;
        return Ok(DumpLine::Marker(t, label));
    }
    let fields: Vec<&str> = trimmed.split_whitespace().collect();
    if fields.len() < 2 {
        return Err(ParseDumpError::BadNumber { line });
    }
    let t: u64 = fields[0]
        .parse()
        .map_err(|_| ParseDumpError::BadNumber { line })?;
    let mut values = Vec::with_capacity(fields.len() - 1);
    for f in &fields[1..] {
        let v: f64 = f.parse().map_err(|_| ParseDumpError::BadNumber { line })?;
        values.push(v);
    }
    Ok(DumpLine::Data(t, values))
}

/// Parses a dump file's text.
///
/// Comment lines (`#`) are skipped; marker lines attach to the total
/// trace; blank lines are ignored. Both `\n` and `\r\n` line endings
/// are accepted. If the text does not end in a newline, its final line
/// is treated as a torn tail from an interrupted write: a parse
/// failure there drops the fragment instead of failing the whole dump.
///
/// # Errors
///
/// Returns a [`ParseDumpError`] naming the offending line.
pub fn parse_dump(text: &str) -> Result<ParsedDump, ParseDumpError> {
    let mut out = ParsedDump::default();
    let mut columns: Option<usize> = None;
    let complete = text.is_empty() || text.ends_with('\n');
    let last_idx = text.lines().count().saturating_sub(1);
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let torn_tail = !complete && idx == last_idx;
        let parsed = match parse_line(raw.trim(), line) {
            Ok(parsed) => parsed,
            Err(_) if torn_tail => break,
            Err(e) => return Err(e),
        };
        match parsed {
            DumpLine::Skip => {}
            DumpLine::Marker(t, label) => out.total.mark(SimTime::from_micros(t), label),
            DumpLine::Data(t, values) => {
                let fields = values.len() + 1;
                match columns {
                    None => columns = Some(fields),
                    Some(n) if n != fields => {
                        // A data line torn mid-write looks like a line
                        // with too few columns.
                        if torn_tail {
                            break;
                        }
                        return Err(ParseDumpError::InconsistentColumns { line });
                    }
                    _ => {}
                }
                let time = SimTime::from_micros(t);
                // Last column is the total; the rest are per-pair.
                let total = *values.last().expect("len >= 1");
                out.total.push(time, Watts::new(total));
                let pair_count = values.len() - 1;
                while out.pairs.len() < pair_count {
                    out.pairs.push(Trace::new());
                }
                for (pair, v) in values[..pair_count].iter().enumerate() {
                    out.pairs[pair].push(time, Watts::new(*v));
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# PowerSensor3 dump (times in device µs)
25 10.5000 2.0000 12.5000
75 10.6000 2.1000 12.7000
M 75 k
125 10.7000 2.2000 12.9000
";

    #[test]
    fn parses_data_pairs_and_markers() {
        let dump = parse_dump(SAMPLE).unwrap();
        assert_eq!(dump.total.len(), 3);
        assert_eq!(dump.pairs.len(), 2);
        assert_eq!(dump.total.samples()[1].power, Watts::new(12.7));
        assert_eq!(dump.pairs[0].samples()[0].power, Watts::new(10.5));
        assert_eq!(dump.pairs[1].samples()[2].power, Watts::new(2.2));
        assert_eq!(dump.total.markers().len(), 1);
        assert_eq!(dump.total.markers()[0].label, 'k');
        assert_eq!(dump.total.markers()[0].time, SimTime::from_micros(75));
    }

    #[test]
    fn empty_and_comment_only_input() {
        let dump = parse_dump("# nothing\n\n# else\n").unwrap();
        assert!(dump.total.is_empty());
        assert!(dump.pairs.is_empty());
    }

    #[test]
    fn bad_number_is_reported_with_line() {
        let err = parse_dump("25 1.0 2.0\n99 oops 3.0\n").unwrap_err();
        assert_eq!(err, ParseDumpError::BadNumber { line: 2 });
    }

    #[test]
    fn inconsistent_columns_rejected() {
        let err = parse_dump("25 1.0 2.0\n75 1.0 2.0 3.0\n").unwrap_err();
        assert_eq!(err, ParseDumpError::InconsistentColumns { line: 2 });
    }

    #[test]
    fn malformed_marker_rejected() {
        let err = parse_dump("M nope\n").unwrap_err();
        assert_eq!(err, ParseDumpError::BadMarker { line: 1 });
    }

    #[test]
    fn crlf_line_endings_are_accepted() {
        let dos = SAMPLE.replace('\n', "\r\n");
        assert_eq!(parse_dump(&dos).unwrap(), parse_dump(SAMPLE).unwrap());
    }

    #[test]
    fn torn_trailing_data_line_is_dropped() {
        // Killed mid-write: the final line stops in the middle of a
        // number and has no trailing newline.
        let torn = "25 10.5000 2.0000 12.5000\n75 10.6000 2.1000 12.7000\n125 10.7";
        let dump = parse_dump(torn).unwrap();
        assert_eq!(dump.total.len(), 2);
        assert_eq!(dump.pairs.len(), 2);

        // Same fragment with a newline is a real (complete) bad line.
        let sealed = format!("{torn}\n");
        assert_eq!(
            parse_dump(&sealed).unwrap_err(),
            ParseDumpError::InconsistentColumns { line: 3 }
        );
    }

    #[test]
    fn torn_trailing_marker_is_dropped() {
        let dump = parse_dump("25 1.0 2.0\nM 7").unwrap();
        assert_eq!(dump.total.len(), 1);
        assert!(dump.total.markers().is_empty());
    }

    #[test]
    fn mid_file_errors_still_reported() {
        // Only the *final* unterminated line gets the torn-tail pass.
        let err = parse_dump("25 1.0 2.0\n99 oops 3.0\n125 1.1 2.1").unwrap_err();
        assert_eq!(err, ParseDumpError::BadNumber { line: 2 });
    }

    #[test]
    fn single_column_total_only() {
        // A one-pair dump has two columns: pair0 and total.
        let dump = parse_dump("25 5.0 5.0\n").unwrap();
        assert_eq!(dump.pairs.len(), 1);
        assert_eq!(dump.total.len(), 1);
    }
}
