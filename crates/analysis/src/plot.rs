//! Terminal plotting: render traces as ASCII charts.
//!
//! The reproduction harness is a CLI; a quick visual of a power trace
//! (the Fig 5 square wave, the Fig 7 kernel envelope, the Fig 12b
//! bandwidth swings) beats a wall of numbers. The renderer is
//! deliberately simple: column-wise min/max binning into a character
//! grid, with a y-axis in the left gutter.

use crate::trace::Trace;

/// Renders `values` (uniformly spaced) as an ASCII chart of
/// `width`×`height` characters plus a y-axis gutter.
///
/// Each output column aggregates its slice of samples and draws the
/// vertical span between the column's minimum and maximum, so both
/// envelopes and fast transients stay visible at any width.
///
/// Returns an empty string for empty input.
///
/// # Panics
///
/// Panics if `width` or `height` is zero.
#[must_use]
pub fn ascii_plot(values: &[f64], width: usize, height: usize) -> String {
    assert!(width > 0 && height > 0, "plot dimensions must be non-zero");
    if values.is_empty() {
        return String::new();
    }
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);

    // Column-wise min/max.
    let mut cols = Vec::with_capacity(width);
    for c in 0..width {
        let start = c * values.len() / width;
        let end = ((c + 1) * values.len() / width).clamp(start + 1, values.len());
        let slice = &values[start..end];
        let cmin = slice.iter().copied().fold(f64::INFINITY, f64::min);
        let cmax = slice.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        cols.push((cmin, cmax));
    }

    let to_row = |v: f64| -> usize {
        let frac = (v - lo) / span;
        ((1.0 - frac) * (height as f64 - 1.0)).round() as usize
    };

    let gutter = 9;
    let mut grid = vec![vec![' '; width]; height];
    for (c, &(cmin, cmax)) in cols.iter().enumerate() {
        let top = to_row(cmax);
        let bottom = to_row(cmin);
        for row in grid.iter_mut().take(bottom + 1).skip(top) {
            row[c] = '█';
        }
    }

    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let label = if r == 0 {
            format!("{hi:8.1} ")
        } else if r == height - 1 {
            format!("{lo:8.1} ")
        } else {
            " ".repeat(gutter)
        };
        out.push_str(&label);
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&" ".repeat(gutter));
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out
}

/// Renders a [`Trace`]'s power series (with the time span noted under
/// the axis).
#[must_use]
pub fn ascii_trace(trace: &Trace, width: usize, height: usize) -> String {
    let mut out = ascii_plot(&trace.powers(), width, height);
    if !trace.is_empty() {
        out.push_str(&format!(
            "          {} samples over {} (W vs time)\n",
            trace.len(),
            trace.span()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps3_units::{SimTime, Watts};

    #[test]
    fn plot_has_requested_dimensions() {
        let values: Vec<f64> = (0..100).map(f64::from).collect();
        let plot = ascii_plot(&values, 40, 8);
        let lines: Vec<&str> = plot.lines().collect();
        assert_eq!(lines.len(), 9); // 8 rows + axis
        for line in &lines[..8] {
            assert_eq!(line.chars().count(), 9 + 1 + 40, "{line}");
        }
    }

    #[test]
    fn ramp_fills_the_diagonal() {
        let values: Vec<f64> = (0..80).map(f64::from).collect();
        let plot = ascii_plot(&values, 80, 10);
        let lines: Vec<&str> = plot.lines().collect();
        // Top row: marks only near the right edge.
        let top_first = lines[0].find('█').unwrap();
        let bottom_first = lines[9].find('█').unwrap();
        assert!(top_first > bottom_first, "diagonal rises left→right");
        // Axis labels carry the extremes.
        assert!(lines[0].trim_start().starts_with("79.0"));
        assert!(lines[9].trim_start().starts_with("0.0"));
    }

    #[test]
    fn square_wave_shows_both_levels() {
        let values: Vec<f64> = (0..200)
            .map(|i| if (i / 25) % 2 == 0 { 96.0 } else { 40.0 })
            .collect();
        let plot = ascii_plot(&values, 40, 6);
        let lines: Vec<&str> = plot.lines().collect();
        // Both the top and bottom rows contain bars.
        assert!(lines[0].contains('█'));
        assert!(lines[5].contains('█'));
    }

    #[test]
    fn constant_signal_does_not_panic() {
        let plot = ascii_plot(&[5.0; 30], 10, 4);
        assert!(plot.contains('█'));
    }

    #[test]
    fn empty_input_gives_empty_plot() {
        assert_eq!(ascii_plot(&[], 10, 4), "");
    }

    #[test]
    fn trace_variant_adds_footer() {
        let mut t = Trace::new();
        for i in 0..50u64 {
            t.push(SimTime::from_micros(i * 50), Watts::new(10.0 + i as f64));
        }
        let plot = ascii_trace(&t, 20, 5);
        assert!(plot.contains("50 samples"));
        assert!(plot.contains("W vs time"));
    }

    #[test]
    #[should_panic(expected = "dimensions")]
    fn zero_width_panics() {
        let _ = ascii_plot(&[1.0], 0, 5);
    }
}
