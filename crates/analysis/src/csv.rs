//! Minimal CSV writing for experiment artifacts.
//!
//! The repository deliberately avoids pulling in a serialization format
//! crate; the experiment harnesses only need to emit simple numeric
//! tables, which this module covers with RFC-4180-style quoting.

use std::fmt::Write as _;
use std::io::{self, Write};

/// Writes rows of string-convertible cells as CSV.
///
/// # Examples
///
/// ```
/// use ps3_analysis::csv::CsvWriter;
///
/// let mut out = Vec::new();
/// let mut w = CsvWriter::new(&mut out);
/// w.write_row(["time_s", "power_w"]).unwrap();
/// w.write_row(["0.05", "96.2"]).unwrap();
/// assert_eq!(String::from_utf8(out).unwrap(), "time_s,power_w\n0.05,96.2\n");
/// ```
#[derive(Debug)]
pub struct CsvWriter<W> {
    inner: W,
}

impl<W: Write> CsvWriter<W> {
    /// Wraps a writer. A `&mut Vec<u8>` or file handle both work.
    pub fn new(inner: W) -> Self {
        Self { inner }
    }

    /// Writes a single row, quoting cells that contain commas, quotes
    /// or newlines.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write_row<I, S>(&mut self, cells: I) -> io::Result<()>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut line = String::new();
        for (i, cell) in cells.into_iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            let c = cell.as_ref();
            if c.contains([',', '"', '\n']) {
                line.push('"');
                for ch in c.chars() {
                    if ch == '"' {
                        line.push('"');
                    }
                    line.push(ch);
                }
                line.push('"');
            } else {
                line.push_str(c);
            }
        }
        line.push('\n');
        self.inner.write_all(line.as_bytes())
    }

    /// Convenience: writes a row of `f64` values with `precision`
    /// decimal places.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write_f64_row<I>(&mut self, values: I, precision: usize) -> io::Result<()>
    where
        I: IntoIterator<Item = f64>,
    {
        let mut line = String::new();
        for (i, v) in values.into_iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            let _ = write!(line, "{v:.precision$}");
        }
        line.push('\n');
        self.inner.write_all(line.as_bytes())
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn render(rows: &[Vec<&str>]) -> String {
        let mut buf = Vec::new();
        let mut w = CsvWriter::new(&mut buf);
        for r in rows {
            w.write_row(r.iter().copied()).unwrap();
        }
        String::from_utf8(buf).unwrap()
    }

    #[test]
    fn plain_rows() {
        assert_eq!(render(&[vec!["a", "b"], vec!["1", "2"]]), "a,b\n1,2\n");
    }

    #[test]
    fn quoting() {
        assert_eq!(
            render(&[vec!["a,b", "c\"d", "e\nf"]]),
            "\"a,b\",\"c\"\"d\",\"e\nf\"\n"
        );
    }

    #[test]
    fn f64_rows() {
        let mut buf = Vec::new();
        CsvWriter::new(&mut buf)
            .write_f64_row([1.23456, 2.0], 3)
            .unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "1.235,2.000\n");
    }

    #[test]
    fn empty_row() {
        assert_eq!(render(&[vec![]]), "\n");
    }
}
