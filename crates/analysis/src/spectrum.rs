//! Single-bin spectral estimation (Goertzel) for periodic workloads.
//!
//! The step-response experiment (Fig 5) modulates the load at 100 Hz;
//! recovering that frequency from the measured trace is a useful
//! sanity check on the whole pipeline's timing, and applications use
//! the same tool to identify periodic behaviour (wave cadence of a GPU
//! kernel, GC periodicity of an SSD) in captures.

use crate::trace::Trace;

/// Power of the signal at one frequency, via the Goertzel algorithm.
///
/// `samples` are assumed uniformly spaced at `sample_rate_hz`. Returns
/// the squared magnitude of the DFT bin nearest `freq_hz`, normalised
/// by the sample count (comparable across frequencies of one signal).
///
/// # Panics
///
/// Panics if `sample_rate_hz` is not positive or `freq_hz` exceeds the
/// Nyquist rate.
#[must_use]
pub fn goertzel_power(samples: &[f64], sample_rate_hz: f64, freq_hz: f64) -> f64 {
    assert!(sample_rate_hz > 0.0, "sample rate must be positive");
    assert!(
        freq_hz <= sample_rate_hz / 2.0,
        "frequency beyond Nyquist ({freq_hz} Hz at {sample_rate_hz} S/s)"
    );
    if samples.len() < 2 {
        return 0.0;
    }
    // Remove the DC component so low-frequency bins are not swamped.
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let omega = core::f64::consts::TAU * freq_hz / sample_rate_hz;
    let coeff = 2.0 * omega.cos();
    let (mut s_prev, mut s_prev2) = (0.0, 0.0);
    for &x in samples {
        let s = (x - mean) + coeff * s_prev - s_prev2;
        s_prev2 = s_prev;
        s_prev = s;
    }
    let power = s_prev2 * s_prev2 + s_prev * s_prev - coeff * s_prev * s_prev2;
    power / samples.len() as f64
}

/// Scans `candidates_hz` and returns the frequency with the most
/// spectral power in `trace`, or `None` for traces too short to judge.
///
/// The trace's own average sampling rate is used as the time base.
#[must_use]
pub fn dominant_frequency(trace: &Trace, candidates_hz: &[f64]) -> Option<f64> {
    let rate = trace.sample_rate()?;
    let samples = trace.powers();
    candidates_hz
        .iter()
        .copied()
        .filter(|&f| f <= rate / 2.0)
        .map(|f| (f, goertzel_power(&samples, rate, f)))
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite powers"))
        .map(|(f, _)| f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps3_units::{SimTime, Watts};

    fn sine_trace(freq: f64, rate: f64, n: usize) -> Trace {
        let mut t = Trace::new();
        for i in 0..n {
            let time = i as f64 / rate;
            t.push(
                SimTime::from_nanos((time * 1e9) as u64),
                Watts::new(50.0 + 10.0 * (core::f64::consts::TAU * freq * time).sin()),
            );
        }
        t
    }

    #[test]
    fn goertzel_peaks_at_the_signal_frequency() {
        let trace = sine_trace(100.0, 20_000.0, 4000);
        let samples = trace.powers();
        let at_signal = goertzel_power(&samples, 20_000.0, 100.0);
        let off_signal = goertzel_power(&samples, 20_000.0, 440.0);
        assert!(
            at_signal > 100.0 * off_signal,
            "on {at_signal} vs off {off_signal}"
        );
    }

    #[test]
    fn dominant_frequency_finds_100hz() {
        let trace = sine_trace(100.0, 20_000.0, 4000);
        let candidates: Vec<f64> = (1..=30).map(|k| f64::from(k) * 10.0).collect();
        assert_eq!(dominant_frequency(&trace, &candidates), Some(100.0));
    }

    #[test]
    fn square_wave_harmonics_dont_fool_it() {
        // A 100 Hz square wave has strong odd harmonics; the
        // fundamental must still win.
        let mut t = Trace::new();
        for i in 0..4000usize {
            let time = i as f64 / 20_000.0;
            let phase = (time * 100.0).fract();
            let p = if phase < 0.5 { 96.0 } else { 40.0 };
            t.push(SimTime::from_nanos((time * 1e9) as u64), Watts::new(p));
        }
        let candidates = [50.0, 100.0, 300.0, 500.0];
        assert_eq!(dominant_frequency(&t, &candidates), Some(100.0));
    }

    #[test]
    fn dc_signal_has_no_dominant_tone() {
        let mut t = Trace::new();
        for i in 0..100u64 {
            t.push(SimTime::from_micros(i * 50), Watts::new(42.0));
        }
        let samples = t.powers();
        // All bins are ~zero after DC removal.
        assert!(goertzel_power(&samples, 20_000.0, 100.0) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "Nyquist")]
    fn beyond_nyquist_panics() {
        let _ = goertzel_power(&[1.0, 2.0], 100.0, 60.0);
    }

    #[test]
    fn short_traces_return_none() {
        let t = Trace::new();
        assert_eq!(dominant_frequency(&t, &[100.0]), None);
    }
}
