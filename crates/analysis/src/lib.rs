//! Trace containers and signal/statistics utilities.
//!
//! This crate holds everything the evaluation harnesses need to turn raw
//! sample streams into the numbers the paper reports:
//!
//! * [`Trace`] — a time series of power samples with markers, as produced
//!   by the host library's continuous mode.
//! * [`SampleStats`] — min/max/mean/std/rms/peak-to-peak summaries
//!   (Table II columns).
//! * [`block_average`] — reduces the effective sampling rate by averaging
//!   consecutive blocks (Table II rows).
//! * [`rise_time`] / [`step_levels`] — step-response extraction (Fig 5).
//! * [`pareto_front`] — non-dominated front for the auto-tuning scatter
//!   plots (Fig 8 / Fig 10).
//! * [`csv`] — a tiny hand-rolled CSV writer for experiment artifacts.
//! * [`parse_dump`] — reads continuous-mode dump files back into
//!   traces (capture once, analyse many).
//! * [`dominant_frequency`] — Goertzel-based tone detection for
//!   periodic workloads (the Fig 5 modulation, GPU wave cadence).
//!
//! # Examples
//!
//! ```
//! use ps3_analysis::SampleStats;
//!
//! let stats = SampleStats::from_samples([1.0, 2.0, 3.0]).unwrap();
//! assert_eq!(stats.mean, 2.0);
//! assert_eq!(stats.peak_to_peak(), 2.0);
//! ```

#![forbid(unsafe_code)]

pub mod csv;
mod dump;
mod pareto;
mod plot;
mod spectrum;
mod stats;
mod step;
mod trace;

pub use dump::{parse_dump, ParseDumpError, ParsedDump};
pub use pareto::{pareto_front, pareto_front_indices, ParetoPoint};
pub use plot::{ascii_plot, ascii_trace};
pub use spectrum::{dominant_frequency, goertzel_power};
pub use stats::{block_average, decimate, SampleStats};
pub use step::{find_edges, rise_time, settle_time, step_levels, StepEdge};
pub use trace::{Marker, Trace, TraceSample};
