//! Time-series containers for power measurements.

use ps3_units::{Joules, SimDuration, SimTime, Watts};

/// One sample of a power trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSample {
    /// Device timestamp of the sample.
    pub time: SimTime,
    /// Total power across all sensors at that instant.
    pub power: Watts,
}

/// A user marker recorded into a trace (continuous-mode marker
/// characters, §III-C).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Marker {
    /// Device timestamp the marker was attached to.
    pub time: SimTime,
    /// The marker character supplied by the application.
    pub label: char,
}

/// A power trace: samples ordered by time, plus markers.
///
/// Produced by the host library's continuous mode and by the PMT
/// monitors; consumed by every figure harness.
///
/// # Examples
///
/// ```
/// use ps3_analysis::Trace;
/// use ps3_units::{SimTime, Watts};
///
/// let mut trace = Trace::new();
/// trace.push(SimTime::from_micros(0), Watts::new(10.0));
/// trace.push(SimTime::from_micros(50), Watts::new(12.0));
/// assert_eq!(trace.len(), 2);
/// assert!((trace.mean_power().unwrap().value() - 11.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    samples: Vec<TraceSample>,
    markers: Vec<Marker>,
}

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty trace with preallocated capacity.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            samples: Vec::with_capacity(capacity),
            markers: Vec::new(),
        }
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `time` is earlier than the last sample.
    pub fn push(&mut self, time: SimTime, power: Watts) {
        debug_assert!(
            self.samples.last().is_none_or(|s| s.time <= time),
            "trace samples must be pushed in time order"
        );
        self.samples.push(TraceSample { time, power });
    }

    /// Records a marker character at `time`.
    pub fn mark(&mut self, time: SimTime, label: char) {
        self.markers.push(Marker { time, label });
    }

    /// Removes every sample and marker, keeping the allocations, so a
    /// trace can be refilled without reallocating (see
    /// `Archive::downsample_into`).
    pub fn clear(&mut self) {
        self.samples.clear();
        self.markers.clear();
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when the trace holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The samples, in time order.
    #[must_use]
    pub fn samples(&self) -> &[TraceSample] {
        &self.samples
    }

    /// The recorded markers.
    #[must_use]
    pub fn markers(&self) -> &[Marker] {
        &self.markers
    }

    /// Iterates over the samples.
    pub fn iter(&self) -> std::slice::Iter<'_, TraceSample> {
        self.samples.iter()
    }

    /// Power values as a plain vector (for the statistics helpers).
    #[must_use]
    pub fn powers(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.power.value()).collect()
    }

    /// Time span between first and last sample.
    #[must_use]
    pub fn span(&self) -> SimDuration {
        match (self.samples.first(), self.samples.last()) {
            (Some(a), Some(b)) => b.time - a.time,
            _ => SimDuration::ZERO,
        }
    }

    /// Mean power over all samples, or `None` when empty.
    #[must_use]
    pub fn mean_power(&self) -> Option<Watts> {
        if self.samples.is_empty() {
            return None;
        }
        let sum: f64 = self.samples.iter().map(|s| s.power.value()).sum();
        Some(Watts::new(sum / self.samples.len() as f64))
    }

    /// Total energy by trapezoidal integration of the samples.
    ///
    /// Returns zero for traces with fewer than two samples.
    #[must_use]
    pub fn energy(&self) -> Joules {
        let mut total = Joules::zero();
        for pair in self.samples.windows(2) {
            let dt = pair[1].time - pair[0].time;
            let avg = (pair[0].power + pair[1].power) / 2.0;
            total += avg * dt;
        }
        total
    }

    /// Returns the sub-trace with `start <= t < end` (markers included).
    #[must_use]
    pub fn slice(&self, start: SimTime, end: SimTime) -> Trace {
        Trace {
            samples: self
                .samples
                .iter()
                .filter(|s| s.time >= start && s.time < end)
                .copied()
                .collect(),
            markers: self
                .markers
                .iter()
                .filter(|m| m.time >= start && m.time < end)
                .cloned()
                .collect(),
        }
    }

    /// The sub-trace between the first markers labelled `start` and
    /// `end` (half-open, like [`Trace::slice`]).
    ///
    /// This is how kernel-level energy is extracted from a continuous
    /// capture: `trace.between_markers('k', 'e')` isolates the samples
    /// the application bracketed with marker commands. Returns `None`
    /// when either marker is missing or they are out of order.
    #[must_use]
    pub fn between_markers(&self, start: char, end: char) -> Option<Trace> {
        let t0 = self.markers.iter().find(|m| m.label == start)?.time;
        let t1 = self
            .markers
            .iter()
            .find(|m| m.label == end && m.time >= t0)?
            .time;
        Some(self.slice(t0, t1))
    }

    /// Average sampling rate in Hz, or `None` for traces shorter than
    /// two samples.
    #[must_use]
    pub fn sample_rate(&self) -> Option<f64> {
        if self.samples.len() < 2 {
            return None;
        }
        let span = self.span().as_secs_f64();
        if span <= 0.0 {
            return None;
        }
        Some((self.samples.len() - 1) as f64 / span)
    }
}

impl Extend<TraceSample> for Trace {
    fn extend<T: IntoIterator<Item = TraceSample>>(&mut self, iter: T) {
        for s in iter {
            self.push(s.time, s.power);
        }
    }
}

impl FromIterator<TraceSample> for Trace {
    fn from_iter<T: IntoIterator<Item = TraceSample>>(iter: T) -> Self {
        let mut trace = Trace::new();
        trace.extend(iter);
        trace
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceSample;
    type IntoIter = std::slice::Iter<'a, TraceSample>;
    fn into_iter(self) -> Self::IntoIter {
        self.samples.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_trace() -> Trace {
        // 0 W at t=0 rising linearly to 10 W at t=1s, 11 samples.
        (0..=10)
            .map(|i| TraceSample {
                time: SimTime::from_nanos(i * 100_000_000),
                power: Watts::new(i as f64),
            })
            .collect()
    }

    #[test]
    fn energy_of_linear_ramp() {
        // ∫0..1 of 10t dt = 5 J; trapezoid on a linear signal is exact.
        let e = ramp_trace().energy();
        assert!((e.value() - 5.0).abs() < 1e-9, "got {e}");
    }

    #[test]
    fn energy_of_constant_power() {
        let trace: Trace = (0..=4)
            .map(|i| TraceSample {
                time: SimTime::from_micros(i * 50),
                power: Watts::new(20.0),
            })
            .collect();
        assert!((trace.energy().value() - 20.0 * 200e-6).abs() < 1e-12);
    }

    #[test]
    fn slice_is_half_open() {
        let t = ramp_trace();
        let s = t.slice(SimTime::from_nanos(0), SimTime::from_nanos(300_000_000));
        assert_eq!(s.len(), 3);
        assert_eq!(s.samples()[2].power, Watts::new(2.0));
    }

    #[test]
    fn sample_rate_of_20khz_trace() {
        let trace: Trace = (0..100)
            .map(|i| TraceSample {
                time: SimTime::from_micros(i * 50),
                power: Watts::new(1.0),
            })
            .collect();
        let rate = trace.sample_rate().unwrap();
        assert!((rate - 20_000.0).abs() < 1.0, "got {rate}");
    }

    #[test]
    fn markers_survive_slicing() {
        let mut t = ramp_trace();
        t.mark(SimTime::from_nanos(150_000_000), 'k');
        t.mark(SimTime::from_nanos(950_000_000), 'e');
        let s = t.slice(SimTime::from_nanos(0), SimTime::from_nanos(500_000_000));
        assert_eq!(s.markers().len(), 1);
        assert_eq!(s.markers()[0].label, 'k');
    }

    #[test]
    fn between_markers_extracts_kernel_window() {
        let mut t = ramp_trace();
        t.mark(SimTime::from_nanos(200_000_000), 'k');
        t.mark(SimTime::from_nanos(600_000_000), 'e');
        let window = t.between_markers('k', 'e').unwrap();
        assert_eq!(window.len(), 4); // samples at 0.2, 0.3, 0.4, 0.5 s
        assert_eq!(window.samples()[0].power, Watts::new(2.0));
        // Missing or reversed markers yield None.
        assert!(t.between_markers('x', 'e').is_none());
        assert!(t.between_markers('e', 'k').is_none());
    }

    #[test]
    fn empty_trace_edge_cases() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.energy(), Joules::zero());
        assert!(t.mean_power().is_none());
        assert!(t.sample_rate().is_none());
        assert_eq!(t.span(), SimDuration::ZERO);
    }
}
