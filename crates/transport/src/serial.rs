//! The in-memory virtual serial pair.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::{Transport, TransportError};

/// Default per-direction buffer: roomy enough for ~0.1 s of full-rate
/// sensor data (20 kHz × 18 bytes/frame ≈ 360 kB/s).
const DEFAULT_CAPACITY: usize = 64 * 1024;

#[derive(Debug)]
struct Pipe {
    buf: Mutex<PipeState>,
    readable: Condvar,
    writable: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct PipeState {
    data: VecDeque<u8>,
    /// Set when the writing side has been dropped.
    closed: bool,
}

impl Pipe {
    fn new(capacity: usize) -> Self {
        Self {
            buf: Mutex::new(PipeState {
                data: VecDeque::new(),
                closed: false,
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
            capacity,
        }
    }

    fn write_all(&self, mut bytes: &[u8]) -> Result<(), TransportError> {
        while !bytes.is_empty() {
            let mut state = self.buf.lock();
            while state.data.len() >= self.capacity && !state.closed {
                self.writable.wait(&mut state);
            }
            if state.closed {
                return Err(TransportError::Disconnected);
            }
            let room = self.capacity - state.data.len();
            let n = room.min(bytes.len());
            state.data.extend(&bytes[..n]);
            bytes = &bytes[n..];
            drop(state);
            self.readable.notify_one();
        }
        Ok(())
    }

    fn read(&self, buf: &mut [u8], timeout: Option<Duration>) -> Result<usize, TransportError> {
        if buf.is_empty() {
            return Ok(0);
        }
        let mut state = self.buf.lock();
        loop {
            if !state.data.is_empty() {
                let n = buf.len().min(state.data.len());
                for b in buf.iter_mut().take(n) {
                    *b = state.data.pop_front().expect("checked non-empty");
                }
                drop(state);
                self.writable.notify_one();
                return Ok(n);
            }
            if state.closed {
                return Err(TransportError::Disconnected);
            }
            match timeout {
                Some(t) => {
                    if self.readable.wait_for(&mut state, t).timed_out() && state.data.is_empty() {
                        if state.closed {
                            return Err(TransportError::Disconnected);
                        }
                        return Err(TransportError::TimedOut);
                    }
                }
                None => self.readable.wait(&mut state),
            }
        }
    }

    fn close(&self) {
        let mut state = self.buf.lock();
        state.closed = true;
        drop(state);
        self.readable.notify_all();
        self.writable.notify_all();
    }

    fn available(&self) -> usize {
        self.buf.lock().data.len()
    }
}

/// One end of a [`VirtualSerial`] link.
///
/// Cloning an endpoint shares the same underlying pipes (like `dup` on
/// a file descriptor); the link closes only when the *last* clone of an
/// endpoint is dropped.
#[derive(Debug, Clone)]
pub struct SerialEndpoint {
    /// Pipe this endpoint reads from.
    rx: Arc<Pipe>,
    /// Pipe this endpoint writes to.
    tx: Arc<Pipe>,
    /// Close-on-last-drop guard for the tx pipe.
    _guard: Arc<CloseGuard>,
}

#[derive(Debug)]
struct CloseGuard {
    /// Both pipes of the link: dropping the last clone of an endpoint
    /// severs the whole connection, like unplugging a USB cable.
    pipes: [Arc<Pipe>; 2],
}

impl Drop for CloseGuard {
    fn drop(&mut self) {
        for pipe in &self.pipes {
            pipe.close();
        }
    }
}

/// Factory for connected endpoint pairs.
#[derive(Debug)]
pub struct VirtualSerial;

impl VirtualSerial {
    /// Creates a connected pair with the default buffer capacity.
    ///
    /// By convention the first endpoint is the host side and the second
    /// the device side, but the link is symmetric.
    #[must_use]
    pub fn pair() -> (SerialEndpoint, SerialEndpoint) {
        Self::pair_with_capacity(DEFAULT_CAPACITY)
    }

    /// Creates a connected pair with buffers of `capacity` bytes per
    /// direction. Small capacities exercise backpressure, modelling the
    /// Black Pill's limited USB 1.1 endpoint buffering.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn pair_with_capacity(capacity: usize) -> (SerialEndpoint, SerialEndpoint) {
        assert!(capacity > 0, "capacity must be non-zero");
        let a_to_b = Arc::new(Pipe::new(capacity));
        let b_to_a = Arc::new(Pipe::new(capacity));
        let a = SerialEndpoint {
            rx: Arc::clone(&b_to_a),
            tx: Arc::clone(&a_to_b),
            _guard: Arc::new(CloseGuard {
                pipes: [Arc::clone(&a_to_b), Arc::clone(&b_to_a)],
            }),
        };
        let b = SerialEndpoint {
            rx: Arc::clone(&a_to_b),
            tx: Arc::clone(&b_to_a),
            _guard: Arc::new(CloseGuard {
                pipes: [a_to_b, b_to_a],
            }),
        };
        (a, b)
    }
}

impl Transport for SerialEndpoint {
    fn write_all(&self, bytes: &[u8]) -> Result<(), TransportError> {
        self.tx.write_all(bytes)
    }

    fn read(&self, buf: &mut [u8], timeout: Option<Duration>) -> Result<usize, TransportError> {
        self.rx.read(buf, timeout)
    }

    fn available(&self) -> usize {
        self.rx.available()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn roundtrip_both_directions() {
        let (a, b) = VirtualSerial::pair();
        a.write_all(b"hello").unwrap();
        b.write_all(b"world").unwrap();
        let mut buf = [0u8; 5];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        a.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"world");
    }

    #[test]
    fn read_timeout() {
        let (a, _b) = VirtualSerial::pair();
        let mut buf = [0u8; 1];
        let err = a
            .read(&mut buf, Some(Duration::from_millis(10)))
            .unwrap_err();
        assert_eq!(err, TransportError::TimedOut);
    }

    #[test]
    fn disconnect_on_drop() {
        let (a, b) = VirtualSerial::pair();
        drop(b);
        let mut buf = [0u8; 1];
        assert_eq!(
            a.read(&mut buf, None).unwrap_err(),
            TransportError::Disconnected
        );
        assert_eq!(a.write_all(b"x").unwrap_err(), TransportError::Disconnected);
    }

    #[test]
    fn buffered_bytes_readable_after_disconnect() {
        let (a, b) = VirtualSerial::pair();
        b.write_all(b"last words").unwrap();
        drop(b);
        let mut buf = [0u8; 10];
        a.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"last words");
        assert_eq!(
            a.read(&mut buf, None).unwrap_err(),
            TransportError::Disconnected
        );
    }

    #[test]
    fn backpressure_blocks_then_resumes() {
        let (a, b) = VirtualSerial::pair_with_capacity(4);
        let writer = thread::spawn(move || {
            a.write_all(b"0123456789").unwrap();
        });
        // Give the writer a chance to fill the buffer and block.
        thread::sleep(Duration::from_millis(20));
        let mut out = Vec::new();
        let mut buf = [0u8; 3];
        while out.len() < 10 {
            let n = b.read(&mut buf, Some(Duration::from_secs(1))).unwrap();
            out.extend_from_slice(&buf[..n]);
        }
        writer.join().unwrap();
        assert_eq!(out, b"0123456789");
    }

    #[test]
    fn clones_share_the_stream() {
        let (a, b) = VirtualSerial::pair();
        let a2 = a.clone();
        a.write_all(b"x").unwrap();
        drop(a); // a2 still alive: link must stay open
        a2.write_all(b"y").unwrap();
        let mut buf = [0u8; 2];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"xy");
        drop(a2); // now the link closes
        assert_eq!(
            b.read(&mut buf, None).unwrap_err(),
            TransportError::Disconnected
        );
    }

    #[test]
    fn available_counts_buffered() {
        let (a, b) = VirtualSerial::pair();
        assert_eq!(b.available(), 0);
        a.write_all(b"abc").unwrap();
        assert_eq!(b.available(), 3);
    }

    #[test]
    fn concurrent_writer_reader_transfers_everything() {
        let (a, b) = VirtualSerial::pair_with_capacity(257);
        let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let expect = payload.clone();
        let writer = thread::spawn(move || a.write_all(&payload).unwrap());
        let mut got = vec![0u8; expect.len()];
        b.read_exact(&mut got).unwrap();
        writer.join().unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn empty_read_returns_zero() {
        let (a, b) = VirtualSerial::pair();
        b.write_all(b"z").unwrap();
        let mut empty: [u8; 0] = [];
        assert_eq!(a.read(&mut empty, None).unwrap(), 0);
    }
}
