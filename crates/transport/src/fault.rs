//! Fault-injecting transport wrapper.
//!
//! USB links occasionally drop or corrupt bytes (cable glitches, host
//! buffer overruns). The PowerSensor3 wire protocol carries per-byte
//! framing bits precisely so the host can resynchronise; this wrapper
//! lets the tests prove that it does.

use std::time::Duration;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Transport, TransportError};

/// What faults to inject, as independent per-byte probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability that an incoming byte is silently dropped.
    pub drop_probability: f64,
    /// Probability that an incoming byte has one random bit flipped.
    pub corrupt_probability: f64,
}

impl FaultPlan {
    /// No faults at all.
    pub const NONE: Self = Self {
        drop_probability: 0.0,
        corrupt_probability: 0.0,
    };

    /// A lossy link dropping roughly one byte in a thousand.
    pub const LOSSY: Self = Self {
        drop_probability: 1e-3,
        corrupt_probability: 0.0,
    };

    /// A noisy link corrupting roughly one byte in a thousand.
    pub const NOISY: Self = Self {
        drop_probability: 0.0,
        corrupt_probability: 1e-3,
    };
}

/// A [`Transport`] decorator that injects faults on the *read* path.
///
/// Writes pass through untouched (commands to the device are assumed
/// reliable; the interesting failure mode is the high-rate sensor
/// stream towards the host).
#[derive(Debug)]
pub struct FaultyTransport<T> {
    inner: T,
    plan: FaultPlan,
    rng: Mutex<StdRng>,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner`, injecting faults per `plan`, deterministically
    /// from `seed`.
    pub fn new(inner: T, plan: FaultPlan, seed: u64) -> Self {
        Self {
            inner,
            plan,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
        }
    }

    /// Unwraps the inner transport.
    pub fn into_inner(self) -> T {
        self.inner
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn write_all(&self, bytes: &[u8]) -> Result<(), TransportError> {
        self.inner.write_all(bytes)
    }

    fn read(&self, buf: &mut [u8], timeout: Option<Duration>) -> Result<usize, TransportError> {
        loop {
            let n = self.inner.read(buf, timeout)?;
            let mut rng = self.rng.lock();
            let mut kept = 0;
            for i in 0..n {
                let mut byte = buf[i];
                if self.plan.drop_probability > 0.0 && rng.gen_bool(self.plan.drop_probability) {
                    continue;
                }
                if self.plan.corrupt_probability > 0.0
                    && rng.gen_bool(self.plan.corrupt_probability)
                {
                    byte ^= 1 << rng.gen_range(0..8);
                }
                buf[kept] = byte;
                kept += 1;
            }
            // If every byte of a short read was dropped, try again so the
            // contract "reads at least one byte" still holds.
            if kept > 0 {
                return Ok(kept);
            }
        }
    }

    fn available(&self) -> usize {
        self.inner.available()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VirtualSerial;

    #[test]
    fn none_plan_is_transparent() {
        let (a, b) = VirtualSerial::pair();
        let faulty = FaultyTransport::new(a, FaultPlan::NONE, 1);
        b.write_all(b"abcdef").unwrap();
        let mut buf = [0u8; 6];
        faulty.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"abcdef");
    }

    #[test]
    fn drops_reduce_byte_count() {
        let (a, b) = VirtualSerial::pair();
        let plan = FaultPlan {
            drop_probability: 0.5,
            corrupt_probability: 0.0,
        };
        let faulty = FaultyTransport::new(a, plan, 42);
        let payload = vec![0xAAu8; 10_000];
        b.write_all(&payload).unwrap();
        drop(b);
        let mut got = Vec::new();
        let mut buf = [0u8; 256];
        loop {
            match faulty.read(&mut buf, None) {
                Ok(n) => got.extend_from_slice(&buf[..n]),
                Err(TransportError::Disconnected) => break,
                Err(e) => panic!("{e}"),
            }
        }
        assert!(
            got.len() > 4_000 && got.len() < 6_000,
            "expected ≈50% survival, got {}",
            got.len()
        );
    }

    #[test]
    fn corruption_flips_single_bits() {
        let (a, b) = VirtualSerial::pair();
        let plan = FaultPlan {
            drop_probability: 0.0,
            corrupt_probability: 1.0,
        };
        let faulty = FaultyTransport::new(a, plan, 7);
        b.write_all(&[0u8; 64]).unwrap();
        let mut buf = [0u8; 64];
        faulty.read_exact(&mut buf).unwrap();
        for byte in buf {
            assert_eq!(byte.count_ones(), 1, "exactly one bit flipped per byte");
        }
    }

    #[test]
    fn writes_pass_through() {
        let (a, b) = VirtualSerial::pair();
        let faulty = FaultyTransport::new(
            a,
            FaultPlan {
                drop_probability: 1.0,
                corrupt_probability: 0.0,
            },
            3,
        );
        faulty.write_all(b"command").unwrap();
        let mut buf = [0u8; 7];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"command");
    }
}
