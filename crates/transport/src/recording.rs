//! Traffic-recording transport wrapper.

use std::time::Duration;

use parking_lot::Mutex;

use crate::{Transport, TransportError};

/// A [`Transport`] decorator that records all traffic in both
/// directions, for protocol-level assertions in tests and for
/// debugging captured sessions.
#[derive(Debug)]
pub struct RecordingTransport<T> {
    inner: T,
    sent: Mutex<Vec<u8>>,
    received: Mutex<Vec<u8>>,
}

impl<T: Transport> RecordingTransport<T> {
    /// Wraps `inner`.
    pub fn new(inner: T) -> Self {
        Self {
            inner,
            sent: Mutex::new(Vec::new()),
            received: Mutex::new(Vec::new()),
        }
    }

    /// Everything written through this endpoint so far.
    pub fn sent(&self) -> Vec<u8> {
        self.sent.lock().clone()
    }

    /// Everything read through this endpoint so far.
    pub fn received(&self) -> Vec<u8> {
        self.received.lock().clone()
    }

    /// Clears both recordings.
    pub fn clear(&self) {
        self.sent.lock().clear();
        self.received.lock().clear();
    }

    /// Unwraps the inner transport, discarding the recordings.
    pub fn into_inner(self) -> T {
        self.inner
    }
}

impl<T: Transport> Transport for RecordingTransport<T> {
    fn write_all(&self, bytes: &[u8]) -> Result<(), TransportError> {
        self.inner.write_all(bytes)?;
        self.sent.lock().extend_from_slice(bytes);
        Ok(())
    }

    fn read(&self, buf: &mut [u8], timeout: Option<Duration>) -> Result<usize, TransportError> {
        let n = self.inner.read(buf, timeout)?;
        self.received.lock().extend_from_slice(&buf[..n]);
        Ok(n)
    }

    fn available(&self) -> usize {
        self.inner.available()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VirtualSerial;

    #[test]
    fn records_both_directions() {
        let (a, b) = VirtualSerial::pair();
        let rec = RecordingTransport::new(a);
        rec.write_all(b"ping").unwrap();
        b.write_all(b"pong").unwrap();
        let mut buf = [0u8; 4];
        rec.read_exact(&mut buf).unwrap();
        assert_eq!(rec.sent(), b"ping");
        assert_eq!(rec.received(), b"pong");
    }

    #[test]
    fn clear_resets() {
        let (a, b) = VirtualSerial::pair();
        let rec = RecordingTransport::new(a);
        rec.write_all(b"x").unwrap();
        b.write_all(b"y").unwrap();
        let mut buf = [0u8; 1];
        rec.read_exact(&mut buf).unwrap();
        rec.clear();
        assert!(rec.sent().is_empty());
        assert!(rec.received().is_empty());
    }
}
