//! Replay transport: serves a previously recorded byte stream.
//!
//! Together with [`RecordingTransport`](crate::RecordingTransport) this
//! enables capture-once/analyse-many workflows: record a device
//! session (or load one from disk), then reconnect the host library to
//! the recording as if the device were live. Commands written by the
//! host are answered from a canned script (by default: ignored).

use std::collections::VecDeque;
use std::time::Duration;

use parking_lot::Mutex;

use crate::{Transport, TransportError};

/// A [`Transport`] whose read side replays a fixed byte stream.
///
/// Reads drain the recording and then report
/// [`TransportError::Disconnected`] — exactly what a host sees when the
/// device is unplugged mid-session. Writes are counted but discarded
/// (the recording already contains the device's responses).
///
/// # Examples
///
/// ```
/// use ps3_transport::{ReplayTransport, Transport};
///
/// let replay = ReplayTransport::new(b"abc".to_vec());
/// let mut buf = [0u8; 3];
/// replay.read_exact(&mut buf).unwrap();
/// assert_eq!(&buf, b"abc");
/// assert!(replay.read(&mut buf, None).is_err()); // stream exhausted
/// ```
#[derive(Debug)]
pub struct ReplayTransport {
    data: Mutex<VecDeque<u8>>,
    written: Mutex<Vec<u8>>,
}

impl ReplayTransport {
    /// Creates a replay of `recording` (e.g. from
    /// [`RecordingTransport::received`](crate::RecordingTransport::received)).
    #[must_use]
    pub fn new(recording: Vec<u8>) -> Self {
        Self {
            data: Mutex::new(recording.into()),
            written: Mutex::new(Vec::new()),
        }
    }

    /// Bytes the host wrote during replay (commands it sent; useful to
    /// assert a tool's command sequence).
    pub fn written(&self) -> Vec<u8> {
        self.written.lock().clone()
    }

    /// Remaining unread bytes.
    pub fn remaining(&self) -> usize {
        self.data.lock().len()
    }
}

impl Transport for ReplayTransport {
    fn write_all(&self, bytes: &[u8]) -> Result<(), TransportError> {
        self.written.lock().extend_from_slice(bytes);
        Ok(())
    }

    fn read(&self, buf: &mut [u8], _timeout: Option<Duration>) -> Result<usize, TransportError> {
        if buf.is_empty() {
            return Ok(0);
        }
        let mut data = self.data.lock();
        if data.is_empty() {
            return Err(TransportError::Disconnected);
        }
        let n = buf.len().min(data.len());
        for b in buf.iter_mut().take(n) {
            *b = data.pop_front().expect("checked non-empty");
        }
        Ok(n)
    }

    fn available(&self) -> usize {
        self.data.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replays_then_disconnects() {
        let replay = ReplayTransport::new(vec![1, 2, 3, 4, 5]);
        assert_eq!(replay.available(), 5);
        let mut buf = [0u8; 2];
        assert_eq!(replay.read(&mut buf, None).unwrap(), 2);
        assert_eq!(buf, [1, 2]);
        let mut rest = [0u8; 8];
        assert_eq!(replay.read(&mut rest, None).unwrap(), 3);
        assert_eq!(
            replay.read(&mut rest, None).unwrap_err(),
            TransportError::Disconnected
        );
        assert_eq!(replay.remaining(), 0);
    }

    #[test]
    fn writes_are_captured_not_delivered() {
        let replay = ReplayTransport::new(Vec::new());
        replay.write_all(b"SXMR").unwrap();
        assert_eq!(replay.written(), b"SXMR");
    }

    #[test]
    fn empty_read_buffer_is_ok() {
        let replay = ReplayTransport::new(vec![9]);
        let mut empty: [u8; 0] = [];
        assert_eq!(replay.read(&mut empty, None).unwrap(), 0);
        assert_eq!(replay.remaining(), 1);
    }
}
