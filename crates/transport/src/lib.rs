//! Virtual serial/USB transport.
//!
//! The real PowerSensor3 talks to the host over the Black Pill's USB
//! 1.1 full-speed CDC-ACM serial port. This crate provides the software
//! equivalent: a pair of in-memory byte pipes ([`VirtualSerial::pair`])
//! with blocking reads, bounded buffering (backpressure, like a full
//! USB endpoint), and explicit disconnect semantics.
//!
//! Two wrappers support testing:
//!
//! * [`FaultyTransport`] injects byte loss and bit corruption, used to
//!   exercise the host library's stream resynchronisation.
//! * [`RecordingTransport`] tees all traffic for protocol inspection.
//! * [`ReplayTransport`] serves a recorded stream back to the host,
//!   enabling capture-once/analyse-many workflows.
//!
//! # Examples
//!
//! ```
//! use ps3_transport::{Transport, VirtualSerial};
//!
//! let (host, device) = VirtualSerial::pair();
//! host.write_all(b"V").unwrap(); // firmware 'version' command
//! let mut buf = [0u8; 1];
//! device.read_exact(&mut buf).unwrap();
//! assert_eq!(&buf, b"V");
//! ```

#![forbid(unsafe_code)]

mod fault;
mod recording;
mod replay;
mod serial;

use std::error::Error;
use std::fmt;
use std::time::Duration;

pub use fault::{FaultPlan, FaultyTransport};
pub use recording::RecordingTransport;
pub use replay::ReplayTransport;
pub use serial::{SerialEndpoint, VirtualSerial};

/// Errors returned by transport operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TransportError {
    /// The peer endpoint has been dropped and the buffer is drained.
    Disconnected,
    /// A read with a timeout expired before any byte arrived.
    TimedOut,
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Disconnected => write!(f, "transport peer disconnected"),
            TransportError::TimedOut => write!(f, "transport read timed out"),
        }
    }
}

impl Error for TransportError {}

/// A bidirectional byte-stream endpoint.
///
/// Implementations must be safe to share across threads: the host
/// library reads sensor data from a background thread while sending
/// commands from the caller's thread.
pub trait Transport: Send + Sync {
    /// Writes all bytes, blocking while the peer's buffer is full.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Disconnected`] if the peer is gone.
    fn write_all(&self, bytes: &[u8]) -> Result<(), TransportError>;

    /// Reads at least one byte into `buf`, blocking up to `timeout`
    /// (or indefinitely when `None`). Returns the number of bytes read.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::TimedOut`] when the deadline expires
    /// with nothing available, or [`TransportError::Disconnected`] when
    /// the peer is gone and the buffer is drained.
    fn read(&self, buf: &mut [u8], timeout: Option<Duration>) -> Result<usize, TransportError>;

    /// Reads exactly `buf.len()` bytes (no timeout).
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Disconnected`] if the peer disconnects
    /// before the buffer is filled.
    fn read_exact(&self, buf: &mut [u8]) -> Result<(), TransportError> {
        let mut filled = 0;
        while filled < buf.len() {
            filled += self.read(&mut buf[filled..], None)?;
        }
        Ok(())
    }

    /// Number of bytes currently buffered for reading.
    fn available(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert_eq!(
            TransportError::Disconnected.to_string(),
            "transport peer disconnected"
        );
        assert_eq!(
            TransportError::TimedOut.to_string(),
            "transport read timed out"
        );
    }

    #[test]
    fn trait_is_object_safe() {
        fn _takes_dyn(_t: &dyn Transport) {}
    }
}
