//! The invariant catalogue: global properties every scenario checks
//! after quiescing, no matter which faults were injected.
//!
//! Every check is **scheduling-independent**: it only constrains facts
//! that are pure functions of `(seed, plan)` after a quiesce, or
//! inequalities that hold for any thread interleaving. That is what
//! lets a violation replay bit-exactly from the failure artifact.

use std::fmt;

use ps3_analysis::Trace;
use ps3_archive::Archive;
use ps3_stream::RigCounts;
use ps3_tsdb::Tsdb;
use ps3_units::{Joules, SimTime};

/// One invariant violation, as recorded in failure artifacts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable invariant name (`archive-matches-live`, …).
    pub invariant: String,
    /// Human-readable evidence.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.invariant, self.detail)
    }
}

/// Collects violations across a scenario run.
#[derive(Debug, Default)]
pub struct Checker {
    violations: Vec<Violation>,
}

impl Checker {
    /// An empty checker.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a violation of `invariant` unless `ok` holds.
    pub fn expect(&mut self, invariant: &str, ok: bool, detail: impl FnOnce() -> String) {
        if !ok {
            self.violations.push(Violation {
                invariant: invariant.to_owned(),
                detail: detail(),
            });
        }
    }

    /// The violations recorded so far.
    #[must_use]
    pub fn into_violations(self) -> Vec<Violation> {
        self.violations
    }

    /// `monotonic-timestamps` — trace timestamps never decrease, and
    /// strictly increase when no fault can duplicate a timestamp.
    pub fn check_monotonic(&mut self, trace: &Trace, strict: bool) {
        for pair in trace.samples().windows(2) {
            let (a, b) = (pair[0].time, pair[1].time);
            let ok = if strict { a < b } else { a <= b };
            self.expect("monotonic-timestamps", ok, || {
                format!(
                    "time went {} at {} -> {}",
                    if strict {
                        "non-increasing"
                    } else {
                        "backwards"
                    },
                    a,
                    b
                )
            });
            if a > b {
                return; // one report per run is enough
            }
        }
    }

    /// `energy-accounting` — the sensor's cumulative energy equals the
    /// trace re-integrated in the acquisition path's own order
    /// (right-rectangle per frame), within float-rounding slack.
    pub fn check_energy(&mut self, trace: &Trace, total_energy: Joules) {
        let mut recomputed = Joules::zero();
        let mut prev: Option<SimTime> = None;
        for s in trace.samples() {
            if let Some(p) = prev {
                recomputed += s.power * s.time.saturating_duration_since(p);
            }
            prev = Some(s.time);
        }
        let got = total_energy.value();
        let want = recomputed.value();
        let tol = 1e-9 * want.abs().max(1e-12);
        self.expect("energy-accounting", (got - want).abs() <= tol, || {
            format!("state energy {got} J vs trace re-integration {want} J")
        });
    }

    /// `archive-matches-live` — re-querying the archive over the full
    /// captured span returns the live trace bit-for-bit (the torn tail
    /// of a crashed capture is declared, never silent).
    pub fn check_archive_matches(&mut self, archive: &Archive, live: &Trace, dropped: u64) {
        if dropped > 0 {
            // The writer itself declared queue-overflow drops; the
            // equality claim is void but the declaration must exist.
            return;
        }
        if live.samples().is_empty() {
            self.expect("archive-matches-live", archive.frames() == 0, || {
                format!(
                    "empty live trace but archive holds {} frames",
                    archive.frames()
                )
            });
            return;
        }
        let t0 = live.samples()[0].time;
        let end =
            SimTime::from_micros(live.samples()[live.samples().len() - 1].time.as_micros() + 1);
        match archive.read_range(t0, end) {
            Ok(requeried) => {
                self.expect("archive-matches-live", &requeried == live, || {
                    format!(
                        "archive returned {} samples vs live {} (first divergence at index {:?})",
                        requeried.samples().len(),
                        live.samples().len(),
                        requeried
                            .samples()
                            .iter()
                            .zip(live.samples())
                            .position(|(a, b)| a != b)
                    )
                });
            }
            Err(e) => self.expect("archive-matches-live", false, || {
                format!("read_range failed: {e:?}")
            }),
        }
    }

    /// `archive-seal` — a capture that finished cleanly verifies clean
    /// with no unsealed trailing bytes.
    pub fn check_archive_sealed(&mut self, archive: &Archive) {
        match archive.verify() {
            Ok(report) => self.expect("archive-seal", report.is_clean(), || {
                format!("clean finish but verify reports: {report:?}")
            }),
            Err(e) => self.expect("archive-seal", false, || format!("verify failed: {e:?}")),
        }
        let recovery = archive.recovery();
        self.expect("archive-seal", recovery.trailing_bytes == 0, || {
            format!(
                "clean finish but {} unsealed trailing bytes",
                recovery.trailing_bytes
            )
        });
    }

    /// `gap-accounting` — an undivided, never-evicted subscriber
    /// accounts for every published frame: received + reported-dropped
    /// equals frames published.
    pub fn check_gap_accounting(&mut self, published: u64, received: u64, dropped: u64) {
        self.expect("gap-accounting", received + dropped == published, || {
            format!("received {received} + dropped {dropped} != published {published}")
        });
    }

    /// `merged-gap-sum` — a merged fleet subscription's session-level
    /// gap accounting equals the sum of its per-rig accounting: every
    /// gap event and every dropped frame is attributed to exactly one
    /// rig, so nothing is lost or double-counted in the merge.
    pub fn check_merged_gap_sum(&mut self, gap_events: u64, dropped: u64, per_rig: &[RigCounts]) {
        let rig_gaps: u64 = per_rig.iter().map(|c| c.gap_events).sum();
        let rig_dropped: u64 = per_rig.iter().map(|c| c.dropped).sum();
        self.expect("merged-gap-sum", gap_events == rig_gaps, || {
            format!("session saw {gap_events} gap events, per-rig attribution sums to {rig_gaps}")
        });
        self.expect("merged-gap-sum", dropped == rig_dropped, || {
            format!("session dropped {dropped} frames, per-rig attribution sums to {rig_dropped}")
        });
    }

    /// `cross-rig-energy` — the fleet-wide energy query returns
    /// *bit-exactly* the per-shard energies folded in shard order
    /// (rig, then generation): parallel fan-out must never change the
    /// arithmetic.
    pub fn check_cross_rig_energy(&mut self, query_j: f64, folded_j: f64) {
        self.expect(
            "cross-rig-energy",
            query_j.to_bits() == folded_j.to_bits(),
            || {
                format!(
                    "fleet energy query {query_j} J ({:016x}) != per-shard fold {folded_j} J \
                     ({:016x})",
                    query_j.to_bits(),
                    folded_j.to_bits()
                )
            },
        );
    }

    /// `pyramid-exact` — the tier-served `stats` and `energy` answers
    /// are *bit-identical* to the reference path (same decomposition,
    /// every tier recomputed from decoded frames), and counts/extremes
    /// are bit-identical to the flat archive scan. The pyramid is an
    /// index, never an approximation.
    pub fn check_pyramid_exact(&mut self, tsdb: &Tsdb, start: SimTime, end: SimTime) {
        let served = (tsdb.stats(start, end), tsdb.energy(start, end));
        let reference = (tsdb.stats_ref(start, end), tsdb.energy_ref(start, end));
        let flat = tsdb.archive().stats(start, end);
        match (served, reference, flat) {
            ((Ok(s), Ok(e)), (Ok(sr), Ok(er)), Ok(f)) => {
                self.expect(
                    "pyramid-exact",
                    s.count == sr.count
                        && s.sum_w.to_bits() == sr.sum_w.to_bits()
                        && s.min_w.to_bits() == sr.min_w.to_bits()
                        && s.max_w.to_bits() == sr.max_w.to_bits()
                        && e.value().to_bits() == er.value().to_bits(),
                    || {
                        format!(
                            "pyramid answers diverge from reference over \
                             [{}, {}): {s:?}/{e:?} vs {sr:?}/{er:?}",
                            start.as_micros(),
                            end.as_micros()
                        )
                    },
                );
                self.expect(
                    "pyramid-exact",
                    s.count == f.count
                        && s.min_w.to_bits() == f.min_w.to_bits()
                        && s.max_w.to_bits() == f.max_w.to_bits(),
                    || {
                        format!(
                            "pyramid count/extremes diverge from the flat scan over \
                             [{}, {}): {s:?} vs {f:?}",
                            start.as_micros(),
                            end.as_micros()
                        )
                    },
                );
            }
            (served, reference, flat) => self.expect("pyramid-exact", false, || {
                format!("pyramid queries failed: {served:?} {reference:?} {flat:?}")
            }),
        }
    }

    /// `gap-accounting` bounds for a divisor-`div` subscriber: it sees
    /// at most every `div`-th frame, and no fewer than the undropped
    /// frames allow.
    pub fn check_divided_bounds(&mut self, published: u64, received: u64, dropped: u64, div: u64) {
        let upper = published / div + 1;
        let lower = (published.saturating_sub(dropped)) / div;
        let lower = lower.saturating_sub(1);
        self.expect(
            "gap-accounting",
            (lower..=upper).contains(&received),
            || {
                format!(
                    "divisor-{div} subscriber received {received}, outside [{lower}, {upper}] \
                     (published {published}, dropped {dropped})"
                )
            },
        );
    }
}

/// FNV-1a over the facts that must replay bit-exactly; scenario
/// reports carry this as their fingerprint.
#[derive(Debug, Clone, Copy)]
pub struct Fingerprint(u64);

impl Fingerprint {
    /// The FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    /// Folds raw bytes in.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    /// Folds a word in.
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// Folds a whole trace in (times and power bit patterns, markers).
    pub fn update_trace(&mut self, trace: &Trace) {
        self.update_u64(trace.samples().len() as u64);
        for s in trace.samples() {
            self.update_u64(s.time.as_nanos());
            self.update_u64(s.power.value().to_bits());
        }
        for m in trace.markers() {
            self.update_u64(m.time.as_nanos());
            self.update(&u32::from(m.label).to_le_bytes());
        }
    }

    /// The digest.
    #[must_use]
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps3_units::Watts;

    #[test]
    fn checker_records_and_formats_violations() {
        let mut c = Checker::new();
        c.expect("demo", true, || unreachable!("not evaluated when ok"));
        c.expect("demo", false, || "broken".to_owned());
        let v = c.into_violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].to_string(), "[demo] broken");
    }

    #[test]
    fn monotonic_check_distinguishes_strict_from_lax() {
        // `Trace::push` itself rejects backwards time, so only the
        // equal-timestamp case can reach the checker.
        let mut c = Checker::new();
        let mut flat = Trace::new();
        flat.push(SimTime::from_micros(100), Watts::new(1.0));
        flat.push(SimTime::from_micros(100), Watts::new(1.0));
        c.check_monotonic(&flat, false);
        assert!(c.into_violations().is_empty(), "equal times allowed lax");
        let mut c = Checker::new();
        c.check_monotonic(&flat, true);
        assert_eq!(c.into_violations().len(), 1, "equal times rejected strict");
    }

    #[test]
    fn energy_check_accepts_own_reintegration() {
        let mut trace = Trace::new();
        let mut energy = Joules::zero();
        let mut prev: Option<SimTime> = None;
        for i in 0..1000u64 {
            let t = SimTime::from_micros(25 + 50 * i);
            let w = Watts::new(24.0 + (i % 7) as f64 * 0.01);
            if let Some(p) = prev {
                energy += w * t.saturating_duration_since(p);
            }
            prev = Some(t);
            trace.push(t, w);
        }
        let mut c = Checker::new();
        c.check_energy(&trace, energy);
        assert!(c.into_violations().is_empty());
        let mut c = Checker::new();
        c.check_energy(&trace, energy + Joules::new(0.001));
        assert_eq!(c.into_violations().len(), 1);
    }

    #[test]
    fn gap_accounting_identities() {
        let mut c = Checker::new();
        c.check_gap_accounting(1000, 900, 100);
        c.check_divided_bounds(1000, 250, 0, 4);
        c.check_divided_bounds(1000, 200, 200, 4);
        assert!(c.into_violations().is_empty());
        let mut c = Checker::new();
        c.check_gap_accounting(1000, 900, 99);
        c.check_divided_bounds(1000, 500, 0, 4);
        assert_eq!(c.into_violations().len(), 2);
    }

    #[test]
    fn fingerprint_is_order_sensitive() {
        let mut a = Fingerprint::new();
        a.update(&[1, 2, 3]);
        let mut b = Fingerprint::new();
        b.update(&[3, 2, 1]);
        assert_ne!(a.finish(), b.finish());
        let mut c = Fingerprint::new();
        c.update(&[1, 2, 3]);
        assert_eq!(a.finish(), c.finish());
    }
}
