//! # ps3-sim — deterministic simulation & fault-injection harness
//!
//! FoundationDB-style simulation testing for the whole PowerSensor3
//! stack: the emulated firmware device, the serial transport, the host
//! reader with its energy accounting, the stream daemon with TCP
//! subscribers, and the archive writer all run together under seeded,
//! byte-level fault injection — and a catalogue of global invariants
//! is checked after every run.
//!
//! The contract: **every failure replays bit-exactly from
//! `(scenario, seed, plan)`**. Fault plans ([`SimPlan`]) key their
//! events to byte offsets of streams that are themselves deterministic
//! functions of the seed, so thread scheduling changes *when* bytes
//! move, never *which* bytes move. A failing seed's plan is then
//! shrunk ([`runner::shrink`]) to a minimal reproducer and written out
//! as a JSON artifact.
//!
//! ```no_run
//! use ps3_sim::{runner, Sabotage, SimPlan};
//!
//! // One deterministic run of the full pipeline under seed 7's plan:
//! let report = runner::run_one("pipeline", 7, None, Sabotage::None).unwrap();
//! assert!(report.violations.is_empty());
//!
//! // The same run again is bit-identical:
//! let again = runner::run_one("pipeline", 7, None, Sabotage::None).unwrap();
//! assert_eq!(report.fingerprint, again.fingerprint);
//!
//! // Replay an artifact's minimal reproducer:
//! let plan = SimPlan::parse("drop@4096,flip@5000:3").unwrap();
//! let _ = runner::run_one("pipeline", 7, Some(&plan), Sabotage::None);
//! ```

#![forbid(unsafe_code)]

pub mod inject;
pub mod invariant;
pub mod plan;
pub mod probes;
pub mod runner;
pub mod scenario;
pub mod world;

pub use inject::{ApplyEffects, FaultChannel, FaultInjector, FaultProxy};
pub use invariant::{Checker, Fingerprint, Violation};
pub use plan::{FaultEvent, FaultKind, PlanOptions, SimPlan};
pub use runner::{failure_json, run_one, shrink, sweep, Failure, SweepOutcome};
pub use scenario::{crash_time_us, default_options, Sabotage, ScenarioReport, SCENARIOS};
pub use world::{quiesce, sim_eeprom, sim_source, SimDevice};
