//! Fault application: one offset-keyed state machine
//! ([`FaultChannel`]) shared by the two faultable paths — the virtual
//! serial link (via [`FaultInjector`], a [`Transport`] wrapper) and
//! the stream daemon's TCP loopback (via [`FaultProxy`]).
//!
//! Faults are keyed to byte offsets of the *source* stream, which is a
//! deterministic function of `(seed, command sequence)` — so the bytes
//! a consumer observes are identical on every replay, no matter how
//! reads are chunked or threads are scheduled.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use ps3_transport::{Transport, TransportError};

use crate::plan::{FaultEvent, FaultKind, SimPlan};

/// Side effects of pushing a chunk through [`FaultChannel::apply`]
/// that the carrier (transport wrapper or TCP pump) must enact.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct ApplyEffects {
    /// Total stall time to sleep before delivering the chunk.
    pub stall_ms: u64,
    /// Deliver only this many of the produced bytes now (short read);
    /// the carrier keeps the rest pending. `None` = deliver all.
    pub cut: Option<usize>,
    /// The link crashed inside this chunk: deliver the produced bytes,
    /// then fail every later operation.
    pub crashed: bool,
}

/// The offset-keyed fault state machine. Feed it the raw source bytes
/// in order; it produces the faulted bytes plus delivery effects.
#[derive(Debug)]
pub struct FaultChannel {
    events: Vec<FaultEvent>,
    next: usize,
    offset: u64,
    crashed: bool,
    faults_applied: u64,
}

impl FaultChannel {
    /// A channel applying `plan`.
    #[must_use]
    pub fn new(plan: &SimPlan) -> Self {
        Self {
            events: plan.events().to_vec(),
            next: 0,
            offset: 0,
            crashed: false,
            faults_applied: 0,
        }
    }

    /// Total source bytes consumed so far.
    #[must_use]
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Events that have fired so far.
    #[must_use]
    pub fn faults_applied(&self) -> u64 {
        self.faults_applied
    }

    /// `true` once a [`FaultKind::Crash`] event has fired.
    #[must_use]
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Pushes `input` through the fault schedule, appending the
    /// surviving bytes to `out` and returning the delivery effects.
    /// Bytes at or after a crash offset are discarded.
    pub fn apply(&mut self, input: &[u8], out: &mut Vec<u8>) -> ApplyEffects {
        let mut fx = ApplyEffects::default();
        if self.crashed {
            fx.crashed = true;
            return fx;
        }
        for &byte in input {
            let at = self.offset;
            self.offset += 1;
            let mut survivor = Some(byte);
            let mut duplicates = 0usize;
            while self.next < self.events.len() && self.events[self.next].offset <= at {
                let event = self.events[self.next];
                self.next += 1;
                if event.offset < at {
                    continue; // offset was skipped (e.g. guard overlap)
                }
                self.faults_applied += 1;
                match event.kind {
                    FaultKind::Drop => survivor = None,
                    FaultKind::Duplicate => duplicates += 1,
                    FaultKind::BitFlip(bit) => {
                        survivor = survivor.map(|b| b ^ (1 << (bit & 7)));
                    }
                    FaultKind::Stall(ms) => fx.stall_ms += u64::from(ms),
                    FaultKind::ShortRead => {
                        // Cut after this byte (or right here if it is
                        // dropped by another event at the same offset).
                        fx.cut = Some(out.len() + usize::from(survivor.is_some()));
                    }
                    FaultKind::Crash => {
                        self.crashed = true;
                        fx.crashed = true;
                        return fx;
                    }
                }
            }
            if let Some(b) = survivor {
                for _ in 0..=duplicates {
                    out.push(b);
                }
            }
        }
        fx
    }
}

#[derive(Debug)]
struct InjectorState {
    channel: FaultChannel,
    /// Faulted bytes produced but not yet handed to the reader.
    pending: VecDeque<u8>,
    /// Deliver at most this many pending bytes before forcing the
    /// reader to come back (a short read in flight).
    deliver_limit: Option<usize>,
}

struct InjectorShared<T> {
    inner: T,
    state: Mutex<InjectorState>,
}

/// A [`Transport`] wrapper that applies a [`SimPlan`] to the
/// device→host byte stream. Host→device writes pass through unfaulted
/// (command loss is a different failure domain than sample-stream
/// corruption) until a crash, after which everything fails.
///
/// Cloning yields another handle onto the same channel — scenarios
/// keep a clone as an observation tap (`available`, fault counters)
/// after moving the injector into `PowerSensor::connect`.
pub struct FaultInjector<T> {
    shared: Arc<InjectorShared<T>>,
}

impl<T> Clone for FaultInjector<T> {
    fn clone(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T: Transport> FaultInjector<T> {
    /// Wraps `inner`, faulting its read side according to `plan`.
    #[must_use]
    pub fn new(inner: T, plan: &SimPlan) -> Self {
        Self {
            shared: Arc::new(InjectorShared {
                inner,
                state: Mutex::new(InjectorState {
                    channel: FaultChannel::new(plan),
                    pending: VecDeque::new(),
                    deliver_limit: None,
                }),
            }),
        }
    }

    /// Source-stream bytes consumed so far.
    #[must_use]
    pub fn bytes_seen(&self) -> u64 {
        self.shared.state.lock().channel.offset()
    }

    /// Fault events that have fired so far.
    #[must_use]
    pub fn faults_applied(&self) -> u64 {
        self.shared.state.lock().channel.faults_applied()
    }

    /// `true` once a crash event has fired.
    #[must_use]
    pub fn is_crashed(&self) -> bool {
        self.shared.state.lock().channel.is_crashed()
    }

    /// Copies pending bytes into `buf`, honouring a short-read limit.
    fn take_pending(state: &mut InjectorState, buf: &mut [u8]) -> usize {
        let mut cap = buf.len().min(state.pending.len());
        if let Some(limit) = state.deliver_limit {
            cap = cap.min(limit);
        }
        for slot in buf.iter_mut().take(cap) {
            *slot = state.pending.pop_front().expect("len checked");
        }
        if let Some(limit) = &mut state.deliver_limit {
            *limit -= cap;
            // The short read has been enacted once the limit is hit;
            // later reads flow normally.
            if *limit == 0 {
                state.deliver_limit = None;
            }
        }
        cap
    }
}

impl<T: Transport> Transport for FaultInjector<T> {
    fn write_all(&self, bytes: &[u8]) -> Result<(), TransportError> {
        if self.shared.state.lock().channel.is_crashed() {
            return Err(TransportError::Disconnected);
        }
        self.shared.inner.write_all(bytes)
    }

    fn read(&self, buf: &mut [u8], timeout: Option<Duration>) -> Result<usize, TransportError> {
        if buf.is_empty() {
            return Ok(0);
        }
        loop {
            {
                let mut state = self.shared.state.lock();
                if !state.pending.is_empty() {
                    let n = Self::take_pending(&mut state, buf);
                    if n > 0 {
                        return Ok(n);
                    }
                }
                if state.channel.is_crashed() {
                    return Err(TransportError::Disconnected);
                }
            }
            // Read more source bytes without holding the lock (writers
            // on other threads must not wait on a blocking read).
            let mut raw = [0u8; 4096];
            let n = self.shared.inner.read(&mut raw, timeout)?;
            let stall_ms;
            {
                let mut state = self.shared.state.lock();
                let mut produced = Vec::with_capacity(n);
                let fx = state.channel.apply(&raw[..n], &mut produced);
                stall_ms = fx.stall_ms;
                if let Some(cut) = fx.cut {
                    // `cut` indexes into `produced`; anything already
                    // pending is delivered ahead of it.
                    state.deliver_limit = Some((state.pending.len() + cut).max(1));
                }
                state.pending.extend(produced);
            }
            if stall_ms > 0 {
                std::thread::sleep(Duration::from_millis(stall_ms));
            }
            // All bytes of this chunk may have been dropped (or held
            // back by a crash): loop and read again.
        }
    }

    fn available(&self) -> usize {
        let state = self.shared.state.lock();
        let inner = if state.channel.is_crashed() {
            0
        } else {
            self.shared.inner.available()
        };
        state.pending.len() + inner
    }
}

/// A TCP proxy that forwards one client connection to `upstream`,
/// applying a [`SimPlan`] to the downstream (daemon→client) bytes.
/// Client→daemon traffic passes through verbatim. A crash event
/// severs both directions.
pub struct FaultProxy {
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl FaultProxy {
    /// Starts the proxy on an ephemeral local port.
    ///
    /// # Errors
    ///
    /// Socket bind errors.
    pub fn start(upstream: SocketAddr, plan: &SimPlan) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let plan = plan.clone();
        let accept = std::thread::Builder::new()
            .name("ps3-sim-proxy".into())
            .spawn(move || {
                let Ok((client, _)) = listener.accept() else {
                    return;
                };
                let Ok(server) = TcpStream::connect(upstream) else {
                    let _ = client.shutdown(Shutdown::Both);
                    return;
                };
                let up = {
                    let (client, server) = (
                        client.try_clone().expect("clone client"),
                        server.try_clone().expect("clone server"),
                    );
                    std::thread::Builder::new()
                        .name("ps3-sim-proxy-up".into())
                        .spawn(move || forward_verbatim(client, server))
                        .expect("spawn proxy upstream thread")
                };
                forward_faulted(server, client, &plan);
                let _ = up.join();
            })
            .expect("spawn proxy accept thread");
        Ok(Self {
            addr,
            accept: Some(accept),
        })
    }

    /// The address clients connect to.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

/// Client→daemon: byte-for-byte.
fn forward_verbatim(mut from: TcpStream, mut to: TcpStream) {
    let mut buf = [0u8; 4096];
    loop {
        match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
        }
    }
    let _ = to.shutdown(Shutdown::Write);
}

/// Daemon→client: through the fault channel.
fn forward_faulted(mut from: TcpStream, mut to: TcpStream, plan: &SimPlan) {
    let mut channel = FaultChannel::new(plan);
    let mut buf = [0u8; 4096];
    let mut produced = Vec::new();
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        produced.clear();
        let fx = channel.apply(&buf[..n], &mut produced);
        if fx.stall_ms > 0 {
            std::thread::sleep(Duration::from_millis(fx.stall_ms));
        }
        // TCP has no read-boundary to cut at; a short read degrades to
        // two writes, which is the same byte stream on the wire.
        if to.write_all(&produced).is_err() {
            break;
        }
        if fx.crashed {
            let _ = to.shutdown(Shutdown::Both);
            let _ = from.shutdown(Shutdown::Both);
            return;
        }
    }
    let _ = to.shutdown(Shutdown::Write);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps3_transport::VirtualSerial;

    fn pattern(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i % 251) as u8).collect()
    }

    /// Golden model: what the plan should do to a byte stream.
    fn golden(input: &[u8], plan: &SimPlan) -> Vec<u8> {
        let mut out = Vec::new();
        let mut channel = FaultChannel::new(plan);
        channel.apply(input, &mut out);
        out
    }

    #[test]
    fn channel_applies_each_kind() {
        let plan = SimPlan::parse("drop@1,dup@3,flip@5:0,crash@8").unwrap();
        let mut out = Vec::new();
        let mut ch = FaultChannel::new(&plan);
        let fx = ch.apply(&[10, 11, 12, 13, 14, 15, 16, 17, 18, 19], &mut out);
        // 10, (11 dropped), 12, 13 13, 14, 15^1, 16, 17, crash at 18.
        assert_eq!(out, vec![10, 12, 13, 13, 14, 14, 16, 17]);
        assert!(fx.crashed && ch.is_crashed());
        assert_eq!(ch.faults_applied(), 4);
    }

    #[test]
    fn short_read_cuts_inside_the_chunk() {
        let plan = SimPlan::parse("short@2").unwrap();
        let mut out = Vec::new();
        let mut ch = FaultChannel::new(&plan);
        let fx = ch.apply(&[1, 2, 3, 4, 5], &mut out);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
        assert_eq!(fx.cut, Some(3));
    }

    #[test]
    fn injector_output_is_chunking_independent() {
        let data = pattern(512);
        let plan = SimPlan::parse("drop@5,flip@17:6,dup@40,short@100,drop@101,dup@300").unwrap();
        let want = golden(&data, &plan);
        for chunk in [1usize, 7, 64, 512] {
            let (host, dev) = VirtualSerial::pair();
            let injector = FaultInjector::new(host, &plan);
            let writer = std::thread::spawn({
                let data = data.clone();
                move || {
                    for piece in data.chunks(chunk) {
                        dev.write_all(piece).unwrap();
                    }
                    dev
                }
            });
            let mut got = Vec::new();
            let mut buf = [0u8; 33];
            while got.len() < want.len() {
                let n = injector
                    .read(&mut buf, Some(Duration::from_secs(5)))
                    .expect("read");
                got.extend_from_slice(&buf[..n]);
            }
            assert_eq!(got, want, "chunk size {chunk}");
            assert_eq!(injector.bytes_seen(), data.len() as u64);
            drop(writer.join().unwrap());
        }
    }

    #[test]
    fn injector_crash_disconnects_both_directions() {
        let data = pattern(64);
        let plan = SimPlan::parse("crash@10").unwrap();
        let (host, dev) = VirtualSerial::pair();
        let injector = FaultInjector::new(host, &plan);
        dev.write_all(&data).unwrap();
        let mut got = Vec::new();
        let mut buf = [0u8; 64];
        loop {
            match injector.read(&mut buf, Some(Duration::from_secs(1))) {
                Ok(n) => got.extend_from_slice(&buf[..n]),
                Err(e) => {
                    assert_eq!(e, TransportError::Disconnected);
                    break;
                }
            }
        }
        assert_eq!(got, &data[..10], "bytes before the crash survive");
        assert!(injector.is_crashed());
        assert_eq!(
            injector.write_all(b"x"),
            Err(TransportError::Disconnected),
            "writes fail after the crash"
        );
        assert_eq!(injector.available(), 0);
    }

    #[test]
    fn proxy_faults_only_the_downstream_direction() {
        let plan = SimPlan::parse("flip@3:0,drop@8").unwrap();
        let upstream = TcpListener::bind("127.0.0.1:0").unwrap();
        let upstream_addr = upstream.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = upstream.accept().unwrap();
            // Echo 16 bytes back, then close.
            let mut buf = [0u8; 16];
            conn.read_exact(&mut buf).unwrap();
            conn.write_all(&buf).unwrap();
            buf
        });
        let proxy = FaultProxy::start(upstream_addr, &plan).unwrap();
        let mut client = TcpStream::connect(proxy.addr()).unwrap();
        let sent: Vec<u8> = (0u8..16).collect();
        client.write_all(&sent).unwrap();
        let seen_by_server = server.join().unwrap();
        assert_eq!(&seen_by_server[..], &sent[..], "upstream is verbatim");
        let mut echoed = Vec::new();
        client.read_to_end(&mut echoed).unwrap();
        assert_eq!(echoed, golden(&sent, &plan), "downstream is faulted");
    }
}
