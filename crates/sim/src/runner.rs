//! The sweep driver: runs scenarios over seed ranges, shrinks failing
//! plans to minimal reproducers, and emits one JSON artifact per
//! failure so a violation can be replayed bit-exactly from
//! `(scenario, seed, plan)` alone.

use std::io;
use std::path::{Path, PathBuf};

use crate::plan::SimPlan;
use crate::scenario::{self, default_options, Sabotage, ScenarioReport, SCENARIOS};

/// One failing run, with its shrunk reproducer.
#[derive(Debug)]
pub struct Failure {
    /// The report of the run under the *shrunk* plan.
    pub report: ScenarioReport,
    /// The plan the failure was first observed under.
    pub original_plan: SimPlan,
    /// The planted defect, if any.
    pub sabotage: Sabotage,
    /// Where the artifact was written (when an output dir was given).
    pub artifact: Option<PathBuf>,
}

/// Aggregate result of a sweep.
#[derive(Debug, Default)]
pub struct SweepOutcome {
    /// Scenario runs executed (excluding shrink re-runs).
    pub scenarios_run: u64,
    /// Total invariant violations across all failing runs.
    pub violations: u64,
    /// The failing runs, shrunk.
    pub failures: Vec<Failure>,
}

/// Runs one scenario with its seed-derived plan (or `plan` when given).
///
/// # Errors
///
/// An unknown scenario name.
pub fn run_one(
    scenario: &str,
    seed: u64,
    plan: Option<&SimPlan>,
    sabotage: Sabotage,
) -> Result<ScenarioReport, String> {
    let plan = plan
        .cloned()
        .unwrap_or_else(|| SimPlan::generate(seed, &default_options(scenario)));
    scenario::run(scenario, seed, &plan, sabotage)
}

/// Greedily removes plan events while the violation persists, to a
/// fixpoint: the returned plan still fails, but no single event can be
/// removed from it.
#[must_use]
pub fn shrink(scenario: &str, seed: u64, plan: &SimPlan, sabotage: Sabotage) -> SimPlan {
    let mut current = plan.clone();
    loop {
        let mut progressed = false;
        let mut i = 0;
        while i < current.len() {
            let candidate = current.without(i);
            let still_fails = scenario::run(scenario, seed, &candidate, sabotage)
                .map(|r| !r.violations.is_empty())
                .unwrap_or(false);
            if still_fails {
                current = candidate;
                progressed = true;
            } else {
                i += 1;
            }
        }
        if !progressed {
            return current;
        }
    }
}

/// Sweeps `seeds` over `scenarios` (all known scenarios when empty),
/// shrinking every failure and writing a JSON artifact per failure
/// into `out_dir` when given.
///
/// # Errors
///
/// Artifact I/O errors; unknown scenario names.
pub fn sweep(
    scenarios: &[&str],
    seeds: impl IntoIterator<Item = u64>,
    sabotage: Sabotage,
    out_dir: Option<&Path>,
) -> Result<SweepOutcome, String> {
    let names: Vec<&str> = if scenarios.is_empty() {
        SCENARIOS.to_vec()
    } else {
        scenarios.to_vec()
    };
    if let Some(dir) = out_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    }
    let mut outcome = SweepOutcome::default();
    for seed in seeds {
        for name in &names {
            let report = run_one(name, seed, None, sabotage)?;
            outcome.scenarios_run += 1;
            if report.violations.is_empty() {
                continue;
            }
            outcome.violations += report.violations.len() as u64;
            let original_plan = report.plan.clone();
            let shrunk = shrink(name, seed, &original_plan, sabotage);
            // Re-run under the shrunk plan so the artifact carries the
            // reproducer's own violations and fingerprint.
            let report = scenario::run(name, seed, &shrunk, sabotage)?;
            let mut failure = Failure {
                report,
                original_plan,
                sabotage,
                artifact: None,
            };
            if let Some(dir) = out_dir {
                let path = dir.join(format!("failure-{name}-{seed}.json"));
                std::fs::write(&path, failure_json(&failure))
                    .map_err(|e| format!("write {}: {e}", path.display()))?;
                failure.artifact = Some(path);
            }
            outcome.failures.push(failure);
        }
    }
    Ok(outcome)
}

/// Renders a failure artifact: everything needed to replay the run
/// (`ps3-sim run --scenario S --seed N --plan P [--sabotage X]`).
#[must_use]
pub fn failure_json(failure: &Failure) -> String {
    let r = &failure.report;
    let mut out = String::from("{\n");
    push_field(&mut out, "scenario", r.scenario, true);
    push_raw(&mut out, "seed", &r.seed.to_string(), true);
    push_field(&mut out, "sabotage", failure.sabotage.name(), true);
    push_field(
        &mut out,
        "original_plan",
        &failure.original_plan.to_compact(),
        true,
    );
    push_field(&mut out, "plan", &r.plan.to_compact(), true);
    push_raw(&mut out, "frames", &r.frames.to_string(), true);
    push_field(
        &mut out,
        "fingerprint",
        &format!("{:016x}", r.fingerprint),
        true,
    );
    out.push_str("  \"facts\": {");
    for (i, (k, v)) in r.facts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        out.push_str(&json_string(k));
        out.push_str(": ");
        out.push_str(&json_string(v));
    }
    out.push_str("\n  },\n");
    out.push_str("  \"violations\": [");
    for (i, v) in r.violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"invariant\": ");
        out.push_str(&json_string(&v.invariant));
        out.push_str(", \"detail\": ");
        out.push_str(&json_string(&v.detail));
        out.push('}');
    }
    out.push_str("\n  ]\n}\n");
    out
}

fn push_field(out: &mut String, key: &str, value: &str, comma: bool) {
    push_raw(out, key, &json_string(value), comma);
}

fn push_raw(out: &mut String, key: &str, value: &str, comma: bool) {
    out.push_str("  ");
    out.push_str(&json_string(key));
    out.push_str(": ");
    out.push_str(value);
    if comma {
        out.push(',');
    }
    out.push('\n');
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Convenience for CI: writes `summary.json` describing a sweep.
///
/// # Errors
///
/// Filesystem errors.
pub fn write_summary(outcome: &SweepOutcome, dir: &Path) -> io::Result<PathBuf> {
    let mut out = String::from("{\n");
    push_raw(
        &mut out,
        "scenarios_run",
        &outcome.scenarios_run.to_string(),
        true,
    );
    push_raw(
        &mut out,
        "violations",
        &outcome.violations.to_string(),
        true,
    );
    out.push_str("  \"failures\": [");
    for (i, f) in outcome.failures.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        out.push_str(&json_string(&format!(
            "{}-{}: {}",
            f.report.scenario,
            f.report.seed,
            f.report.plan.to_compact()
        )));
    }
    out.push_str("\n  ]\n}\n");
    let path = dir.join("summary.json");
    std::fs::write(&path, out)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_seeds_have_no_violations() {
        for scenario in SCENARIOS {
            let report = run_one(scenario, 1, None, Sabotage::None).expect("known scenario");
            assert!(
                report.violations.is_empty(),
                "{scenario} seed 1 (plan {}): {:?}",
                report.plan,
                report.violations
            );
        }
    }

    #[test]
    fn explicit_empty_plan_is_clean_and_deterministic() {
        let empty = SimPlan::empty();
        let a = run_one("pipeline", 9, Some(&empty), Sabotage::None).unwrap();
        let b = run_one("pipeline", 9, Some(&empty), Sabotage::None).unwrap();
        assert!(a.violations.is_empty(), "{:?}", a.violations);
        assert_eq!(a.fingerprint, b.fingerprint, "replay is not bit-exact");
        assert!(a.frames > 4000, "expected ~5000 frames, got {}", a.frames);
    }

    #[test]
    fn faulted_run_replays_bit_exactly() {
        let plan = SimPlan::parse("drop@2500,flip@3000:2,dup@4000,stall@5000:5").unwrap();
        let a = run_one("pipeline", 11, Some(&plan), Sabotage::None).unwrap();
        let b = run_one("pipeline", 11, Some(&plan), Sabotage::None).unwrap();
        assert!(a.violations.is_empty(), "{:?}", a.violations);
        assert_eq!(
            a.fingerprint, b.fingerprint,
            "faulted replay is not bit-exact"
        );
    }

    #[test]
    fn planted_unsealed_tail_is_caught_and_shrunk() {
        let plan = SimPlan::generate(5, &default_options("pipeline"));
        let report = scenario::run("pipeline", 5, &plan, Sabotage::UnsealedTail).unwrap();
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.invariant == "archive-seal"),
            "planted unsealed tail not caught: {:?}",
            report.violations
        );
        let shrunk = shrink("pipeline", 5, &plan, Sabotage::UnsealedTail);
        assert!(
            shrunk.len() <= 5,
            "shrunk plan still has {} events: {shrunk}",
            shrunk.len()
        );
        // The defect is plan-independent, so greedy removal drains it.
        assert!(shrunk.is_empty(), "expected the empty plan, got {shrunk}");
    }

    #[test]
    fn planted_uncounted_drop_is_caught() {
        let report = run_one(
            "pipeline",
            6,
            Some(&SimPlan::empty()),
            Sabotage::UncountedDrop,
        )
        .unwrap();
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.invariant == "archive-matches-live"),
            "planted uncounted drop not caught: {:?}",
            report.violations
        );
    }

    #[test]
    fn failure_json_is_well_formed() {
        let report = run_one(
            "archive-crash",
            3,
            Some(&SimPlan::parse("crash@5000").unwrap()),
            Sabotage::None,
        )
        .unwrap();
        let failure = Failure {
            original_plan: report.plan.clone(),
            report,
            sabotage: Sabotage::None,
            artifact: None,
        };
        let json = failure_json(&failure);
        assert!(json.contains("\"scenario\": \"archive-crash\""));
        assert!(json.contains("\"seed\": 3"));
        assert!(json.contains("\"violations\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
