//! The `probes` scenario: a modeled CPU package polled by the whole
//! RAPL probe family — powercap-sysfs, MSR, perf-event, eBPF — plus
//! the PS3-external meter, under a seeded fault plan.
//!
//! The scenario derives a phase-marked workload from the seed, builds
//! one poll schedule per probe (each at its own cadence) and merges
//! them into one global, time-ordered schedule. Plan events index that
//! schedule (offset modulo the poll count): [`FaultKind::Drop`],
//! [`FaultKind::BitFlip`] and [`FaultKind::ShortRead`] discard a
//! corrupted read, [`FaultKind::Duplicate`] issues it twice,
//! [`FaultKind::Stall`] delays it, and [`FaultKind::Crash`] kills the
//! owning probe's poller outright. Whatever survives executes in
//! global time order against the shared [`CpuModel`], so every on-CPU
//! read steals modeled CPU time from the workload.
//!
//! Invariants checked after quiesce:
//!
//! * `workload-finished` — the package completes its phases despite
//!   the measurement perturbation;
//! * `steal-balance` — runtime inflation over the unperturbed ideal
//!   equals the stolen time *exactly*, in integer nanoseconds;
//! * `probe-truth` — ground-truth energy is servable at every polled
//!   update tick (the history horizon covers every access path);
//! * `probe-monotone` — each session's wrap-corrected energy never
//!   decreases, across drops, duplicates, stalls and wraps;
//! * `probe-envelope` — each probe's energy estimate stays within its
//!   modeled error envelope of the DUT ground truth over the same
//!   span.
//!
//! Every fact is a pure function of `(seed, plan)` — virtual time
//! only, no threads, no wall clock.

use std::sync::Arc;

use parking_lot::Mutex;
use ps3_duts::{CpuModel, CpuPhase, CpuSpec, CpuWorkload};
use ps3_pmt::{EnergySession, ProbeKind, SharedCpu};
use ps3_units::{SimDuration, SimTime};

use crate::invariant::Checker;
use crate::plan::{splitmix64, FaultKind, SimPlan};
use crate::scenario::{finish_report, ScenarioReport};

/// Seed mix for the probes workload ("PROBEFAM").
const PROBES_SALT: u64 = 0x5052_4F42_4546_414D;

/// Workload phases the seed shapes.
const PROBES_PHASES: usize = 4;

/// Slack past the ideal runtime that the poll schedules cover. Stolen
/// time stays far below it, so the workload always finishes inside the
/// polled window.
const SCHEDULE_SLACK: SimDuration = SimDuration::from_millis(50);

/// Per-probe polling cadence. Faster paths poll harder — the point of
/// the scenario is their perturbation under fire, not a fair race.
fn cadence(kind: ProbeKind) -> SimDuration {
    SimDuration::from_micros(match kind {
        ProbeKind::PowercapSysfs => 5_000,
        ProbeKind::Msr => 1_000,
        ProbeKind::PerfEvent => 2_000,
        ProbeKind::Ebpf => 500,
        ProbeKind::Ps3External => 250,
    })
}

/// The seed-derived workload: four phases, utilization quantized to
/// 64ths (so the facts are exact), 30–79 ms of work each.
#[must_use]
pub fn probes_workload(seed: u64) -> CpuWorkload {
    let mut rng = seed ^ PROBES_SALT;
    let labels = ['a', 'b', 'c', 'd'];
    let phases = (0..PROBES_PHASES)
        .map(|i| {
            let util_64ths = splitmix64(&mut rng) % 65;
            let work_ms = 30 + splitmix64(&mut rng) % 50;
            CpuPhase {
                label: labels[i],
                util: util_64ths as f64 / 64.0,
                work: SimDuration::from_millis(work_ms),
            }
        })
        .collect();
    CpuWorkload::new(phases)
}

/// One planned poll: schedule position before faults touch it.
#[derive(Clone, Copy)]
struct Poll {
    /// Index into [`ProbeKind::ALL`].
    probe: usize,
    /// Per-probe sequence number (tie-break for stable ordering).
    seq: u64,
    /// Scheduled virtual time.
    at: SimTime,
}

/// Runs the probes scenario for `(seed, plan)`.
pub(crate) fn run_probes(seed: u64, plan: &SimPlan) -> ScenarioReport {
    let mut checker = Checker::new();
    let mut facts: Vec<(String, String)> = Vec::new();

    let wl = probes_workload(seed);
    let spec = CpuSpec::desktop();
    let ideal = wl.ideal_runtime();
    let max_power = spec.max_power();
    facts.push((
        "workload".to_owned(),
        wl.phases()
            .iter()
            .map(|p| {
                format!(
                    "{}:{}/64x{}ms",
                    p.label,
                    (p.util * 64.0).round() as u64,
                    p.work.as_nanos() / 1_000_000
                )
            })
            .collect::<Vec<_>>()
            .join(","),
    ));
    facts.push(("ideal_ns".to_owned(), ideal.as_nanos().to_string()));

    // The pristine global schedule: every probe from t=0 at its own
    // cadence, out to ideal + slack, merged time-major.
    let horizon = SimTime::ZERO + ideal + SCHEDULE_SLACK;
    let mut polls: Vec<Poll> = Vec::new();
    for (probe, kind) in ProbeKind::ALL.iter().enumerate() {
        let step = cadence(*kind);
        let mut t = SimTime::ZERO;
        let mut seq = 0;
        while t <= horizon {
            polls.push(Poll { probe, seq, at: t });
            t += step;
            seq += 1;
        }
    }
    polls.sort_by_key(|p| (p.at, p.probe, p.seq));
    let planned = polls.len() as u64;

    // Map plan events onto schedule ordinals of the pristine list, so
    // the mapping itself never shifts as faults apply.
    let mut skip = vec![false; polls.len()];
    let mut extra = vec![0u16; polls.len()];
    let mut delay = vec![SimDuration::ZERO; polls.len()];
    let mut crash_at: [Option<SimTime>; 5] = [None; 5];
    for ev in plan.events() {
        let idx = (ev.offset % planned) as usize;
        match ev.kind {
            // A corrupted or truncated read is discarded by the host.
            FaultKind::Drop | FaultKind::BitFlip(_) | FaultKind::ShortRead => skip[idx] = true,
            FaultKind::Duplicate => extra[idx] += 1,
            FaultKind::Stall(ms) => delay[idx] += SimDuration::from_millis(u64::from(ms)),
            // The owning probe's poller dies at that scheduled time.
            FaultKind::Crash => {
                let p = polls[idx].probe;
                let t = polls[idx].at;
                crash_at[p] = Some(crash_at[p].map_or(t, |c| c.min(t)));
            }
        }
    }

    // Apply the faults, then re-sort: stalls can reorder polls across
    // probes, but execution must stay globally time-monotone.
    let mut executed: Vec<Poll> = Vec::new();
    for (idx, poll) in polls.iter().enumerate() {
        if skip[idx] {
            continue;
        }
        if let Some(c) = crash_at[poll.probe] {
            if poll.at >= c {
                continue;
            }
        }
        let at = poll.at + delay[idx];
        for _ in 0..=extra[idx] {
            executed.push(Poll { at, ..*poll });
        }
    }
    executed.sort_by_key(|p| (p.at, p.probe, p.seq));
    let frames = executed.len() as u64;

    // Run it: one shared package, one session per probe kind.
    let cpu: SharedCpu = Arc::new(Mutex::new(CpuModel::new(spec, wl)));
    let mut sessions: Vec<EnergySession> = ProbeKind::ALL
        .iter()
        .map(|&k| EnergySession::over(k, Arc::clone(&cpu)))
        .collect();
    let mut first_truth: [Option<f64>; 5] = [None; 5];
    let mut last_truth: [Option<f64>; 5] = [None; 5];
    let mut last_energy = [0.0f64; 5];
    let mut monotone = [true; 5];
    let mut truth_known = [true; 5];
    let mut end = horizon;
    for poll in &executed {
        let kind = ProbeKind::ALL[poll.probe];
        sessions[poll.probe].poll(poll.at);
        let e = sessions[poll.probe].energy().value();
        if e < last_energy[poll.probe] {
            monotone[poll.probe] = false;
        }
        last_energy[poll.probe] = e;
        let tick = kind.spec().tick_before(poll.at);
        match cpu.lock().energy_at(tick) {
            Some(truth) => {
                let t = truth.value();
                if first_truth[poll.probe].is_none() {
                    first_truth[poll.probe] = Some(t);
                }
                last_truth[poll.probe] = Some(t);
            }
            None => truth_known[poll.probe] = false,
        }
        end = end.max(poll.at);
    }

    // Quiesce: run the package past the last poll so stalled reads and
    // the workload tail both land.
    let (finished, stolen_before, stolen_total) = {
        let mut m = cpu.lock();
        m.advance_to(end + SimDuration::from_millis(10));
        (m.finished_at(), m.stolen_before_finish(), m.stolen_total())
    };

    checker.expect("workload-finished", finished.is_some(), || {
        format!("package never finished {ideal} of work by {end}")
    });
    if let Some(done) = finished {
        let runtime = done - SimTime::ZERO;
        // The perturbation ledger, exact in integer nanoseconds:
        // inflation over the unperturbed ideal IS the stolen time.
        checker.expect("steal-balance", runtime == ideal + stolen_before, || {
            format!(
                "runtime {} != ideal {} + stolen {}",
                runtime.as_nanos(),
                ideal.as_nanos(),
                stolen_before.as_nanos()
            )
        });
        facts.push(("finished_ns".to_owned(), runtime.as_nanos().to_string()));
        facts.push((
            "inflation_ns".to_owned(),
            (runtime - ideal).as_nanos().to_string(),
        ));
    }
    facts.push((
        "stolen_before_ns".to_owned(),
        stolen_before.as_nanos().to_string(),
    ));
    facts.push((
        "stolen_total_ns".to_owned(),
        stolen_total.as_nanos().to_string(),
    ));

    for (i, kind) in ProbeKind::ALL.iter().enumerate() {
        let slug = kind.slug();
        let session = &sessions[i];
        checker.expect("probe-truth", truth_known[i], || {
            format!("{}: ground truth pruned under a polled tick", kind.label())
        });
        checker.expect("probe-monotone", monotone[i], || {
            format!("{}: session energy decreased", kind.label())
        });
        if let (Some(first), Some(last)) = (first_truth[i], last_truth[i]) {
            let span = last - first;
            let err = (session.energy().value() - span).abs();
            let envelope = kind.spec().error_envelope(max_power).value();
            checker.expect("probe-envelope", err <= envelope + 1e-9, || {
                format!(
                    "{}: estimate off truth by {err:.9} J > envelope {envelope:.9} J",
                    kind.label()
                )
            });
            facts.push((format!("probe.{slug}.err_uj"), format!("{:.3}", err * 1e6)));
        }
        facts.push((format!("probe.{slug}.reads"), session.reads().to_string()));
        facts.push((
            format!("probe.{slug}.units"),
            session.total_units().to_string(),
        ));
    }

    finish_report("probes", seed, plan, frames, facts, checker)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;

    #[test]
    fn healthy_run_is_clean_and_replays_bit_identically() {
        let plan = SimPlan::empty();
        let a = run_probes(11, &plan);
        assert!(a.violations.is_empty(), "{:?}", a.violations);
        assert!(a.frames > 0);
        let b = run_probes(11, &plan);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.facts, b.facts);
    }

    #[test]
    fn every_fault_kind_maps_onto_the_schedule() {
        let healthy = run_probes(3, &SimPlan::empty());
        // drop + flip remove two polls, dup adds one, stall moves one.
        let plan = SimPlan::parse("drop@3,flip@40:2,dup@10,stall@20:7").unwrap();
        let faulted = run_probes(3, &plan);
        assert!(faulted.violations.is_empty(), "{:?}", faulted.violations);
        assert_eq!(faulted.frames, healthy.frames - 1);
        assert_ne!(faulted.fingerprint, healthy.fingerprint);
    }

    #[test]
    fn a_crash_silences_one_probe_without_tripping_invariants() {
        let plan = SimPlan::parse("crash@2").unwrap();
        let report = run_probes(5, &plan);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        // Some probe lost most of its schedule.
        let healthy = run_probes(5, &SimPlan::empty());
        assert!(report.frames < healthy.frames - 10);
    }

    #[test]
    fn generated_plans_pass_the_invariant_catalogue() {
        for seed in 0..8 {
            let plan = SimPlan::generate(seed, &scenario::default_options("probes"));
            let report = run_probes(seed, &plan);
            assert!(
                report.violations.is_empty(),
                "seed {seed} plan {}: {:?}",
                plan.to_compact(),
                report.violations
            );
        }
    }

    #[test]
    fn scenario_registry_routes_probes() {
        let plan = SimPlan::generate(1, &scenario::default_options("probes"));
        let report = scenario::run("probes", 1, &plan, scenario::Sabotage::None).unwrap();
        assert_eq!(report.scenario, "probes");
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }
}
