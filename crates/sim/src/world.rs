//! The simulated world: an emulated PowerSensor3 device on a virtual
//! clock, plus the quiesce protocol that makes end-of-run state
//! deterministic.
//!
//! The device thread races nothing: it only advances toward a shared
//! virtual-time target, and every byte it emits is a pure function of
//! `(seed, clock, command sequence)`. Thread scheduling changes *when*
//! bytes move, never *which* bytes move — the property every sim
//! invariant leans on.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ps3_core::PowerSensor;
use ps3_firmware::{Device, Eeprom, SensorConfig};
use ps3_transport::{SerialEndpoint, Transport, VirtualSerial};
use ps3_units::{SimDuration, SimTime};

/// Nominal rail voltage of the simulated pair.
pub const RAIL_VOLTS: f64 = 12.0;
/// Mean simulated load current in amps.
pub const MEAN_AMPS: f64 = 2.0;
/// Peak deviation of the sinusoidal load around [`MEAN_AMPS`].
pub const RIPPLE_AMPS: f64 = 0.35;

/// Mean power the deterministic source dissipates (watts).
#[must_use]
pub fn mean_watts() -> f64 {
    RAIL_VOLTS * MEAN_AMPS
}

/// An EEPROM with one populated 12 V / 10 A pair (slots 0 and 1).
#[must_use]
pub fn sim_eeprom() -> Eeprom {
    let mut e = Eeprom::new();
    e.write(0, SensorConfig::new("I0", 3.3, 0.12, true));
    e.write(1, SensorConfig::new("U0", 3.3, 5.0, true));
    e
}

/// A deterministic analog source: a seed-detuned sinusoidal load on a
/// steady 12 V rail. Pure in `(seed, channel, t)`, so the device's
/// output byte stream is replayable from the seed alone.
#[must_use]
pub fn sim_source(seed: u64) -> impl ps3_firmware::AnalogSource {
    // 80–119 Hz, phase offset from the seed: distinct seeds exercise
    // distinct code sequences without losing determinism.
    let hz = 80.0 + (seed % 40) as f64;
    let phase = (seed / 40 % 628) as f64 / 100.0;
    move |ch: usize, t: SimTime| -> f64 {
        match ch {
            0 => {
                let amps = MEAN_AMPS
                    + RIPPLE_AMPS * (core::f64::consts::TAU * hz * t.as_secs_f64() + phase).sin();
                1.65 + amps * 0.12 // 120 mV/A around the 1.65 V midpoint
            }
            1 => RAIL_VOLTS / 5.0, // voltage divider gain 5
            _ => 0.0,
        }
    }
}

/// The emulated device running in a thread, advancing toward a shared
/// virtual-time target. The host side talks to it over the returned
/// [`SerialEndpoint`] (usually through a
/// [`FaultInjector`](crate::FaultInjector)).
pub struct SimDevice {
    target_ns: Arc<AtomicU64>,
    clock_ns: Arc<AtomicU64>,
    crashed: Arc<AtomicBool>,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl SimDevice {
    /// Spawns the device thread. `crash_at` schedules a firmware crash
    /// at that virtual time; when it fires the device thread exits and
    /// drops its endpoint, so the host observes `Disconnected`.
    #[must_use]
    pub fn spawn(seed: u64, crash_at: Option<SimTime>) -> (Self, SerialEndpoint) {
        let (host_end, dev_end) = VirtualSerial::pair();
        let target_ns = Arc::new(AtomicU64::new(0));
        let clock_ns = Arc::new(AtomicU64::new(0));
        let crashed = Arc::new(AtomicBool::new(false));
        let stop = Arc::new(AtomicBool::new(false));
        let join = {
            let target_ns = Arc::clone(&target_ns);
            let clock_ns = Arc::clone(&clock_ns);
            let crashed = Arc::clone(&crashed);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("ps3-sim-device".into())
                .spawn(move || {
                    let mut dev = Device::new(sim_source(seed), sim_eeprom());
                    if let Some(at) = crash_at {
                        dev.schedule_crash(at);
                    }
                    while !stop.load(Ordering::SeqCst) {
                        if dev.is_crashed() {
                            // The board died: leave, dropping dev_end,
                            // so the host's link errors out.
                            crashed.store(true, Ordering::SeqCst);
                            return;
                        }
                        let target = SimTime::from_nanos(target_ns.load(Ordering::SeqCst));
                        if dev.clock() < target {
                            dev.run_until(&dev_end, target);
                        } else {
                            dev.process_commands(&dev_end);
                            std::thread::sleep(Duration::from_micros(200)); // ps3-lint: allow(determinism) reason="harness quiesce: paces real OS reader/device threads; the simulated timeline itself is SimTime-driven"
                        }
                        clock_ns.store(dev.clock().as_nanos(), Ordering::SeqCst);
                    }
                })
                .expect("spawn sim device thread")
        };
        (
            Self {
                target_ns,
                clock_ns,
                crashed,
                stop,
                join: Some(join),
            },
            host_end,
        )
    }

    /// Moves the virtual-time target forward by `d`.
    pub fn advance(&self, d: SimDuration) {
        self.target_ns.fetch_add(d.as_nanos(), Ordering::SeqCst);
    }

    /// The device's current virtual clock.
    #[must_use]
    pub fn clock(&self) -> SimTime {
        SimTime::from_nanos(self.clock_ns.load(Ordering::SeqCst))
    }

    /// `true` once the device has caught up with every `advance` so
    /// far (it emits nothing further until the next `advance`).
    #[must_use]
    pub fn parked(&self) -> bool {
        self.clock_ns.load(Ordering::SeqCst) >= self.target_ns.load(Ordering::SeqCst)
    }

    /// `true` once a scheduled crash has fired and the device thread
    /// has exited.
    #[must_use]
    pub fn is_crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }
}

impl Drop for SimDevice {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

/// Drives the world to a deterministic stop: the device is parked (or
/// crashed), the transport is drained, and the host's frame count has
/// stopped moving. After a successful quiesce, every fact derived from
/// the byte stream (frame count, trace, archive contents, energy) is a
/// pure function of `(seed, plan)`.
///
/// Returns `false` on timeout (the run is then not trustworthy for
/// bit-exact comparison).
#[must_use]
pub fn quiesce(
    ps: &PowerSensor,
    device: &SimDevice,
    tap: &dyn Transport,
    timeout: Duration,
) -> bool {
    let deadline = Instant::now() + timeout; // ps3-lint: allow(determinism) reason="harness quiesce: paces real OS reader/device threads; the simulated timeline itself is SimTime-driven"
    let mut last_frames = ps.frames_received();
    let mut stable_since = Instant::now(); // ps3-lint: allow(determinism) reason="harness quiesce: paces real OS reader/device threads; the simulated timeline itself is SimTime-driven"

    // ps3-lint: allow(determinism) reason="harness quiesce: paces real OS reader/device threads; the simulated timeline itself is SimTime-driven"
    while Instant::now() < deadline {
        let settled = device.parked() || device.is_crashed() || !ps.is_alive();
        let drained = tap.available() == 0 || !ps.is_alive();
        let frames = ps.frames_received();
        if frames != last_frames {
            last_frames = frames;
            stable_since = Instant::now(); // ps3-lint: allow(determinism) reason="harness quiesce: paces real OS reader/device threads; the simulated timeline itself is SimTime-driven"
        }
        // Two reader polls (20 ms each) of silence after the pipeline
        // looks empty: the count is final.
        if settled && drained && stable_since.elapsed() > Duration::from_millis(60) {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5)); // ps3-lint: allow(determinism) reason="harness quiesce: paces real OS reader/device threads; the simulated timeline itself is SimTime-driven"
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_stream_is_deterministic_per_seed() {
        // Same seed, different read chunkings → identical byte stream.
        let mut streams = Vec::new();
        for _ in 0..2 {
            let (dev, host) = SimDevice::spawn(7, None);
            host.write_all(&ps3_firmware::protocol::Command::StartStreaming.encode())
                .unwrap();
            dev.advance(SimDuration::from_millis(5));
            let mut got = Vec::new();
            let deadline = Instant::now() + Duration::from_secs(5);
            while Instant::now() < deadline {
                let mut buf = [0u8; 97];
                match host.read(&mut buf, Some(Duration::from_millis(50))) {
                    Ok(n) => got.extend_from_slice(&buf[..n]),
                    Err(_) => {
                        if dev.parked() && host.available() == 0 {
                            break;
                        }
                    }
                }
            }
            streams.push(got);
        }
        assert!(!streams[0].is_empty());
        assert_eq!(streams[0], streams[1]);
        // A different seed produces a different stream.
        let (dev, host) = SimDevice::spawn(8, None);
        host.write_all(&ps3_firmware::protocol::Command::StartStreaming.encode())
            .unwrap();
        dev.advance(SimDuration::from_millis(5));
        std::thread::sleep(Duration::from_millis(50));
        let mut other = vec![0u8; streams[0].len()];
        host.read_exact(&mut other).unwrap();
        assert_ne!(streams[0], other);
    }

    #[test]
    fn scheduled_crash_stops_the_device_and_kills_the_link() {
        let (dev, host) = SimDevice::spawn(3, Some(SimTime::from_micros(1000)));
        host.write_all(&ps3_firmware::protocol::Command::StartStreaming.encode())
            .unwrap();
        dev.advance(SimDuration::from_millis(10));
        let deadline = Instant::now() + Duration::from_secs(5);
        while !dev.is_crashed() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(dev.is_crashed());
        // Drain what was emitted before the crash, then the link dies.
        let mut buf = [0u8; 4096];
        let mut total = 0;
        let err = loop {
            match host.read(&mut buf, Some(Duration::from_millis(100))) {
                Ok(n) => total += n,
                Err(e) => break e,
            }
        };
        assert_eq!(err, ps3_transport::TransportError::Disconnected);
        // 1000 µs at 50 µs per 6-byte frame → 20 frames → 120 bytes.
        assert_eq!(total, 120, "exactly the pre-crash frames are emitted");
    }
}
