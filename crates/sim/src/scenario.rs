//! End-to-end scenarios: each wires a slice of the real stack —
//! emulated device, fault injector, host reader, stream daemon with
//! subscribers, archive writer — runs it under a [`SimPlan`], quiesces,
//! and checks the invariant catalogue.
//!
//! Every fact a scenario reports (and folds into its fingerprint) is a
//! pure function of `(seed, plan, sabotage)`. Wall-clock-dependent
//! quantities (client counters mid-flight, queue depths) feed
//! *inequalities* or bounded-convergence checks only.

use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ps3_analysis::Trace;
use ps3_archive::{
    frame_total, index_path_for, stats_path_for, Archive, ArchiveError, ArchiveFrame,
    ArchiveWriter, ArchiveWriterOptions, SegmentWriter,
};
use ps3_core::{PowerSensor, SharedPowerSensor};
use ps3_firmware::SENSOR_SLOTS;
use ps3_fleet::{
    parse_shard_name, testbed_rig_factory, Fleet, FleetConfig, FleetQuery, RigFactory,
};
use ps3_stream::{RigSelector, StreamClient, StreamClientConfig, StreamDaemon, StreamDaemonConfig};
use ps3_transport::TransportError;
use ps3_tsdb::{
    compact_archive, compact_tmp_path_for, pyramid_path_for, stage_compacted, CompactOptions,
    PyramidConfig, Retention, Tsdb, TsdbWriter, TsdbWriterOptions,
};
use ps3_units::{SimDuration, SimTime};

use crate::inject::{FaultInjector, FaultProxy};
use crate::invariant::{Checker, Fingerprint, Violation};
use crate::plan::{splitmix64, FaultKind, PlanOptions, SimPlan};
use crate::world::{quiesce, sim_eeprom, SimDevice};

/// Every scenario the harness knows, in sweep order.
pub const SCENARIOS: [&str; 8] = [
    "pipeline",
    "device-crash",
    "tcp-faults",
    "archive-crash",
    "tsdb",
    "fleet",
    "c10k",
    "probes",
];

/// Virtual time the streaming scenarios run for: 250 ms at 20 kHz is
/// 5000 frames — past every generated plan's fault horizon, and small
/// enough that the broadcast ring (8192 slots) can never lap a
/// subscriber, which is what makes the client counters deterministic.
const STREAM_MS: u64 = 250;

/// Frames the archive-crash scenario writes before damaging the file.
const ARCHIVE_FRAMES: u64 = 600;

/// Keep-up subscribers in the c10k scenario (the full-scale sweep
/// lives in the bench `stream` experiment; here the point is the
/// invariants, so the count stays test-suite friendly).
const C10K_SUBS: usize = 96;
/// Block-averaging divisors cycled across the c10k subscribers. Every
/// entry divides the published frame count exactly, so each keep-up
/// subscriber's delivery count is a closed-form fact.
const C10K_DIVISORS: [u32; 4] = [1, 2, 4, 8];
/// Virtual time the c10k scenario streams: 1 s at 20 kHz.
const C10K_MS: u64 = 1000;
/// Frames the c10k scenario publishes.
const C10K_FRAMES: u64 = C10K_MS * 20;

/// Seed mix for the device-crash time ("DEVCRASH").
const CRASH_SALT: u64 = 0x4445_5643_5241_5348;
/// Seed mix for the archive-crash payload ("ARCHIVE_").
const ARCHIVE_SALT: u64 = 0x4152_4348_4956_455F;
/// Seed mix for the fleet crash point ("FLEETSIM").
const FLEET_SALT: u64 = 0x464C_4545_5453_494D;
/// Seed mix for the tsdb scenario payload ("TSDBQRY_").
const TSDB_SALT: u64 = 0x5453_4442_5152_595F;

/// Frames the tsdb scenario captures: several summary blocks across
/// many small segments, so compaction has segments to merge and the
/// pyramid has more than one tier in play.
const TSDB_FRAMES: u64 = 6000;
/// Frames per sealed segment in the tsdb scenario.
const TSDB_SEGMENT_FRAMES: usize = 400;
/// Sealed segments that trigger a background compaction.
const TSDB_COMPACT_AFTER: usize = 6;
/// Frames per merged segment after compaction.
const TSDB_COMPACT_TARGET: usize = 2400;

/// Rigs in the fleet scenario — enough fan-in to make the k-way merge
/// earn its keep.
const FLEET_RIGS: u16 = 32;
/// Virtual-time ticks the fleet scenario advances, 5 ms each: 100 ms
/// total is 2000 frames per healthy rig, well under the 8192-slot
/// broadcast ring, so zero gaps is a hard requirement, not a hope.
const FLEET_TICKS: u64 = 20;
/// Frames one rig publishes per 5 ms tick at 20 kHz.
const FLEET_FRAMES_PER_TICK: u64 = 100;

/// A deliberately planted defect, used to prove the harness catches
/// real violations (and that shrinking converges).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Sabotage {
    /// No planted defect.
    #[default]
    None,
    /// The archive sink silently skips every 5th frame without
    /// counting it — `archive-matches-live` must fire.
    UncountedDrop,
    /// The last byte of the finished archive is flipped, as if the
    /// final seal never hit disk — `archive-seal` must fire.
    UnsealedTail,
}

impl Sabotage {
    /// Stable name for artifacts and the CLI.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Sabotage::None => "none",
            Sabotage::UncountedDrop => "uncounted-drop",
            Sabotage::UnsealedTail => "unsealed-tail",
        }
    }

    /// Parses [`Sabotage::name`] output.
    #[must_use]
    pub fn parse(text: &str) -> Option<Self> {
        match text {
            "none" => Some(Sabotage::None),
            "uncounted-drop" => Some(Sabotage::UncountedDrop),
            "unsealed-tail" => Some(Sabotage::UnsealedTail),
            _ => None,
        }
    }
}

/// Everything one scenario run produced.
#[derive(Debug)]
pub struct ScenarioReport {
    /// Which scenario ran.
    pub scenario: &'static str,
    /// Seed the run derives from.
    pub seed: u64,
    /// The fault plan that was applied.
    pub plan: SimPlan,
    /// Frames the host decoded (0 where not applicable).
    pub frames: u64,
    /// Digest over every deterministic fact; equal across replays of
    /// the same `(seed, plan, sabotage)`.
    pub fingerprint: u64,
    /// Deterministic facts, for artifacts and the bench report.
    pub facts: Vec<(String, String)>,
    /// Invariant violations (empty on a healthy stack).
    pub violations: Vec<Violation>,
}

/// Plan-generation knobs appropriate for `scenario`.
#[must_use]
pub fn default_options(scenario: &str) -> PlanOptions {
    match scenario {
        // The device crash is the scenario's crash; a link crash on
        // top would mask the frame-count law.
        "device-crash" => PlanOptions {
            allow_crash: false,
            ..PlanOptions::default()
        },
        // Offsets are taken modulo the file length, so the whole file
        // is in scope and the guard is meaningless.
        "archive-crash" => PlanOptions {
            guard: 0,
            horizon: 1 << 20,
            max_events: 4,
            allow_crash: true,
        },
        // Same regime: the plan's first event picks where the
        // in-flight compaction's staging write tears.
        "tsdb" => PlanOptions {
            guard: 0,
            horizon: 1 << 20,
            max_events: 4,
            allow_crash: true,
        },
        // No proxy in the loop: the scenario is about the event loop
        // multiplexing many healthy subscribers, so fault plans would
        // only add noise. The plan still seeds the fingerprint.
        "c10k" => PlanOptions {
            max_events: 0,
            allow_crash: false,
            ..PlanOptions::default()
        },
        // Offsets index the scenario's poll schedule (taken modulo the
        // poll count), so the byte guard is meaningless; a crash maps
        // to one probe going silent, which the invariants tolerate.
        "probes" => PlanOptions {
            guard: 0,
            horizon: 1 << 14,
            max_events: 4,
            allow_crash: true,
        },
        _ => PlanOptions::default(),
    }
}

/// Runs one scenario.
///
/// # Errors
///
/// An unknown scenario name.
pub fn run(
    scenario: &str,
    seed: u64,
    plan: &SimPlan,
    sabotage: Sabotage,
) -> Result<ScenarioReport, String> {
    match scenario {
        "pipeline" => Ok(run_pipeline(seed, plan, sabotage)),
        "device-crash" => Ok(run_device_crash(seed, plan)),
        "tcp-faults" => Ok(run_tcp_faults(seed, plan)),
        "archive-crash" => Ok(run_archive_crash(seed, plan)),
        "tsdb" => Ok(run_tsdb(seed, plan)),
        "fleet" => Ok(run_fleet(seed, plan)),
        "c10k" => Ok(run_c10k(seed, plan)),
        "probes" => Ok(crate::probes::run_probes(seed, plan)),
        other => Err(format!(
            "unknown scenario '{other}' (known: {})",
            SCENARIOS.join(", ")
        )),
    }
}

/// Virtual time at which the device-crash scenario's board dies
/// (5–35 ms, seed-derived).
#[must_use]
pub fn crash_time_us(seed: u64) -> u64 {
    let mut rng = seed ^ CRASH_SALT;
    5_000 + splitmix64(&mut rng) % 30_000
}

fn scratch_path(tag: &str, seed: u64) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::SeqCst);
    std::env::temp_dir().join(format!(
        "ps3-sim-{}-{tag}-{seed}-{n}.ps3a",
        std::process::id()
    ))
}

fn scratch_dir(tag: &str, seed: u64) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::SeqCst);
    std::env::temp_dir().join(format!("ps3-sim-{}-{tag}-{seed}-{n}", std::process::id()))
}

fn cleanup(path: &Path) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(index_path_for(path));
    let _ = std::fs::remove_file(stats_path_for(path));
    let _ = std::fs::remove_file(pyramid_path_for(path));
    let _ = std::fs::remove_file(compact_tmp_path_for(path));
}

fn wait_for(timeout: Duration, mut done: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout; // ps3-lint: allow(determinism) reason="harness quiesce: paces real OS reader/device threads; the simulated timeline itself is SimTime-driven"
    loop {
        if done() {
            return true;
        }
        // ps3-lint: allow(determinism) reason="harness quiesce: paces real OS reader/device threads; the simulated timeline itself is SimTime-driven"
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(5)); // ps3-lint: allow(determinism) reason="harness quiesce: paces real OS reader/device threads; the simulated timeline itself is SimTime-driven"
    }
}

pub(crate) fn finish_report(
    scenario: &'static str,
    seed: u64,
    plan: &SimPlan,
    frames: u64,
    facts: Vec<(String, String)>,
    checker: Checker,
) -> ScenarioReport {
    let mut fp = Fingerprint::new();
    fp.update(scenario.as_bytes());
    fp.update_u64(seed);
    fp.update(plan.to_compact().as_bytes());
    fp.update_u64(frames);
    for (k, v) in &facts {
        fp.update(k.as_bytes());
        fp.update(v.as_bytes());
    }
    ScenarioReport {
        scenario,
        seed,
        plan: plan.clone(),
        frames,
        fingerprint: fp.finish(),
        facts,
        violations: checker.into_violations(),
    }
}

/// The full stack: device → faulted serial → `PowerSensor` (trace +
/// energy) → archive writer and stream daemon → two TCP subscribers
/// (native rate and divisor 4).
fn run_pipeline(seed: u64, plan: &SimPlan, sabotage: Sabotage) -> ScenarioReport {
    let mut checker = Checker::new();
    let mut facts: Vec<(String, String)> = Vec::new();
    let archive_path = scratch_path("pipeline", seed);

    let (device, host) = SimDevice::spawn(seed, None);
    let injector = FaultInjector::new(host, plan);
    let tap = injector.clone();

    let ps = match PowerSensor::connect(injector) {
        Ok(ps) => SharedPowerSensor::new(ps),
        Err(e) => {
            // A plan that kills the link inside the handshake is a
            // legal outcome, not a violation; it is still replayable.
            facts.push(("connect_error".into(), format!("{e:?}")));
            drop(device);
            cleanup(&archive_path);
            return finish_report("pipeline", seed, plan, 0, facts, checker);
        }
    };
    ps.begin_trace();

    let writer = ArchiveWriter::spawn(&archive_path, ps.configs(), ArchiveWriterOptions::default())
        .expect("create sim archive");
    if sabotage == Sabotage::UncountedDrop {
        let mut inner = writer.sink();
        let mut count = 0u64;
        ps.add_frame_sink(move |record| {
            count += 1;
            if count.is_multiple_of(5) {
                true // swallow the frame without telling anyone
            } else {
                inner(record)
            }
        });
    } else {
        writer.attach(&ps);
    }

    let mut daemon = StreamDaemon::start(ps.clone(), "127.0.0.1:0", StreamDaemonConfig::default())
        .expect("start sim stream daemon");
    let c1 = StreamClient::connect(daemon.local_addr(), StreamClientConfig::default())
        .expect("connect div-1 client");
    let c4 = StreamClient::connect(
        daemon.local_addr(),
        StreamClientConfig {
            pair_mask: 0x0F,
            divisor: 4,
            ..StreamClientConfig::default()
        },
    )
    .expect("connect div-4 client");
    // Subscribers pin their ring cursors once their sender loops start;
    // settle while the device is parked so the cursors pin at head 0
    // and no frame can slip past an unpinned subscriber.
    let subscribed = wait_for(Duration::from_secs(5), || {
        daemon.stats().active_subscribers == 2
    });
    checker.expect("harness-quiesce", subscribed, || {
        "subscribers failed to register within 5 s".into()
    });
    std::thread::sleep(Duration::from_millis(100)); // ps3-lint: allow(determinism) reason="harness quiesce: paces real OS reader/device threads; the simulated timeline itself is SimTime-driven"

    device.advance(SimDuration::from_millis(STREAM_MS));
    let quiesced = quiesce(&ps, &device, &tap, Duration::from_secs(30));
    checker.expect("harness-quiesce", quiesced, || {
        "pipeline failed to quiesce within 30 s".into()
    });

    let trace = ps.end_trace();
    let state = ps.read();
    let frames = ps.frames_received();
    let published = daemon.stats().frames_published;

    // Every sink attached while the device was parked, so the trace,
    // the daemon and the archive all saw every decoded frame.
    checker.expect("gap-accounting", trace.len() as u64 == frames, || {
        format!(
            "trace holds {} samples but host decoded {frames}",
            trace.len()
        )
    });
    checker.expect("gap-accounting", published == frames, || {
        format!("daemon published {published} of {frames} decoded frames")
    });
    checker.check_monotonic(&trace, !plan.mutates_bytes());
    checker.check_energy(&trace, state.total_energy);

    // The ring never laps (5000 frames < 8192 slots), so both clients
    // converge on exact counts; give them bounded wall time to drain.
    let _ = wait_for(Duration::from_secs(10), || {
        (c1.is_evicted() || c1.frames_received() + c1.dropped_frames() == published)
            && (c4.is_evicted() || c4.frames_received() == published / 4)
    });
    if !c1.is_evicted() {
        checker.check_gap_accounting(published, c1.frames_received(), c1.dropped_frames());
    }
    if !c4.is_evicted() {
        checker.check_divided_bounds(published, c4.frames_received(), c4.dropped_frames(), 4);
    }

    daemon.shutdown();
    for (name, client) in [("div1", &c1), ("div4", &c4)] {
        let dead = wait_for(Duration::from_secs(5), || !client.is_alive());
        checker.expect("evict-reason", dead, || {
            format!("{name} client still alive after daemon shutdown")
        });
        checker.expect(
            "evict-reason",
            !client.is_evicted() || client.eviction_reason().is_some(),
            || format!("{name} client evicted without a reason"),
        );
    }

    // The queue (65536) dwarfs the run (5000 frames): any drop here is
    // an accounting bug, not backpressure.
    let writer_dropped = writer.dropped();
    checker.expect("archive-accounting", writer_dropped == 0, || {
        format!("archive writer dropped {writer_dropped} frames with an oversized queue")
    });
    match writer.finish() {
        Ok(stats) => {
            facts.push(("archive_frames".into(), stats.frames.to_string()));
            facts.push(("archive_segments".into(), stats.segments.to_string()));
        }
        Err(e) => checker.expect("archive-accounting", false, || {
            format!("archive writer failed: {e:?}")
        }),
    }
    if sabotage == Sabotage::UnsealedTail {
        flip_last_byte(&archive_path);
    }
    match Archive::open(&archive_path) {
        Ok(archive) => {
            checker.check_archive_sealed(&archive);
            checker.check_archive_matches(&archive, &trace, writer_dropped);
        }
        Err(e) => checker.expect("archive-seal", false, || {
            format!("finished archive failed to reopen: {e:?}")
        }),
    }

    facts.push(("published".into(), published.to_string()));
    facts.push((
        "energy_bits".into(),
        format!("{:016x}", state.total_energy.value().to_bits()),
    ));
    facts.push(("faults_applied".into(), tap.faults_applied().to_string()));
    let mut fp_trace = Fingerprint::new();
    fp_trace.update_trace(&trace);
    facts.push(("trace_fp".into(), format!("{:016x}", fp_trace.finish())));

    drop(daemon);
    drop(device);
    cleanup(&archive_path);
    finish_report("pipeline", seed, plan, frames, facts, checker)
}

/// The board dies mid-capture: the host must notice (dead link,
/// `Disconnected`), keep exactly the pre-crash frames, and the archive
/// must close cleanly over the truncated capture.
fn run_device_crash(seed: u64, plan: &SimPlan) -> ScenarioReport {
    let mut checker = Checker::new();
    let mut facts: Vec<(String, String)> = Vec::new();
    let archive_path = scratch_path("crash", seed);
    let crash_us = crash_time_us(seed);

    let (device, host) = SimDevice::spawn(seed, Some(SimTime::from_micros(crash_us)));
    let injector = FaultInjector::new(host, plan);
    let tap = injector.clone();

    let ps = match PowerSensor::connect(injector) {
        Ok(ps) => SharedPowerSensor::new(ps),
        Err(e) => {
            facts.push(("connect_error".into(), format!("{e:?}")));
            drop(device);
            cleanup(&archive_path);
            return finish_report("device-crash", seed, plan, 0, facts, checker);
        }
    };
    ps.begin_trace();
    let writer = ArchiveWriter::spawn(&archive_path, ps.configs(), ArchiveWriterOptions::default())
        .expect("create sim archive");
    writer.attach(&ps);

    // Advance well past the crash time; the device dies on the way.
    device.advance(SimDuration::from_millis(40));
    let quiesced = quiesce(&ps, &device, &tap, Duration::from_secs(30));
    checker.expect("harness-quiesce", quiesced, || {
        "device-crash failed to quiesce within 30 s".into()
    });
    let noticed = wait_for(Duration::from_secs(5), || !ps.is_alive());
    checker.expect("crash-detected", noticed, || {
        "host reader still alive after the board crashed".into()
    });
    checker.expect(
        "crash-detected",
        matches!(ps.link_error(), Some(TransportError::Disconnected)),
        || {
            format!(
                "expected a Disconnected link error, got {:?}",
                ps.link_error()
            )
        },
    );

    let trace = ps.end_trace();
    let state = ps.read();
    let frames = ps.frames_received();
    checker.expect("gap-accounting", trace.len() as u64 == frames, || {
        format!(
            "trace holds {} samples but host decoded {frames}",
            trace.len()
        )
    });
    if plan.is_empty() {
        // 50 µs frames from clock zero, batches overshoot the crash by
        // less than one frame: the count is exact.
        let expected = crash_us.div_ceil(50);
        checker.expect("crash-frame-count", frames == expected, || {
            format!("crash at {crash_us} µs: decoded {frames} frames, expected {expected}")
        });
    }
    checker.check_monotonic(&trace, !plan.mutates_bytes());
    checker.check_energy(&trace, state.total_energy);

    let writer_dropped = writer.dropped();
    checker.expect("archive-accounting", writer_dropped == 0, || {
        format!("archive writer dropped {writer_dropped} frames with an oversized queue")
    });
    if let Err(e) = writer.finish() {
        checker.expect("archive-accounting", false, || {
            format!("archive writer failed: {e:?}")
        });
    }
    match Archive::open(&archive_path) {
        Ok(archive) => {
            checker.check_archive_sealed(&archive);
            checker.check_archive_matches(&archive, &trace, writer_dropped);
        }
        Err(e) => checker.expect("archive-seal", false, || {
            format!("finished archive failed to reopen: {e:?}")
        }),
    }

    facts.push(("crash_us".into(), crash_us.to_string()));
    facts.push((
        "energy_bits".into(),
        format!("{:016x}", state.total_energy.value().to_bits()),
    ));
    let mut fp_trace = Fingerprint::new();
    fp_trace.update_trace(&trace);
    facts.push(("trace_fp".into(), format!("{:016x}", fp_trace.finish())));

    drop(device);
    cleanup(&archive_path);
    finish_report("device-crash", seed, plan, frames, facts, checker)
}

/// Clean acquisition, hostile network: one subscriber connects
/// directly, a second through a TCP proxy that applies the plan to the
/// daemon→client bytes. Faults past the proxy must never corrupt the
/// daemon-side facts.
fn run_tcp_faults(seed: u64, plan: &SimPlan) -> ScenarioReport {
    let mut checker = Checker::new();
    let mut facts: Vec<(String, String)> = Vec::new();

    let (device, host) = SimDevice::spawn(seed, None);
    // Clean USB: the tap injector carries an empty plan.
    let injector = FaultInjector::new(host, &SimPlan::empty());
    let tap = injector.clone();
    let ps =
        SharedPowerSensor::new(PowerSensor::connect(injector).expect("connect over clean serial"));
    ps.begin_trace();

    let mut daemon = StreamDaemon::start(ps.clone(), "127.0.0.1:0", StreamDaemonConfig::default())
        .expect("start sim stream daemon");
    let direct = StreamClient::connect(daemon.local_addr(), StreamClientConfig::default())
        .expect("connect direct client");
    let proxy = FaultProxy::start(daemon.local_addr(), plan).expect("start fault proxy");
    let faulted = StreamClient::connect(proxy.addr(), StreamClientConfig::default())
        .expect("connect faulted client");

    let subscribed = wait_for(Duration::from_secs(5), || {
        daemon.stats().active_subscribers == 2
    });
    checker.expect("harness-quiesce", subscribed, || {
        "subscribers failed to register within 5 s".into()
    });
    std::thread::sleep(Duration::from_millis(100)); // ps3-lint: allow(determinism) reason="harness quiesce: paces real OS reader/device threads; the simulated timeline itself is SimTime-driven"

    device.advance(SimDuration::from_millis(STREAM_MS));
    let quiesced = quiesce(&ps, &device, &tap, Duration::from_secs(30));
    checker.expect("harness-quiesce", quiesced, || {
        "tcp-faults failed to quiesce within 30 s".into()
    });

    let trace = ps.end_trace();
    let state = ps.read();
    let frames = ps.frames_received();
    let published = daemon.stats().frames_published;
    checker.expect(
        "gap-accounting",
        trace.len() as u64 == frames && published == frames,
        || {
            format!(
                "trace {} / decoded {frames} / published {published} disagree on a clean link",
                trace.len()
            )
        },
    );
    // The serial link is clean here, so strict monotonicity holds no
    // matter what the TCP plan does.
    checker.check_monotonic(&trace, true);
    checker.check_energy(&trace, state.total_energy);

    let _ = wait_for(Duration::from_secs(10), || {
        direct.is_evicted() || direct.frames_received() + direct.dropped_frames() == published
    });
    if !direct.is_evicted() {
        checker.check_gap_accounting(published, direct.frames_received(), direct.dropped_frames());
    }
    // The faulted client's exact counts depend on what the plan did to
    // its bytes; only scheduling-independent claims are checked.
    if plan.crashes() {
        let died = wait_for(Duration::from_secs(10), || !faulted.is_alive());
        checker.expect("gap-accounting", died, || {
            "faulted client survived a severed proxy".into()
        });
    } else if !plan.mutates_bytes() {
        // Stalls and short reads only delay bytes; the client still
        // converges on full accounting.
        let _ = wait_for(Duration::from_secs(10), || {
            faulted.is_evicted()
                || faulted.frames_received() + faulted.dropped_frames() == published
        });
        if !faulted.is_evicted() {
            checker.check_gap_accounting(
                published,
                faulted.frames_received(),
                faulted.dropped_frames(),
            );
        }
    }

    daemon.shutdown();
    for (name, client) in [("direct", &direct), ("faulted", &faulted)] {
        let _ = wait_for(Duration::from_secs(5), || !client.is_alive());
        checker.expect(
            "evict-reason",
            !client.is_evicted() || client.eviction_reason().is_some(),
            || format!("{name} client evicted without a reason"),
        );
    }

    facts.push(("published".into(), published.to_string()));
    facts.push((
        "energy_bits".into(),
        format!("{:016x}", state.total_energy.value().to_bits()),
    ));
    let mut fp_trace = Fingerprint::new();
    fp_trace.update_trace(&trace);
    facts.push(("trace_fp".into(), format!("{:016x}", fp_trace.finish())));

    drop(daemon);
    drop(device);
    finish_report("tcp-faults", seed, plan, frames, facts, checker)
}

/// One event-loop thread, many subscribers: 96 keep-up clients at
/// mixed downsampling rates plus one that subscribes and never reads a
/// byte, all multiplexed by the daemon's single readiness loop. The
/// ring is sized so it can never lap a subscriber, which turns the
/// facts into closed forms: every keep-up client receives exactly
/// `published / divisor` frames with zero drops, and the stalled
/// client is evicted for `StalledWrite` — never for gaps.
fn run_c10k(seed: u64, plan: &SimPlan) -> ScenarioReport {
    let mut checker = Checker::new();
    let mut facts: Vec<(String, String)> = Vec::new();

    let (device, host) = SimDevice::spawn(seed, None);
    // Clean USB: the tap injector carries an empty plan.
    let injector = FaultInjector::new(host, &SimPlan::empty());
    let tap = injector.clone();
    let ps =
        SharedPowerSensor::new(PowerSensor::connect(injector).expect("connect over clean serial"));

    let daemon = StreamDaemon::start(
        ps.clone(),
        "127.0.0.1:0",
        StreamDaemonConfig {
            // Never laps a C10K_FRAMES capture: keep-up clients are
            // guaranteed gap-free no matter how the burst is paced.
            ring_capacity: 32768,
            // Small bound so the stalled subscriber's kernel + queue
            // budget is well under the capture size and the stall
            // detector provably fires.
            send_buffer_bytes: 32 * 1024,
            ..StreamDaemonConfig::default()
        },
    )
    .expect("start sim stream daemon");
    let addr = daemon.local_addr();

    let clients: Vec<StreamClient> = (0..C10K_SUBS)
        .map(|i| {
            StreamClient::connect(
                addr,
                StreamClientConfig {
                    divisor: C10K_DIVISORS[i % C10K_DIVISORS.len()],
                    ..StreamClientConfig::default()
                },
            )
            .expect("connect keep-up client")
        })
        .collect();
    let mut stalled = std::net::TcpStream::connect(addr).expect("connect stalled client");
    stalled
        .write_all(
            &ps3_stream::ClientMsg::Subscribe {
                pair_mask: 0x0F,
                divisor: 1,
                rig: None,
            }
            .encode(),
        )
        .expect("subscribe stalled client");

    let expected_subs = C10K_SUBS as u64 + 1;
    let subscribed = wait_for(Duration::from_secs(10), || {
        daemon.stats().active_subscribers == expected_subs
    });
    checker.expect("harness-quiesce", subscribed, || {
        format!("{expected_subs} subscribers failed to register within 10 s")
    });

    device.advance(SimDuration::from_millis(C10K_MS));
    let quiesced = quiesce(&ps, &device, &tap, Duration::from_secs(30));
    checker.expect("harness-quiesce", quiesced, || {
        "c10k failed to quiesce within 30 s".into()
    });

    let published = daemon.stats().frames_published;
    checker.expect("gap-accounting", published == C10K_FRAMES, || {
        format!("published {published} frames, expected {C10K_FRAMES}")
    });

    // Every keep-up client converges on its closed-form delivery count
    // with zero gaps — the ring never wrapped, so a single dropped
    // frame anywhere is an accounting bug, not scheduling noise.
    let mut received_total = 0u64;
    for (i, client) in clients.iter().enumerate() {
        let want = published / u64::from(C10K_DIVISORS[i % C10K_DIVISORS.len()]);
        let _ = wait_for(Duration::from_secs(30), || {
            client.is_evicted() || client.frames_received() >= want
        });
        checker.expect("gap-accounting", !client.is_evicted(), || {
            format!(
                "keep-up client {i} was evicted: {:?}",
                client.eviction_reason()
            )
        });
        checker.expect(
            "gap-accounting",
            client.frames_received() == want && client.dropped_frames() == 0,
            || {
                format!(
                    "client {i} (divisor {}) received {} frames / {} dropped, expected {want} / 0",
                    C10K_DIVISORS[i % C10K_DIVISORS.len()],
                    client.frames_received(),
                    client.dropped_frames()
                )
            },
        );
        received_total += client.frames_received();
    }

    // The stalled subscriber blocks until the write timeout, then is
    // evicted — and for the stall, never for gaps (nothing lapped).
    let evicted = wait_for(Duration::from_secs(20), || daemon.stats().evicted == 1);
    let stats = daemon.stats();
    checker.expect("evict-reason", evicted, || {
        format!(
            "stalled subscriber not evicted within 20 s (evicted={})",
            stats.evicted
        )
    });
    checker.expect(
        "evict-reason",
        stats.evicted_stalled == 1 && stats.evicted_gaps == 0,
        || {
            format!(
                "eviction misattributed: stalled={} gaps={}, expected 1 / 0",
                stats.evicted_stalled, stats.evicted_gaps
            )
        },
    );
    checker.expect(
        "gap-accounting",
        stats.accepted == expected_subs && stats.active_peak == expected_subs,
        || {
            format!(
                "lifetime counters accepted={} peak={}, expected {expected_subs} each",
                stats.accepted, stats.active_peak
            )
        },
    );
    checker.expect("gap-accounting", stats.gap_events == 0, || {
        format!("{} gap events on a ring that never laps", stats.gap_events)
    });

    facts.push(("published".into(), published.to_string()));
    facts.push(("received_total".into(), received_total.to_string()));
    facts.push(("accepted".into(), stats.accepted.to_string()));
    facts.push(("evicted_stalled".into(), stats.evicted_stalled.to_string()));

    drop(stalled);
    drop(clients);
    drop(daemon);
    drop(device);
    finish_report("c10k", seed, plan, published, facts, checker)
}

/// Many rigs behind one coordinator: 32 simulated rigs stream through
/// the fleet endpoint to one merged subscriber, eight per-rig
/// subscribers and one merged subscriber behind a fault proxy, while a
/// seed-chosen rig crashes mid-capture and is restarted into a fresh
/// archive shard. The headline invariants: the merged stream's gap
/// accounting equals the sum of its per-rig accounting, and the
/// cross-rig energy query equals the per-shard energies folded in
/// shard order, bit-exactly.
fn run_fleet(seed: u64, plan: &SimPlan) -> ScenarioReport {
    let mut checker = Checker::new();
    let mut facts: Vec<(String, String)> = Vec::new();
    let data_dir = scratch_dir("fleet", seed);

    let mut rng = seed ^ FLEET_SALT;
    let crash_rig = (splitmix64(&mut rng) % u64::from(FLEET_RIGS)) as u16;
    let crash_tick = 5 + splitmix64(&mut rng) % 10;

    // Generation 0 of the chosen rig reports crashed once the flag
    // flips; every other rig — and the restarted generation — stays
    // healthy.
    let crash_flag = Arc::new(AtomicBool::new(false));
    let factory: RigFactory = {
        let flag = Arc::clone(&crash_flag);
        let mut base = testbed_rig_factory(seed);
        Box::new(move |id, generation| {
            let mut parts = base(id, generation)?;
            if id == crash_rig && generation == 0 {
                let flag = Arc::clone(&flag);
                parts.crashed = Box::new(move || flag.load(Ordering::SeqCst));
            }
            Ok(parts)
        })
    };

    let mut fleet = Fleet::start(
        FLEET_RIGS,
        factory,
        "127.0.0.1:0",
        FleetConfig::new(&data_dir),
    )
    .expect("start sim fleet");

    let merged = StreamClient::connect(
        fleet.local_addr(),
        StreamClientConfig {
            rig: Some(RigSelector::All),
            ..StreamClientConfig::default()
        },
    )
    .expect("connect merged client");
    let per_rig: Vec<StreamClient> = (0..8u16)
        .map(|r| {
            StreamClient::connect(
                fleet.local_addr(),
                StreamClientConfig {
                    rig: Some(RigSelector::One(r)),
                    ..StreamClientConfig::default()
                },
            )
            .expect("connect per-rig client")
        })
        .collect();
    let proxy = FaultProxy::start(fleet.local_addr(), plan).expect("start fault proxy");
    let faulted = StreamClient::connect(
        proxy.addr(),
        StreamClientConfig {
            rig: Some(RigSelector::All),
            ..StreamClientConfig::default()
        },
    )
    .expect("connect faulted client");

    let subscribed = wait_for(Duration::from_secs(5), || {
        fleet.stats().active_subscribers == 10
    });
    checker.expect("harness-quiesce", subscribed, || {
        "fleet subscribers failed to register within 5 s".into()
    });
    std::thread::sleep(Duration::from_millis(100)); // ps3-lint: allow(determinism) reason="harness quiesce: paces real OS reader/device threads; the simulated timeline itself is SimTime-driven"

    let mut restarts = 0u32;
    for tick in 0..FLEET_TICKS {
        if tick == crash_tick {
            crash_flag.store(true, Ordering::SeqCst);
        }
        fleet.advance(SimDuration::from_millis(5));
        restarts += fleet.supervise().expect("restart crashed rig");
    }
    checker.expect("fleet-supervision", restarts == 1, || {
        format!("expected exactly one restart, supervisor performed {restarts}")
    });

    // `advance` is synchronous through the acquisition stack, so the
    // published totals are final here and purely seed-derived: the
    // crashed rig loses exactly the one tick it spent dead between its
    // two generations.
    let expected_total = (u64::from(FLEET_RIGS) * FLEET_TICKS - 1) * FLEET_FRAMES_PER_TICK;
    let roster = fleet.status();
    let published: u64 = roster.iter().map(|r| r.frames_published).sum();
    checker.expect("gap-accounting", published == expected_total, || {
        format!("fleet published {published} frames, expected {expected_total}")
    });
    for rig in &roster {
        let (want_restarts, want_shards, want_frames) = if rig.id == crash_rig {
            (1, 2, (FLEET_TICKS - 1) * FLEET_FRAMES_PER_TICK)
        } else {
            (0, 1, FLEET_TICKS * FLEET_FRAMES_PER_TICK)
        };
        checker.expect(
            "fleet-supervision",
            rig.alive
                && rig.restarts == want_restarts
                && rig.shards == want_shards
                && rig.frames_published == want_frames,
            || {
                format!(
                    "rig {}: alive={} restarts={} shards={} frames={}, expected alive \
                     restarts={want_restarts} shards={want_shards} frames={want_frames}",
                    rig.id, rig.alive, rig.restarts, rig.shards, rig.frames_published
                )
            },
        );
        checker.expect("archive-accounting", rig.writer_dropped == 0, || {
            format!(
                "rig {} writer dropped {} frames with an oversized queue",
                rig.id, rig.writer_dropped
            )
        });
    }

    // No ring ever holds more than 2000 frames, so the merged stream
    // must account for every published frame with zero gaps — and its
    // session totals must equal its per-rig attribution.
    let _ = wait_for(Duration::from_secs(20), || {
        merged.is_evicted() || merged.frames_received() + merged.dropped_frames() == published
    });
    if !merged.is_evicted() {
        checker.check_gap_accounting(published, merged.frames_received(), merged.dropped_frames());
        checker.check_merged_gap_sum(
            merged.gap_events(),
            merged.dropped_frames(),
            &merged.rig_counts(),
        );
        checker.expect(
            "gap-accounting",
            merged.gap_events() == 0 && merged.dropped_frames() == 0,
            || {
                format!(
                    "merged subscriber saw {} gap events / {} dropped frames on rings that \
                     never lap",
                    merged.gap_events(),
                    merged.dropped_frames()
                )
            },
        );
        let counts = merged.rig_counts();
        checker.expect(
            "merged-gap-sum",
            counts.len() == usize::from(FLEET_RIGS),
            || {
                format!(
                    "merged subscriber heard from {} rigs, expected {FLEET_RIGS}",
                    counts.len()
                )
            },
        );
        for c in &counts {
            let want = roster
                .iter()
                .find(|r| r.id == c.rig)
                .map_or(0, |r| r.frames_published);
            checker.expect("gap-accounting", c.frames == want, || {
                format!(
                    "merged subscriber received {} frames from rig {}, which published {want}",
                    c.frames, c.rig
                )
            });
        }
    }

    for (r, client) in per_rig.iter().enumerate() {
        let want = roster[r].frames_published;
        let _ = wait_for(Duration::from_secs(10), || {
            client.is_evicted() || client.frames_received() + client.dropped_frames() == want
        });
        if !client.is_evicted() {
            checker.check_gap_accounting(want, client.frames_received(), client.dropped_frames());
        }
    }

    // The faulted merged subscriber mirrors tcp-faults: coordinator
    // facts never depend on what the proxy did to its bytes.
    if plan.crashes() {
        let died = wait_for(Duration::from_secs(10), || !faulted.is_alive());
        checker.expect("gap-accounting", died, || {
            "faulted client survived a severed proxy".into()
        });
    } else if !plan.mutates_bytes() {
        let _ = wait_for(Duration::from_secs(20), || {
            faulted.is_evicted()
                || faulted.frames_received() + faulted.dropped_frames() == published
        });
        if !faulted.is_evicted() {
            checker.check_gap_accounting(
                published,
                faulted.frames_received(),
                faulted.dropped_frames(),
            );
            checker.check_merged_gap_sum(
                faulted.gap_events(),
                faulted.dropped_frames(),
                &faulted.rig_counts(),
            );
        }
    }

    // The roster over the wire must agree with the coordinator's own.
    if merged.is_alive() && !merged.is_evicted() {
        match merged.query_fleet(Duration::from_secs(5)) {
            Ok(wire) => {
                let wire_total: u64 = wire.iter().map(|r| r.frames_published).sum();
                checker.expect(
                    "fleet-supervision",
                    wire.len() == usize::from(FLEET_RIGS) && wire_total == published,
                    || {
                        format!(
                            "wire roster lists {} rigs / {wire_total} frames, coordinator \
                             holds {FLEET_RIGS} / {published}",
                            wire.len()
                        )
                    },
                );
            }
            Err(e) => checker.expect("fleet-supervision", false, || {
                format!("fleet status query failed: {e}")
            }),
        }
    }

    fleet.shutdown();
    for client in per_rig.iter().chain([&merged, &faulted]) {
        let _ = wait_for(Duration::from_secs(5), || !client.is_alive());
        checker.expect(
            "evict-reason",
            !client.is_evicted() || client.eviction_reason().is_some(),
            || "fleet client evicted without a reason".into(),
        );
    }

    // Shutdown sealed every shard; the query plane must now agree with
    // per-shard ground truth to the last bit.
    let (start, end) = (SimTime::from_micros(0), SimTime::from_micros(10_000_000));
    match FleetQuery::open(&data_dir) {
        Ok(query) => {
            checker.expect(
                "fleet-supervision",
                query.shard_count() == usize::from(FLEET_RIGS) + 1
                    && query.rigs().len() == usize::from(FLEET_RIGS),
                || {
                    format!(
                        "query plane found {} shards / {} rigs, expected {} / {FLEET_RIGS}",
                        query.shard_count(),
                        query.rigs().len(),
                        usize::from(FLEET_RIGS) + 1
                    )
                },
            );
            match (
                query.total_energy(start, end),
                fold_shard_energies(&data_dir, start, end),
            ) {
                (Ok(total), Ok(folded)) => {
                    checker.check_cross_rig_energy(total.value(), folded);
                    facts.push((
                        "energy_bits".into(),
                        format!("{:016x}", total.value().to_bits()),
                    ));
                }
                (q, f) => checker.expect("cross-rig-energy", false, || {
                    format!("energy queries failed: query={q:?} fold={f:?}")
                }),
            }
            match query.fleet_stats(start, end) {
                Ok(stats) => checker.expect("archive-accounting", stats.count == published, || {
                    format!(
                        "archive shards hold {} samples, fleet published {published}",
                        stats.count
                    )
                }),
                Err(e) => checker.expect("archive-accounting", false, || {
                    format!("fleet stats query failed: {e:?}")
                }),
            }
        }
        Err(e) => checker.expect("fleet-supervision", false, || {
            format!("fleet data dir failed to open: {e:?}")
        }),
    }

    facts.push(("crash_rig".into(), crash_rig.to_string()));
    facts.push(("crash_tick".into(), crash_tick.to_string()));
    facts.push(("published".into(), published.to_string()));

    drop(per_rig);
    drop(merged);
    drop(faulted);
    drop(proxy);
    let _ = std::fs::remove_dir_all(&data_dir);
    finish_report("fleet", seed, plan, published, facts, checker)
}

/// Ground truth for [`Checker::check_cross_rig_energy`]: open every
/// shard independently — through the same tier-serving engine the
/// query plane uses, so the arithmetic is the same terms in the same
/// order — and fold the per-shard energies in shard order (rig, then
/// generation), the order the query plane documents.
fn fold_shard_energies(dir: &Path, start: SimTime, end: SimTime) -> Result<f64, ArchiveError> {
    let mut shards: Vec<(u16, u32, PathBuf)> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if let Some((rig, generation)) = parse_shard_name(name) {
            shards.push((rig, generation, path));
        }
    }
    shards.sort_by_key(|&(rig, generation, _)| (rig, generation));
    let mut total = 0.0f64;
    for (_, _, path) in shards {
        total += Tsdb::open(&path)?.energy(start, end)?.value();
    }
    Ok(total)
}

/// Crash-consistency of the archive alone: write a capture, damage the
/// file the way a power cut or bad sector would (truncation or a
/// flipped bit, derived from the plan's first event), reopen, and
/// demand the recovered data is an exact, declared prefix — never torn
/// garbage, never silently wrong.
fn run_archive_crash(seed: u64, plan: &SimPlan) -> ScenarioReport {
    let mut checker = Checker::new();
    let mut facts: Vec<(String, String)> = Vec::new();
    let path = scratch_path("archive", seed);

    let eeprom = sim_eeprom();
    let configs = std::array::from_fn::<_, SENSOR_SLOTS, _>(|slot| eeprom.read(slot).clone());
    let mut writer = SegmentWriter::create_with(&path, configs, 100).expect("create sim archive");
    let mut rng = seed ^ ARCHIVE_SALT;
    for i in 0..ARCHIVE_FRAMES {
        let mut raw = [0u16; SENSOR_SLOTS];
        raw[0] = (splitmix64(&mut rng) % 1024) as u16;
        raw[1] = (splitmix64(&mut rng) % 1024) as u16;
        writer
            .push(ArchiveFrame {
                time: SimTime::from_micros(25 + 50 * i),
                raw,
                present: 0b11,
                marker: i.is_multiple_of(127).then_some('m'),
            })
            .expect("push sim frame");
    }
    writer.finish().expect("finish sim archive");

    let original = Archive::open(&path)
        .expect("reopen undamaged archive")
        .read_all()
        .expect("read undamaged archive");
    let file_len = std::fs::metadata(&path).expect("stat archive").len();

    // The plan's first event picks the damage; shrinking to the empty
    // plan removes it.
    let damage = plan.events().first().map(|e| (e.offset, e.kind));
    let damage_desc = match damage {
        None => "none".to_owned(),
        Some((offset, kind)) => match kind {
            FaultKind::Crash | FaultKind::Drop | FaultKind::ShortRead => {
                let cut = offset % (file_len - 1) + 1;
                OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .and_then(|f| f.set_len(cut))
                    .expect("truncate archive");
                format!("truncate@{cut}")
            }
            FaultKind::BitFlip(bit) => {
                flip_byte(&path, offset % file_len, bit);
                format!("flip@{}:{bit}", offset % file_len)
            }
            FaultKind::Duplicate => {
                flip_byte(&path, offset % file_len, 0);
                format!("flip@{}:0", offset % file_len)
            }
            FaultKind::Stall(_) => "none".to_owned(),
        },
    };
    let truncated = damage_desc.starts_with("truncate");
    let damaged = damage_desc != "none";

    let mut recovered_frames = 0u64;
    let mut recovered_fp = 0u64;
    match Archive::open(&path) {
        Ok(archive) => {
            recovered_frames = archive.frames();
            match archive.read_all() {
                Ok(trace) => {
                    let mut fp = Fingerprint::new();
                    fp.update_trace(&trace);
                    recovered_fp = fp.finish();
                    if !damaged {
                        checker.expect(
                            "archive-seal",
                            recovered_frames == ARCHIVE_FRAMES && trace == original,
                            || {
                                format!(
                                    "undamaged archive recovered {recovered_frames}/{ARCHIVE_FRAMES} frames"
                                )
                            },
                        );
                        match archive.verify() {
                            Ok(report) => checker.expect("archive-seal", report.is_clean(), || {
                                format!("undamaged archive verifies dirty: {report:?}")
                            }),
                            Err(e) => checker.expect("archive-seal", false, || {
                                format!("undamaged archive verify failed: {e:?}")
                            }),
                        }
                    } else if truncated {
                        checker.expect("archive-recovery", is_prefix(&trace, &original), || {
                            format!(
                                "truncated archive returned {} frames that are not a prefix \
                                     of the original capture",
                                trace.len()
                            )
                        });
                    } else {
                        // A flipped byte: the archive may lose data but
                        // must never serve wrong data while claiming to
                        // be clean and complete.
                        let clean = archive.verify().map(|r| r.is_clean()).unwrap_or(false);
                        if clean && recovered_frames == ARCHIVE_FRAMES {
                            checker.expect("archive-recovery", trace == original, || {
                                "corrupted archive verifies clean and complete but returns \
                                 different data"
                                    .to_owned()
                            });
                        }
                    }
                }
                Err(e) => checker.expect("archive-recovery", damaged, || {
                    format!("undamaged archive unreadable: {e:?}")
                }),
            }
        }
        Err(e) => checker.expect("archive-recovery", damaged, || {
            format!("undamaged archive failed to open: {e:?}")
        }),
    }

    facts.push(("damage".into(), damage_desc));
    facts.push(("recovered_frames".into(), recovered_frames.to_string()));
    facts.push(("recovered_fp".into(), format!("{recovered_fp:016x}")));

    cleanup(&path);
    finish_report(
        "archive-crash",
        seed,
        plan,
        recovered_frames,
        facts,
        checker,
    )
}

/// The time-series engine under fire: a live maintained writer whose
/// seal-time hook compacts small segments and keeps the pyramid
/// sidecar fresh; a second capture with a retention window; and an
/// in-flight compaction torn at a plan-derived byte, which must never
/// damage the original capture.
fn run_tsdb(seed: u64, plan: &SimPlan) -> ScenarioReport {
    let mut checker = Checker::new();
    let mut facts: Vec<(String, String)> = Vec::new();
    let path = scratch_path("tsdb", seed);
    // A shrunken fan-out keeps every tier populated at sim scale.
    let config = PyramidConfig {
        tier1_blocks: 2,
        tier2_nodes: 2,
    };

    let eeprom = sim_eeprom();
    let configs = std::array::from_fn::<_, SENSOR_SLOTS, _>(|slot| eeprom.read(slot).clone());
    let adc = ps3_sensors::AdcSpec::POWERSENSOR3;

    // Phase A — live capture with seal-time compaction. The live trace
    // is the independent ground truth every later check folds against.
    let writer = TsdbWriter::spawn(
        &path,
        configs.clone(),
        TsdbWriterOptions {
            segment_frames: TSDB_SEGMENT_FRAMES,
            config,
            compact_after_segments: Some(TSDB_COMPACT_AFTER),
            compact_target_frames: TSDB_COMPACT_TARGET,
            ..TsdbWriterOptions::default()
        },
    )
    .expect("spawn tsdb writer");
    let mut live = Trace::with_capacity(TSDB_FRAMES as usize);
    let mut rng = seed ^ TSDB_SALT;
    for i in 0..TSDB_FRAMES {
        let mut raw = [0u16; SENSOR_SLOTS];
        raw[0] = (splitmix64(&mut rng) % 1024) as u16;
        raw[1] = (splitmix64(&mut rng) % 1024) as u16;
        let frame = ArchiveFrame {
            time: SimTime::from_micros(25 + 50 * i),
            raw,
            present: 0b11,
            marker: i.is_multiple_of(127).then_some('m'),
        };
        live.push(frame.time, frame_total(&configs, &adc, &frame));
        if let Some(label) = frame.marker {
            live.mark(frame.time, label);
        }
        checker.expect("archive-accounting", writer.push(frame), || {
            format!("tsdb writer queue rejected frame {i}")
        });
    }
    let stats = writer.finish().expect("finish tsdb writer");
    checker.expect(
        "archive-accounting",
        stats.frames == TSDB_FRAMES && stats.dropped == 0,
        || {
            format!(
                "tsdb writer accepted {}/{TSDB_FRAMES} frames, dropped {}",
                stats.frames, stats.dropped
            )
        },
    );

    let naive_segments = TSDB_FRAMES as usize / TSDB_SEGMENT_FRAMES;
    let t0 = 25u64;
    let t1 = 25 + 50 * (TSDB_FRAMES - 1);
    let mut segments_live = 0usize;
    // Decode-path energy over the whole capture, before compaction.
    // Compaction regroups the same trapezoid terms by the new segment
    // and block structure, so the low bits legitimately move; the
    // invariant is agreement within the crate's 1e-9 relative
    // contract, not bit equality.
    let mut flat_energy_bits = 0u64;
    match Archive::open(&path) {
        Ok(archive) => {
            segments_live = archive.segments().len();
            if let Ok(e) = archive.energy(SimTime::from_micros(0), SimTime::from_micros(t1 + 1)) {
                flat_energy_bits = e.value().to_bits();
            }
            checker.check_archive_matches(&archive, &live, 0);
            checker.check_archive_sealed(&archive);
            checker.expect("tsdb-compaction", segments_live < naive_segments, || {
                format!(
                    "seal-time compaction never ran: {segments_live} segments, naive \
                         capture would hold {naive_segments}"
                )
            });
        }
        Err(e) => checker.expect("archive-recovery", false, || {
            format!("maintained archive failed to open: {e:?}")
        }),
    }

    // The maintained sidecar must be fresh (loaded, not rebuilt), and
    // tier-served answers bit-exact over plan-independent, seed-derived
    // ranges plus the full and empty ones.
    let mut energy_bits = 0u64;
    match Tsdb::open_with(&path, config) {
        Ok(tsdb) => {
            checker.expect("tsdb-sidecar", tsdb.from_sidecar(), || {
                "the seal-time pyramid sidecar was stale or damaged at open".into()
            });
            let span = t1 - t0 + 1;
            for _ in 0..4 {
                let mut lo = t0 + splitmix64(&mut rng) % span;
                let mut hi = t0 + splitmix64(&mut rng) % span;
                if lo > hi {
                    core::mem::swap(&mut lo, &mut hi);
                }
                checker.check_pyramid_exact(
                    &tsdb,
                    SimTime::from_micros(lo),
                    SimTime::from_micros(hi),
                );
            }
            checker.check_pyramid_exact(
                &tsdb,
                SimTime::from_micros(0),
                SimTime::from_micros(t1 + 1),
            );
            checker.check_pyramid_exact(&tsdb, SimTime::from_micros(t0), SimTime::from_micros(t0));
            if let Ok(e) = tsdb.energy(SimTime::from_micros(0), SimTime::from_micros(t1 + 1)) {
                energy_bits = e.value().to_bits();
            }
        }
        Err(e) => checker.expect("tsdb-sidecar", false, || format!("tsdb open failed: {e:?}")),
    }

    // Phase B — tear an in-flight compaction at a plan-derived byte.
    // The staging protocol never touches the original before the
    // rename, so the capture must stay verifiable and bit-identical.
    let mut cut_desc = "none".to_owned();
    match Archive::open(&path) {
        Ok(archive) => {
            let tmp = compact_tmp_path_for(&path);
            let staged_ok = stage_compacted(&archive, TSDB_FRAMES as usize, &tmp).is_ok();
            drop(archive);
            let staged = std::fs::read(&tmp).unwrap_or_default();
            let _ = std::fs::remove_file(&tmp);
            checker.expect("tsdb-compaction", staged_ok && !staged.is_empty(), || {
                "staging the compaction rewrite failed".into()
            });
            if !staged.is_empty() {
                let cut = plan
                    .events()
                    .first()
                    .map_or(staged.len() as u64 / 2, |e| e.offset)
                    % staged.len() as u64;
                std::fs::write(&tmp, &staged[..cut as usize]).expect("write torn staging file");
                cut_desc = format!("truncate@{cut}/{}", staged.len());

                match Archive::open(&path) {
                    Ok(archive) => {
                        let clean = archive.verify().map(|r| r.is_clean()).unwrap_or(false);
                        let trace = archive.read_all().ok();
                        checker.expect(
                            "tsdb-compaction-crash",
                            clean && trace.as_ref() == Some(&live),
                            || {
                                format!(
                                    "a compaction torn at byte {cut} damaged the original \
                                     capture (clean={clean})"
                                )
                            },
                        );
                    }
                    Err(e) => checker.expect("tsdb-compaction-crash", false, || {
                        format!("original capture unreadable after torn staging write: {e:?}")
                    }),
                }

                // The stale torn staging file must not stop the next
                // attempt, and completing it changes no answer.
                match compact_archive(
                    &path,
                    CompactOptions {
                        target_frames: TSDB_FRAMES as usize,
                        config,
                    },
                ) {
                    Ok(report) => {
                        checker.expect("tsdb-compaction", report.segments_after == 1, || {
                            format!(
                                "full-capture compaction left {} segments",
                                report.segments_after
                            )
                        });
                        match (Archive::open(&path), Tsdb::open_with(&path, config)) {
                            (Ok(archive), Ok(tsdb)) => {
                                checker.check_archive_matches(&archive, &live, 0);
                                checker.expect("tsdb-sidecar", tsdb.from_sidecar(), || {
                                    "compaction left a stale pyramid sidecar".into()
                                });
                                checker.check_pyramid_exact(
                                    &tsdb,
                                    SimTime::from_micros(0),
                                    SimTime::from_micros(t1 + 1),
                                );
                                if let Ok(e) = archive
                                    .energy(SimTime::from_micros(0), SimTime::from_micros(t1 + 1))
                                {
                                    let before = f64::from_bits(flat_energy_bits);
                                    let after = e.value();
                                    let tol = 1e-9 * after.abs().max(before.abs()).max(1.0);
                                    checker.expect(
                                        "tsdb-compaction",
                                        (after - before).abs() <= tol,
                                        || {
                                            format!(
                                                "compaction moved the capture energy beyond \
                                                 tolerance: {before} -> {after}"
                                            )
                                        },
                                    );
                                }
                            }
                            (a, t) => checker.expect("tsdb-compaction", false, || {
                                format!("reopen after completed compaction failed: {a:?} {t:?}")
                            }),
                        }
                    }
                    Err(e) => checker.expect("tsdb-compaction", false, || {
                        format!("compaction over a stale staging file failed: {e:?}")
                    }),
                }
            }
        }
        Err(e) => checker.expect("tsdb-compaction", false, || {
            format!("archive failed to reopen for compaction: {e:?}")
        }),
    }

    // Phase C — a second capture with a retention window racing the
    // same live writer: expired segments (and their pyramid subtrees)
    // disappear between seals; the surviving tail is bit-identical to
    // the live capture's tail.
    let retain_path = scratch_path("tsdb-retain", seed);
    let window_us = 60_000 + splitmix64(&mut rng) % 120_000;
    let writer = TsdbWriter::spawn(
        &retain_path,
        configs.clone(),
        TsdbWriterOptions {
            segment_frames: TSDB_SEGMENT_FRAMES,
            config,
            retention: Some(Retention::Duration(window_us)),
            ..TsdbWriterOptions::default()
        },
    )
    .expect("spawn retained tsdb writer");
    let mut replay = seed ^ TSDB_SALT;
    for i in 0..TSDB_FRAMES {
        let mut raw = [0u16; SENSOR_SLOTS];
        raw[0] = (splitmix64(&mut replay) % 1024) as u16;
        raw[1] = (splitmix64(&mut replay) % 1024) as u16;
        writer.push(ArchiveFrame {
            time: SimTime::from_micros(25 + 50 * i),
            raw,
            present: 0b11,
            marker: i.is_multiple_of(127).then_some('m'),
        });
    }
    writer.finish().expect("finish retained tsdb writer");

    let mut retained_segments = 0usize;
    match (
        Archive::open(&retain_path),
        Tsdb::open_with(&retain_path, config),
    ) {
        (Ok(archive), Ok(tsdb)) => {
            retained_segments = archive.segments().len();
            let first_kept = archive.segments().first().map_or(0, |s| s.header.start_us);
            checker.expect("tsdb-retention", first_kept > t0, || {
                format!(
                    "a {window_us} µs window over a {} µs capture dropped nothing",
                    t1 - t0
                )
            });
            let mut tail = Trace::new();
            for sample in live.samples() {
                if sample.time.as_micros() >= first_kept {
                    tail.push(sample.time, sample.power);
                }
            }
            for marker in live.markers() {
                if marker.time.as_micros() >= first_kept {
                    tail.mark(marker.time, marker.label);
                }
            }
            checker.check_archive_matches(&archive, &tail, 0);
            checker.expect("tsdb-sidecar", tsdb.from_sidecar(), || {
                "retention left a stale pyramid sidecar".into()
            });
            checker.check_pyramid_exact(
                &tsdb,
                SimTime::from_micros(0),
                SimTime::from_micros(t1 + 1),
            );
        }
        (a, t) => checker.expect("tsdb-retention", false, || {
            format!("retained capture failed to open: {a:?} {t:?}")
        }),
    }

    facts.push(("segments_live".into(), segments_live.to_string()));
    facts.push(("compaction_cut".into(), cut_desc));
    facts.push(("window_us".into(), window_us.to_string()));
    facts.push(("retained_segments".into(), retained_segments.to_string()));
    facts.push(("energy_bits".into(), format!("{energy_bits:016x}")));

    cleanup(&path);
    cleanup(&retain_path);
    finish_report("tsdb", seed, plan, TSDB_FRAMES, facts, checker)
}

/// `shorter` is an exact frame-and-marker prefix of `longer`.
fn is_prefix(shorter: &Trace, longer: &Trace) -> bool {
    let k = shorter.samples().len();
    if k > longer.samples().len() || shorter.samples() != &longer.samples()[..k] {
        return false;
    }
    let cutoff = shorter.samples().last().map(|s| s.time);
    shorter.markers().iter().eq(longer
        .markers()
        .iter()
        .filter(|m| cutoff.is_some_and(|c| m.time <= c)))
}

fn flip_byte(path: &Path, offset: u64, bit: u8) {
    let mut file = OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)
        .expect("open archive for damage");
    let mut byte = [0u8; 1];
    file.seek(SeekFrom::Start(offset)).expect("seek");
    file.read_exact(&mut byte).expect("read byte");
    byte[0] ^= 1 << (bit & 7);
    file.seek(SeekFrom::Start(offset)).expect("seek");
    file.write_all(&byte).expect("write byte");
}

fn flip_last_byte(path: &Path) {
    let len = std::fs::metadata(path).expect("stat archive").len();
    if len > 0 {
        flip_byte(path, len - 1, 0);
    }
}
