//! Seeded fault plans: the replayable unit of the simulation harness.
//!
//! A [`SimPlan`] is a list of byte-level [`FaultEvent`]s keyed to
//! offsets of a byte stream (device→host over the virtual serial link,
//! or daemon→client over TCP). Because both streams are deterministic
//! functions of `(seed, command sequence)`, a failure observed under a
//! plan replays bit-exactly from `(seed, plan)` alone — the harness's
//! FoundationDB-style contract.
//!
//! Plans serialise to a compact one-line form (`drop@4096,flip@5000:3`)
//! that rides inside failure artifacts and on the `ps3-sim` command
//! line.

use std::fmt;

/// What happens to the stream byte at a [`FaultEvent`]'s offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The byte is silently discarded.
    Drop,
    /// The byte is delivered twice.
    Duplicate,
    /// Bit `0..=7` of the byte is inverted.
    BitFlip(u8),
    /// Delivery pauses for this many wall-clock milliseconds before
    /// the byte is handed over (models a USB/TCP hiccup).
    Stall(u16),
    /// The read returns early just after this byte (short read); the
    /// remainder is delivered on the next call.
    ShortRead,
    /// The link dies at this byte: nothing at or after this offset is
    /// delivered and every later operation fails with `Disconnected`.
    Crash,
}

impl FaultKind {
    fn tag(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Duplicate => "dup",
            FaultKind::BitFlip(_) => "flip",
            FaultKind::Stall(_) => "stall",
            FaultKind::ShortRead => "short",
            FaultKind::Crash => "crash",
        }
    }
}

/// One fault, pinned to a byte offset of the faulted stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Byte offset (counted from the first byte the faulted side ever
    /// produced) at which the fault fires.
    pub offset: u64,
    /// What the fault does.
    pub kind: FaultKind,
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            FaultKind::BitFlip(bit) => write!(f, "flip@{}:{bit}", self.offset),
            FaultKind::Stall(ms) => write!(f, "stall@{}:{ms}", self.offset),
            kind => write!(f, "{}@{}", kind.tag(), self.offset),
        }
    }
}

/// A deterministic, replayable fault schedule.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SimPlan {
    events: Vec<FaultEvent>,
}

/// Knobs for [`SimPlan::generate`].
#[derive(Debug, Clone, Copy)]
pub struct PlanOptions {
    /// No fault fires below this offset — spares the connect/subscribe
    /// handshake so scenarios always reach the streaming phase.
    pub guard: u64,
    /// Offsets are drawn from `guard..horizon`.
    pub horizon: u64,
    /// Upper bound on the number of events.
    pub max_events: usize,
    /// Permit [`FaultKind::Crash`] events (a crash ends the stream, so
    /// some scenarios exclude it to keep their full horizon).
    pub allow_crash: bool,
}

impl Default for PlanOptions {
    fn default() -> Self {
        Self {
            guard: 2048,
            horizon: 16 * 1024,
            max_events: 6,
            allow_crash: true,
        }
    }
}

/// `splitmix64` — the harness's only randomness source. Fixed
/// algorithm, so a seed means the same plan on every machine forever.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimPlan {
    /// The empty plan (no faults).
    #[must_use]
    pub fn empty() -> Self {
        Self::default()
    }

    /// A plan from explicit events (sorted by offset, order among
    /// equal offsets preserved).
    #[must_use]
    pub fn from_events(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.offset);
        Self { events }
    }

    /// Derives a plan from a seed. The same `(seed, opts)` always
    /// yields the same plan.
    #[must_use]
    pub fn generate(seed: u64, opts: &PlanOptions) -> Self {
        let mut rng = seed ^ PLAN_SALT;
        let span = opts.horizon.saturating_sub(opts.guard).max(1);
        let count = (splitmix64(&mut rng) as usize) % (opts.max_events + 1);
        let mut events = Vec::with_capacity(count);
        let mut crashed = false;
        for _ in 0..count {
            let offset = opts.guard + splitmix64(&mut rng) % span;
            let roll = splitmix64(&mut rng) % 100;
            let kind = match roll {
                0..=24 => FaultKind::Drop,
                25..=44 => FaultKind::Duplicate,
                45..=69 => FaultKind::BitFlip((splitmix64(&mut rng) % 8) as u8),
                70..=84 => FaultKind::Stall(5 + (splitmix64(&mut rng) % 25) as u16),
                85..=94 => FaultKind::ShortRead,
                _ if opts.allow_crash && !crashed => {
                    crashed = true;
                    FaultKind::Crash
                }
                _ => FaultKind::Drop,
            };
            events.push(FaultEvent { offset, kind });
        }
        Self::from_events(events)
    }

    /// The events, sorted by offset.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when the plan injects nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// `true` when any event rewrites, removes or duplicates stream
    /// bytes (as opposed to only delaying or ending the stream).
    /// Invariants about decoded *values* only hold without these.
    #[must_use]
    pub fn mutates_bytes(&self) -> bool {
        self.events.iter().any(|e| {
            matches!(
                e.kind,
                FaultKind::Drop | FaultKind::Duplicate | FaultKind::BitFlip(_)
            )
        })
    }

    /// `true` when the plan contains a [`FaultKind::Crash`].
    #[must_use]
    pub fn crashes(&self) -> bool {
        self.events.iter().any(|e| e.kind == FaultKind::Crash)
    }

    /// The plan minus the event at `index` (for shrinking).
    #[must_use]
    pub fn without(&self, index: usize) -> Self {
        let mut events = self.events.clone();
        events.remove(index);
        Self { events }
    }

    /// The compact one-line form: events comma-joined as
    /// `kind@offset[:arg]`, or `-` for the empty plan.
    #[must_use]
    pub fn to_compact(&self) -> String {
        if self.events.is_empty() {
            return "-".to_owned();
        }
        self.events
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Parses [`SimPlan::to_compact`] output.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the malformed event.
    pub fn parse(text: &str) -> Result<Self, String> {
        let text = text.trim();
        if text.is_empty() || text == "-" {
            return Ok(Self::empty());
        }
        let mut events = Vec::new();
        for part in text.split(',') {
            let (head, arg) = match part.split_once(':') {
                Some((h, a)) => (h, Some(a)),
                None => (part, None),
            };
            let (tag, offset) = head
                .split_once('@')
                .ok_or_else(|| format!("event '{part}': expected kind@offset"))?;
            let offset: u64 = offset
                .parse()
                .map_err(|_| format!("event '{part}': bad offset"))?;
            let arg_num = |what: &str| -> Result<u64, String> {
                arg.ok_or_else(|| format!("event '{part}': {tag} needs :{what}"))?
                    .parse()
                    .map_err(|_| format!("event '{part}': bad {what}"))
            };
            let kind = match tag {
                "drop" => FaultKind::Drop,
                "dup" => FaultKind::Duplicate,
                "flip" => {
                    let bit = arg_num("bit")?;
                    if bit > 7 {
                        return Err(format!("event '{part}': bit must be 0..=7"));
                    }
                    FaultKind::BitFlip(bit as u8)
                }
                "stall" => FaultKind::Stall(arg_num("ms")?.min(u64::from(u16::MAX)) as u16),
                "short" => FaultKind::ShortRead,
                "crash" => FaultKind::Crash,
                other => return Err(format!("event '{part}': unknown kind '{other}'")),
            };
            events.push(FaultEvent { offset, kind });
        }
        Ok(Self::from_events(events))
    }
}

impl fmt::Display for SimPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

/// Seed-mixing constant ("PS3SIM_1"), so plan generation and the
/// scenarios' own seed streams never collide on the same seed.
const PLAN_SALT: u64 = 0x5053_3353_494D_5F31;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_form_round_trips() {
        let plan = SimPlan::from_events(vec![
            FaultEvent {
                offset: 4096,
                kind: FaultKind::Drop,
            },
            FaultEvent {
                offset: 5000,
                kind: FaultKind::BitFlip(3),
            },
            FaultEvent {
                offset: 6000,
                kind: FaultKind::Stall(20),
            },
            FaultEvent {
                offset: 7000,
                kind: FaultKind::Duplicate,
            },
            FaultEvent {
                offset: 8000,
                kind: FaultKind::ShortRead,
            },
            FaultEvent {
                offset: 9000,
                kind: FaultKind::Crash,
            },
        ]);
        let text = plan.to_compact();
        assert_eq!(
            text,
            "drop@4096,flip@5000:3,stall@6000:20,dup@7000,short@8000,crash@9000"
        );
        assert_eq!(SimPlan::parse(&text).unwrap(), plan);
        assert_eq!(SimPlan::parse("-").unwrap(), SimPlan::empty());
        assert_eq!(SimPlan::empty().to_compact(), "-");
    }

    #[test]
    fn parse_rejects_malformed_events() {
        assert!(SimPlan::parse("drop").is_err());
        assert!(SimPlan::parse("drop@x").is_err());
        assert!(SimPlan::parse("flip@10").is_err());
        assert!(SimPlan::parse("flip@10:9").is_err());
        assert!(SimPlan::parse("explode@10").is_err());
    }

    #[test]
    fn generation_is_deterministic_and_guarded() {
        let opts = PlanOptions::default();
        for seed in 0..64u64 {
            let a = SimPlan::generate(seed, &opts);
            let b = SimPlan::generate(seed, &opts);
            assert_eq!(a, b, "seed {seed} not reproducible");
            assert!(a.len() <= opts.max_events);
            for e in a.events() {
                assert!(
                    (opts.guard..opts.horizon).contains(&e.offset),
                    "seed {seed}: {e} outside guard window"
                );
            }
        }
        // Different seeds disagree somewhere (sanity, not a law).
        let distinct = (0..64u64)
            .map(|s| SimPlan::generate(s, &opts).to_compact())
            .collect::<std::collections::BTreeSet<_>>();
        assert!(distinct.len() > 32);
    }

    #[test]
    fn without_removes_one_event() {
        let plan = SimPlan::parse("drop@100,dup@200,crash@300").unwrap();
        let smaller = plan.without(1);
        assert_eq!(smaller.to_compact(), "drop@100,crash@300");
        assert!(plan.crashes() && smaller.crashes());
        assert!(plan.mutates_bytes() && !smaller.without(0).mutates_bytes());
    }
}
