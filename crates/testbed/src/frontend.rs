//! The analog frontend: maps ADC channels to sensor modules and rails.

use std::sync::Arc;

use parking_lot::Mutex;

use ps3_duts::{Dut, RailId};
use ps3_firmware::AnalogSource;
use ps3_sensors::SensorModule;
use ps3_units::SimTime;

/// Implements the firmware's [`AnalogSource`] by evaluating the DUT
/// rail state at each conversion instant and passing it through the
/// attached module's sensor transfer functions.
///
/// Channel mapping follows the baseboard: channel `2k` is module `k`'s
/// current sensor, channel `2k+1` its voltage sensor. Unpopulated
/// channels read 0 V.
pub struct AnalogFrontend<D> {
    dut: Arc<Mutex<D>>,
    modules: Vec<(SensorModule, RailId)>,
}

impl<D: Dut> AnalogFrontend<D> {
    /// Creates a frontend over a shared DUT with the given module
    /// attachments (at most four).
    ///
    /// # Panics
    ///
    /// Panics if more than four modules are attached.
    pub fn new(dut: Arc<Mutex<D>>, modules: Vec<(SensorModule, RailId)>) -> Self {
        assert!(modules.len() <= 4, "the baseboard has four module slots");
        Self { dut, modules }
    }

    /// Mutable access to an attached module (e.g. to inject an external
    /// magnetic field in interference tests).
    pub fn module_mut(&mut self, index: usize) -> Option<&mut SensorModule> {
        self.modules.get_mut(index).map(|(m, _)| m)
    }
}

/// Shared per-conversion math: rail state at the conversion instant
/// through the pair's sensor transfer function.
fn convert<D: Dut>(
    dut: &mut D,
    modules: &mut [(SensorModule, RailId)],
    channel: usize,
    now: SimTime,
) -> f64 {
    let pair = channel / 2;
    let Some((module, rail)) = modules.get_mut(pair) else {
        return 0.0;
    };
    let state = dut.rail_state(*rail, now);
    if channel.is_multiple_of(2) {
        module.hall_mut().output_voltage(state.amps, now)
    } else {
        module.voltage_sensor_mut().output_voltage(state.volts, now)
    }
}

impl<D: Dut> AnalogSource for AnalogFrontend<D> {
    fn sample_channel(&mut self, channel: usize, now: SimTime) -> f64 {
        convert(&mut *self.dut.lock(), &mut self.modules, channel, now)
    }

    /// Batched scan: one DUT lock per frame instead of one per
    /// conversion. The per-conversion evaluation order (and therefore
    /// every stateful sensor/DUT result) is identical to the
    /// channel-by-channel path.
    fn sample_frame(&mut self, times: &[SimTime], out: &mut [f64]) {
        let mut dut = self.dut.lock();
        for (k, (t, o)) in times.iter().zip(out.iter_mut()).enumerate() {
            *o = convert(&mut *dut, &mut self.modules, k % 8, *t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps3_duts::ConstantDut;
    use ps3_sensors::ModuleKind;
    use ps3_units::{Amps, Volts};

    #[test]
    fn channels_map_to_pairs() {
        let dut = Arc::new(Mutex::new(ConstantDut::new(
            RailId::Slot12V,
            Volts::new(12.0),
            Amps::new(3.0),
        )));
        let module = SensorModule::ideal(ModuleKind::Slot10A12V);
        let mut fe = AnalogFrontend::new(dut, vec![(module, RailId::Slot12V)]);
        let v_i = fe.sample_channel(0, SimTime::ZERO);
        let v_u = fe.sample_channel(1, SimTime::ZERO);
        // 3 A through 120 mV/A above mid-scale; 12 V through gain 5.
        assert!((v_i - (1.65 + 0.36)).abs() < 0.01, "v_i {v_i}");
        assert!((v_u - 2.4).abs() < 0.01, "v_u {v_u}");
        // Unpopulated pairs read zero.
        assert_eq!(fe.sample_channel(4, SimTime::ZERO), 0.0);
        assert_eq!(fe.sample_channel(7, SimTime::ZERO), 0.0);
    }

    #[test]
    #[should_panic(expected = "four module slots")]
    fn five_modules_rejected() {
        let dut = Arc::new(Mutex::new(ConstantDut::new(
            RailId::Slot12V,
            Volts::new(12.0),
            Amps::zero(),
        )));
        let m = || (SensorModule::ideal(ModuleKind::Slot10A12V), RailId::Slot12V);
        let _ = AnalogFrontend::new(dut, vec![m(), m(), m(), m(), m()]);
    }
}
