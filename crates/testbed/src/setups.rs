//! Canned testbed configurations matching the paper's experimental
//! setups.

use ps3_duts::{
    BenchSetup, GpuModel, GpuSpec, JetsonModel, JetsonSpec, LoadProgram, RailId, SsdModel, SsdSpec,
};
use ps3_sensors::ModuleKind;

use crate::testbed::{Testbed, TestbedBuilder};

/// The accuracy bench (Fig 3): one sensor module of the given kind on
/// its matching rail, fed by a lab PSU and an electronic load.
///
/// The rail/PSU pairing follows the module: 3.3 V modules get the
/// 3.3 V bench, USB-C gets 20 V, everything else gets 12 V.
#[must_use]
pub fn accuracy_bench(kind: ModuleKind, program: LoadProgram, seed: u64) -> Testbed<BenchSetup> {
    let (bench, rail) = match kind {
        ModuleKind::Slot10A3V3 => (BenchSetup::three_volt_three(program), RailId::Slot3V3),
        ModuleKind::UsbC => (BenchSetup::twenty_volt(program), RailId::UsbC),
        _ => (BenchSetup::twelve_volt(program), RailId::Ext12V),
    };
    // Route the bench rail to whatever rail the module expects.
    let rail = match kind {
        ModuleKind::Slot10A12V | ModuleKind::General20A | ModuleKind::HighCurrent50A => {
            RailId::Ext12V
        }
        _ => rail,
    };
    TestbedBuilder::new(bench)
        .attach(kind, rail)
        .seed(seed)
        .build()
}

/// The DAS-6 GPU node setup (Fig 6): three sensor modules — 3.3 V
/// slot, 12 V slot (both through the modified riser) and the 12 V PSU
/// cable through the PCIe 8-pin module.
#[must_use]
pub fn gpu_riser(spec: GpuSpec, seed: u64) -> Testbed<GpuModel> {
    let gpu = GpuModel::new(spec, seed);
    TestbedBuilder::new(gpu)
        .attach(ModuleKind::Slot10A3V3, RailId::Slot3V3)
        .attach(ModuleKind::Slot10A12V, RailId::Slot12V)
        .attach(ModuleKind::Pcie8Pin20A, RailId::Ext12V)
        .seed(seed)
        .build()
}

/// The Jetson AGX Orin setup (Fig 9): the board's USB-C supply routed
/// through the USB-C sensor module.
#[must_use]
pub fn jetson_usbc(spec: JetsonSpec, seed: u64) -> Testbed<JetsonModel> {
    let jetson = JetsonModel::new(spec, seed);
    TestbedBuilder::new(jetson)
        .attach(ModuleKind::UsbC, RailId::UsbC)
        .seed(seed)
        .build()
}

/// The SSD setup (Fig 11): the NVMe-to-PCIe adapter in a modified
/// gen-3 riser, with 3.3 V and 12 V slot modules.
#[must_use]
pub fn ssd_riser(spec: SsdSpec, seed: u64) -> Testbed<SsdModel> {
    let ssd = SsdModel::new(spec, seed);
    TestbedBuilder::new(ssd)
        .attach(ModuleKind::Slot10A3V3, RailId::Slot3V3)
        .attach(ModuleKind::Slot10A12V, RailId::Slot12V)
        .seed(seed)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps3_duts::{FioJob, GpuKernel, IoPattern};
    use ps3_units::{Amps, SimDuration};

    #[test]
    fn accuracy_bench_reads_programmed_load() {
        let mut tb = accuracy_bench(
            ModuleKind::Slot10A12V,
            LoadProgram::Constant(Amps::new(8.0)),
            11,
        );
        let ps = tb.connect().unwrap();
        tb.advance_and_sync(&ps, SimDuration::from_millis(20))
            .unwrap();
        let w = ps.read().total_watts().value();
        // ≈ 8 A × ~11.9 V (droop) = 95.5 W.
        assert!((w - 95.5).abs() < 3.0, "w {w}");
    }

    #[test]
    fn gpu_riser_sums_three_rails() {
        let mut tb = gpu_riser(GpuSpec::rtx4000_ada(), 12);
        let gpu = tb.dut();
        let ps = tb.connect().unwrap();
        tb.advance_and_sync(&ps, SimDuration::from_millis(20))
            .unwrap();
        let idle = ps.read().total_watts().value();
        assert!((idle - 18.0).abs() < 2.5, "idle {idle}");
        gpu.lock()
            .launch(GpuKernel::synthetic_fma(SimDuration::from_secs(1), 4));
        tb.advance_and_sync(&ps, SimDuration::from_millis(500))
            .unwrap();
        let busy = ps.read().total_watts().value();
        assert!(busy > 100.0, "busy {busy}");
        // All three pairs enabled and contributing.
        let state = ps.read();
        assert!(state.pairs[0].enabled && state.pairs[1].enabled && state.pairs[2].enabled);
        assert!(state.pairs[0].watts.value() > 0.5, "3.3 V rail active");
    }

    #[test]
    fn jetson_usbc_measures_whole_board() {
        let mut tb = jetson_usbc(JetsonSpec::agx_orin(), 13);
        let ps = tb.connect().unwrap();
        tb.advance_and_sync(&ps, SimDuration::from_millis(20))
            .unwrap();
        let idle = ps.read().total_watts().value();
        // Whole board ≈ 16.5 W (module + carrier).
        assert!((idle - 16.5).abs() < 2.0, "idle {idle}");
    }

    #[test]
    fn ssd_riser_sees_read_workload() {
        let mut tb = ssd_riser(SsdSpec::samsung_980_pro(), 14);
        let ssd = tb.dut();
        let ps = tb.connect().unwrap();
        tb.advance_and_sync(&ps, SimDuration::from_millis(10))
            .unwrap();
        let idle = ps.read().total_watts().value();
        ssd.lock().start_job(FioJob {
            pattern: IoPattern::RandRead { block_kib: 1024 },
            queue_depth: 32,
        });
        tb.advance_and_sync(&ps, SimDuration::from_millis(100))
            .unwrap();
        let busy = ps.read().total_watts().value();
        assert!(busy > idle + 2.0, "idle {idle}, busy {busy}");
    }
}
