//! Co-simulation testbed: wires a DUT power model through PowerSensor3
//! sensor modules into the emulated firmware, runs the firmware in a
//! device thread on a virtual clock, and hands the host side to the
//! `ps3-core` library — the software equivalent of physically
//! installing a PowerSensor3 in a machine (paper Fig 1/Fig 3).
//!
//! # Structure
//!
//! * [`TestbedBuilder`] — attach up to four sensor modules to DUT
//!   rails, choose factory-calibrated or raw sensors, build.
//! * [`Testbed`] — owns the device thread; [`Testbed::connect`] yields
//!   the [`PowerSensor`](ps3_core::PowerSensor); [`Testbed::advance`]
//!   moves virtual time forward (asynchronously);
//!   [`Testbed::advance_and_sync`] additionally waits until the host
//!   has consumed every frame.
//! * [`setups`] — canned configurations for each experiment in the
//!   paper (accuracy bench, GPU riser, Jetson USB-C, SSD riser).
//!
//! # Examples
//!
//! ```
//! use ps3_duts::{ConstantDut, RailId};
//! use ps3_sensors::ModuleKind;
//! use ps3_testbed::TestbedBuilder;
//! use ps3_units::{Amps, SimDuration, Volts};
//!
//! let dut = ConstantDut::new(RailId::Slot12V, Volts::new(12.0), Amps::new(2.0));
//! let mut testbed = TestbedBuilder::new(dut)
//!     .attach(ModuleKind::Slot10A12V, RailId::Slot12V)
//!     .build();
//! let ps = testbed.connect().unwrap();
//! testbed.advance_and_sync(&ps, SimDuration::from_millis(10)).unwrap();
//! let state = ps.read();
//! assert!((state.total_watts().value() - 24.0).abs() < 1.0);
//! ```

#![forbid(unsafe_code)]

mod frontend;
pub mod setups;
mod testbed;

pub use frontend::AnalogFrontend;
pub use testbed::{Testbed, TestbedBuilder};
