//! Testbed construction and the device thread.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use ps3_core::{PowerSensor, PowerSensorError};
use ps3_duts::{Dut, RailId};
use ps3_firmware::{AdcSequencer, Device, Eeprom, SensorConfig, COMMAND_POLL_FRAMES};
use ps3_sensors::{ModuleKind, SensorModule};
use ps3_transport::{SerialEndpoint, VirtualSerial};
use ps3_units::{SimDuration, SimTime, Watts};

use crate::frontend::AnalogFrontend;

/// How finely the device thread chunks long advances: a few firmware
/// batches' worth of frames at the testbed's actual output rate, so the
/// chunk size adapts to the configured averaging depth instead of a
/// fixed wall of virtual time. Commands and the shared clock are
/// published between chunks, and the stop flag is honoured promptly.
fn advance_chunk(frame_interval: SimDuration) -> SimDuration {
    frame_interval * (4 * COMMAND_POLL_FRAMES) as u64
}

/// Builder for a [`Testbed`].
pub struct TestbedBuilder<D> {
    dut: Arc<Mutex<D>>,
    attachments: Vec<(ModuleKind, RailId)>,
    seed: u64,
    factory_calibrated: bool,
    averages: u32,
    external_field_mt: f64,
    single_ended_sensors: bool,
}

impl<D: Dut + 'static> TestbedBuilder<D> {
    /// Starts a testbed around `dut`.
    pub fn new(dut: D) -> Self {
        Self {
            dut: Arc::new(Mutex::new(dut)),
            attachments: Vec::new(),
            seed: 0x5EED,
            factory_calibrated: true,
            averages: 6,
            external_field_mt: 0.0,
            single_ended_sensors: false,
        }
    }

    /// Attaches a sensor module of `kind` to `rail` in the next free
    /// slot (up to four).
    #[must_use]
    pub fn attach(mut self, kind: ModuleKind, rail: RailId) -> Self {
        self.attachments.push((kind, rail));
        self
    }

    /// Seeds the sensor imperfections and noise streams.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// `true` (default): EEPROM conversion values compensate the
    /// factory offset/gain errors, as after the one-time calibration of
    /// §III-D. `false`: nominal datasheet values, for experiments that
    /// exercise the calibration procedure itself.
    #[must_use]
    pub fn factory_calibrated(mut self, yes: bool) -> Self {
        self.factory_calibrated = yes;
        self
    }

    /// Overrides the firmware's 6-fold averaging depth (ablations).
    #[must_use]
    pub fn averaging(mut self, averages: u32) -> Self {
        self.averages = averages;
        self
    }

    /// Applies a static external magnetic field (in millitesla) to all
    /// current sensors — the interference scenario that motivated the
    /// move to differential Hall parts (§I).
    #[must_use]
    pub fn external_field_mt(mut self, millitesla: f64) -> Self {
        self.external_field_mt = millitesla;
        self
    }

    /// Replaces the differential Hall sensors with PowerSensor2-era
    /// single-ended parts (two orders of magnitude more sensitive to
    /// external fields). For the interference ablation.
    #[must_use]
    pub fn single_ended_sensors(mut self, yes: bool) -> Self {
        self.single_ended_sensors = yes;
        self
    }

    /// Builds the testbed and starts the device thread.
    ///
    /// # Panics
    ///
    /// Panics if more than four modules were attached.
    #[must_use]
    pub fn build(self) -> Testbed<D> {
        assert!(self.attachments.len() <= 4, "four module slots");
        let mut eeprom = Eeprom::new();
        let mut modules = Vec::new();
        for (i, (kind, rail)) in self.attachments.iter().enumerate() {
            let hall_spec = if self.single_ended_sensors {
                kind.hall_spec().single_ended()
            } else {
                kind.hall_spec()
            };
            let mut module = SensorModule::with_hall_spec(
                *kind,
                hall_spec,
                self.seed.wrapping_add(i as u64 * 7919),
            );
            if self.external_field_mt != 0.0 {
                module.hall_mut().set_external_field(self.external_field_mt);
            }
            let (i_cfg, u_cfg) = configs_for(&module, self.factory_calibrated);
            eeprom.write(2 * i, i_cfg);
            eeprom.write(2 * i + 1, u_cfg);
            modules.push((module, *rail));
        }

        let (host_end, dev_end) = VirtualSerial::pair();
        let frontend = AnalogFrontend::new(Arc::clone(&self.dut), modules);
        let mut device = Device::new(frontend, eeprom);
        if self.averages != 6 {
            device.set_sequencer(AdcSequencer::with_averages(self.averages));
        }
        let frame_interval = AdcSequencer::with_averages(self.averages).frame_interval();

        let target_ns = Arc::new(AtomicU64::new(0));
        let clock_ns = Arc::new(AtomicU64::new(0));
        let frames = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let target_ns = Arc::clone(&target_ns);
            let clock_ns = Arc::clone(&clock_ns);
            let frames = Arc::clone(&frames);
            let stop = Arc::clone(&stop);
            let chunk = advance_chunk(frame_interval);
            std::thread::Builder::new()
                .name("ps3-device".into())
                .spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        let target = SimTime::from_nanos(target_ns.load(Ordering::SeqCst));
                        if device.clock() < target {
                            let chunk_end = (device.clock() + chunk).min(target);
                            device.run_until(&dev_end, chunk_end);
                            clock_ns.store(device.clock().as_nanos(), Ordering::SeqCst);
                            frames.store(device.frames_emitted(), Ordering::SeqCst);
                        } else {
                            device.process_commands(&dev_end);
                            std::thread::sleep(Duration::from_micros(200));
                        }
                    }
                })
                .expect("spawn device thread")
        };

        Testbed {
            dut: self.dut,
            host_end: Some(host_end),
            target_ns,
            clock_ns,
            frames,
            stop,
            thread: Some(thread),
            frame_interval,
        }
    }
}

/// EEPROM configuration for a module: nominal datasheet values, or
/// values compensating the module's factory imperfections (what the
/// §III-D procedure produces).
fn configs_for(module: &SensorModule, calibrated: bool) -> (SensorConfig, SensorConfig) {
    let kind = module.kind();
    let sens = module.nominal_sensitivity();
    let gain = module.nominal_gain();
    let vref = SensorModule::VREF;
    if calibrated {
        let offset = module.hall().factory_offset().value();
        let vref_cal = vref + 2.0 * sens * offset;
        let gain_cal = gain / module.voltage_sensor().factory_gain();
        (
            SensorConfig::new(kind.label(), vref_cal as f32, sens as f32, true),
            SensorConfig::new(kind.label(), vref as f32, gain_cal as f32, true),
        )
    } else {
        (
            SensorConfig::new(kind.label(), vref as f32, sens as f32, true),
            SensorConfig::new(kind.label(), vref as f32, gain as f32, true),
        )
    }
}

/// A running testbed: emulated device thread + virtual clock control.
///
/// Dropping the testbed stops the device thread (the host side then
/// observes a disconnect, as if the sensor were unplugged).
pub struct Testbed<D> {
    dut: Arc<Mutex<D>>,
    host_end: Option<SerialEndpoint>,
    target_ns: Arc<AtomicU64>,
    clock_ns: Arc<AtomicU64>,
    frames: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
    frame_interval: SimDuration,
}

impl<D: Dut + 'static> Testbed<D> {
    /// Connects the host library to the testbed's device.
    ///
    /// # Errors
    ///
    /// Propagates connection failures from the host library.
    ///
    /// # Panics
    ///
    /// Panics if called twice (there is one USB cable).
    pub fn connect(&mut self) -> Result<PowerSensor, PowerSensorError> {
        let end = self
            .host_end
            .take()
            .expect("testbed already connected once");
        PowerSensor::connect(end)
    }

    /// Shared handle to the DUT, for driving workloads.
    #[must_use]
    pub fn dut(&self) -> Arc<Mutex<D>> {
        Arc::clone(&self.dut)
    }

    /// Ground-truth total DUT power at the current device time.
    #[must_use]
    pub fn true_power(&self) -> Watts {
        let now = self.device_time();
        self.dut.lock().total_power(now)
    }

    /// Current device (virtual) time.
    #[must_use]
    pub fn device_time(&self) -> SimTime {
        SimTime::from_nanos(self.clock_ns.load(Ordering::SeqCst))
    }

    /// Frames the device has emitted so far.
    #[must_use]
    pub fn frames_emitted(&self) -> u64 {
        self.frames.load(Ordering::SeqCst)
    }

    /// The device's output frame interval (50 µs by default).
    #[must_use]
    pub fn frame_interval(&self) -> SimDuration {
        self.frame_interval
    }

    /// Advances the virtual-time target by `d`. Returns immediately;
    /// the device thread catches up in the background (use
    /// [`Testbed::advance_and_sync`] to wait).
    pub fn advance(&self, d: SimDuration) {
        self.target_ns.fetch_add(d.as_nanos(), Ordering::SeqCst);
    }

    /// Advances by `d` and blocks until the device reached the target
    /// *and* the host has processed every frame the device emitted.
    ///
    /// # Errors
    ///
    /// [`PowerSensorError::Timeout`] if the pipeline stalls for more
    /// than 60 s of real time.
    pub fn advance_and_sync(
        &self,
        ps: &PowerSensor,
        d: SimDuration,
    ) -> Result<(), PowerSensorError> {
        self.advance(d);
        self.sync(ps)
    }

    /// Blocks until device and host have caught up with the current
    /// target.
    ///
    /// # Errors
    ///
    /// [`PowerSensorError::Timeout`] on a stalled pipeline,
    /// [`PowerSensorError::Shutdown`] if the link died.
    pub fn sync(&self, ps: &PowerSensor) -> Result<(), PowerSensorError> {
        let deadline = Instant::now() + Duration::from_secs(60);
        let target = self.target_ns.load(Ordering::SeqCst);
        // 1. Device reaches the target time.
        while self.clock_ns.load(Ordering::SeqCst) < target {
            if Instant::now() >= deadline {
                return Err(PowerSensorError::Timeout("device advancing"));
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        // 2. Host consumes all emitted frames.
        ps.wait_for_frames(self.frames_emitted(), Duration::from_secs(60))
    }
}

impl<D> Drop for Testbed<D> {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps3_duts::ConstantDut;
    use ps3_units::{Amps, Volts};

    fn twelve_volt_two_amp() -> TestbedBuilder<ConstantDut> {
        TestbedBuilder::new(ConstantDut::new(
            RailId::Slot12V,
            Volts::new(12.0),
            Amps::new(2.0),
        ))
        .attach(ModuleKind::Slot10A12V, RailId::Slot12V)
    }

    #[test]
    fn end_to_end_power_readout() {
        let mut tb = twelve_volt_two_amp().build();
        let ps = tb.connect().unwrap();
        tb.advance_and_sync(&ps, SimDuration::from_millis(20))
            .unwrap();
        let state = ps.read();
        let measured = state.total_watts().value();
        assert!((measured - 24.0).abs() < 1.0, "measured {measured}");
    }

    #[test]
    fn calibrated_beats_uncalibrated() {
        // Same seed, same DUT: factory-calibrated EEPROM values must
        // yield a smaller error than raw datasheet values.
        let measure = |calibrated: bool| -> f64 {
            let mut tb = twelve_volt_two_amp()
                .seed(77)
                .factory_calibrated(calibrated)
                .build();
            let ps = tb.connect().unwrap();
            tb.advance_and_sync(&ps, SimDuration::from_millis(50))
                .unwrap();
            (ps.read().total_watts().value() - 24.0).abs()
        };
        let calibrated_err = measure(true);
        let raw_err = measure(false);
        assert!(
            calibrated_err < raw_err,
            "calibrated {calibrated_err} vs raw {raw_err}"
        );
        assert!(calibrated_err < 1.0, "calibrated error {calibrated_err}");
    }

    #[test]
    fn advance_is_async_and_sync_catches_up() {
        let mut tb = twelve_volt_two_amp().build();
        let ps = tb.connect().unwrap();
        tb.advance(SimDuration::from_millis(5));
        tb.sync(&ps).unwrap();
        assert!(tb.device_time() >= SimTime::from_micros(5_000));
        assert_eq!(ps.frames_received(), tb.frames_emitted());
    }

    #[test]
    fn seeds_change_noise_but_not_signal() {
        let run = |seed: u64| -> f64 {
            let mut tb = twelve_volt_two_amp().seed(seed).build();
            let ps = tb.connect().unwrap();
            tb.advance_and_sync(&ps, SimDuration::from_millis(20))
                .unwrap();
            ps.read().total_watts().value()
        };
        let a = run(1);
        let b = run(2);
        assert_ne!(a, b, "different seeds, different noise");
        assert!((a - 24.0).abs() < 1.0 && (b - 24.0).abs() < 1.0);
    }

    #[test]
    fn true_power_reports_ground_truth() {
        let tb = twelve_volt_two_amp().build();
        assert!((tb.true_power().value() - 24.0).abs() < 0.01);
    }

    #[test]
    fn custom_averaging_changes_rate() {
        let mut tb = twelve_volt_two_amp().averaging(12).build();
        let ps = tb.connect().unwrap();
        assert_eq!(tb.frame_interval(), SimDuration::from_micros(100));
        ps.begin_trace();
        tb.advance_and_sync(&ps, SimDuration::from_millis(20))
            .unwrap();
        let trace = ps.end_trace();
        let rate = trace.sample_rate().unwrap();
        assert!((rate - 10_000.0).abs() < 100.0, "rate {rate}");
    }
}
